"""EXP-4 (Theorem 7.1): the separation table over E_t environments."""

from conftest import publish

from repro.harness.experiments import exp4_separation


def test_exp4_separation(benchmark):
    table = benchmark.pedantic(
        lambda: exp4_separation(
            cases=((2, 1), (4, 2), (5, 3), (6, 3), (3, 1), (5, 2)),
            seeds=(0, 1),
        ),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        majority = row[2] == "yes"
        if majority:
            assert row[3] == "yes", row  # from-scratch Sigma valid
        else:
            assert "VIOLATED" in row[4], row  # adversary wins
