"""Micro-benchmarks of the substrate: step throughput and DAG operations.

Not a paper experiment — these keep the simulator's performance honest so
the theorem-level sweeps stay cheap to run and extend.
"""

import random

from repro.consensus.quorum_mr import QuorumMR
from repro.core.dag import DagCore, SampleDAG, greedy_chain
from repro.detectors import Omega, PairedDetector, Sigma
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.failures import FailurePattern
from repro.kernel.system import System


def test_system_step_throughput(benchmark):
    """Steps/second of the live kernel running quorum-MR on 5 processes.

    Uses ``trace="metrics"`` — the sweep configuration, where per-step
    records are skipped.  The executed run is identical to the full-trace
    run, so this measures the kernel itself, not trace bookkeeping.
    """
    pattern = FailurePattern(5, {})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(0))

    def run_steps():
        processes = {p: AutomatonProcess(QuorumMR(), p % 2) for p in range(5)}
        system = System(processes, pattern, history, seed=0, trace="metrics")
        system.run(max_steps=300)
        return system.time

    steps = benchmark(run_steps)
    assert steps == 300


def test_system_step_throughput_full_trace(benchmark):
    """Same workload with the default full trace (records + query log)."""
    pattern = FailurePattern(5, {})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(0))

    def run_steps():
        processes = {p: AutomatonProcess(QuorumMR(), p % 2) for p in range(5)}
        system = System(processes, pattern, history, seed=0)
        result = system.run(max_steps=300)
        return len(result.steps)

    steps = benchmark(run_steps)
    assert steps == 300


def test_dag_growth(benchmark):
    """Cost of building a 600-sample DAG with periodic unions."""

    def build():
        cores = [DagCore(p, 4) for p in range(4)]
        rng = random.Random(1)
        for t in range(600):
            p = t % 4
            if rng.random() < 0.5:
                cores[p].absorb(cores[rng.randrange(4)].dag)
            cores[p].sample(frozenset({p}), t)
        return len(cores[0].dag)

    size = benchmark(build)
    assert size > 100


def test_descendants_query(benchmark):
    cores = [DagCore(p, 3) for p in range(3)]
    for t in range(400):
        p = t % 3
        cores[p].absorb(cores[(p + 1) % 3].dag)
        cores[p].sample(frozenset({p}), t)
    dag = cores[0].dag
    root = dag.get((0, 5))

    result = benchmark(lambda: len(dag.descendants(root)))
    assert result > 0


def test_greedy_chain(benchmark):
    cores = [DagCore(p, 3) for p in range(3)]
    for t in range(400):
        p = t % 3
        cores[p].absorb(cores[(p + 1) % 3].dag)
        cores[p].sample(frozenset({p}), t)
    nodes = cores[0].dag.nodes()

    chain = benchmark(lambda: greedy_chain(nodes))
    assert len(chain) > 50
