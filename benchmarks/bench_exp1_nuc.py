"""EXP-1 (Theorems 6.27/6.28): A_nuc and the (Omega, Sigma^nu) stack solve
nonuniform consensus in any environment.

Regenerates the EXP-1 table of EXPERIMENTS.md (decided counts, agreement
verdicts, cost profile) and reports the wall-clock cost of the sweep.
"""

from conftest import publish

from repro.harness.experiments import exp1_nuc_sufficiency


def test_exp1_nuc_sufficiency(benchmark):
    table = benchmark.pedantic(
        lambda: exp1_nuc_sufficiency(ns=(2, 3, 4, 5), seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        assert row[4] == "yes", row  # agreement_ok
        assert row[2] == row[3], row  # every run decided
