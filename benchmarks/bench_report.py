"""Kernel performance report: ``python benchmarks/bench_report.py``.

Measures the run engine and the sweep driver and writes ``BENCH_kernel.json``
(repo root by default):

* kernel step throughput on the quorum-MR micro workload, in both trace
  modes (``"full"`` and ``"metrics"``), plus the metrics/full speedup;
* with ``--batch``, the batched kernel (``repro.kernel.batch``) over 256
  quorum-MR lanes against the same lanes run one ``System`` at a time —
  numpy and pure-python control planes benched separately (the ``batch``
  section; see docs/performance.md for how to read it);
* wall time of each EXP-1..EXP-9 sweep at its quick parameterization;
* one serial-vs-parallel sweep comparison (``jobs=1`` against ``--jobs N``)
  with the observed speedup.  On single-CPU machines the honest number is
  ~1.0x or below — the driver exists for multi-core hosts, and correctness
  (bit-identical tables for every job count) is covered by the test suite;
* a per-phase breakdown of one traced EXP-3 quick run (span aggregates and
  deterministic work counters from :mod:`repro.obs`);
* tracing-off vs tracing-on throughput on the same micro workload (the
  ``obs`` section): the off number is gated by ``check_regression.py`` so
  instrumentation never taxes the untraced hot path, the on number keeps
  the tracing overhead visible;
* with ``--store``, a cold-vs-warm comparison of one EXP-1 sweep through a
  throwaway content-addressed result store (``repro.store``): warm wall
  time, speedup, hit counts and whether the rendered tables were
  byte-identical (the ``store`` section).

``--quick`` trims repeats and times only a sweep subset so CI stays fast.
``--record-baseline`` files the finished report on the result store's
bench shelf (``store.put_bench("kernel", ...)``), where
``check_regression.py --store-baseline`` finds the most recent report for
this environment.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

MICRO_STEPS = 300
MICRO_N = 5
BATCH_LANES = 256

QUICK_OVERRIDES = {
    "exp1": dict(ns=(2, 3), seeds=(0,)),
    "exp2": dict(ns=(2, 3), seeds=(0,)),
    "exp3": dict(ns=(3,), seeds=(0,)),
    "exp4": dict(cases=((2, 1), (4, 2), (3, 1)), seeds=(0,)),
    "exp5": dict(seeds=(0,)),
    "exp6": dict(seeds=range(3)),
    "exp7": dict(ns=(2, 3), seeds=(0,)),
    "exp8": dict(n=3, crash_times=(0,), seeds=(0,)),
    "exp9": dict(seeds=(0,)),
}

QUICK_SUBSET = ("exp1", "exp2", "exp6")


def _micro_run(trace: str) -> int:
    import random

    from repro.consensus.quorum_mr import QuorumMR
    from repro.detectors import Omega, PairedDetector, Sigma
    from repro.kernel.automaton import AutomatonProcess
    from repro.kernel.failures import FailurePattern
    from repro.kernel.system import System

    pattern = FailurePattern(MICRO_N, {})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(0))
    processes = {
        p: AutomatonProcess(QuorumMR(), p % 2) for p in range(MICRO_N)
    }
    system = System(processes, pattern, history, seed=0, trace=trace)
    system.run(max_steps=MICRO_STEPS)
    return system.time


def bench_kernel(repeats: int) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "workload": (
            f"quorum-MR over (Omega, Sigma), n={MICRO_N}, "
            f"{MICRO_STEPS} steps, RandomFairScheduler/FairRandomDelivery"
        )
    }
    for trace in ("full", "metrics"):
        _micro_run(trace)  # warm up imports and caches
        best = min(
            _timed(_micro_run, trace) for _ in range(repeats)
        )
        out[trace] = {
            "best_ms": round(best * 1e3, 3),
            "steps_per_sec": round(MICRO_STEPS / best),
        }
    out["metrics_speedup_vs_full"] = round(
        out["full"]["best_ms"] / out["metrics"]["best_ms"], 3
    )
    return out


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def _batch_specs():
    from repro.consensus.quorum_mr import QuorumMR
    from repro.detectors import Omega, PairedDetector, Sigma
    from repro.detectors.base import sample_history_cached
    from repro.kernel.batch import LaneSpec
    from repro.kernel.failures import FailurePattern

    pattern = FailurePattern(MICRO_N, {})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    proposals = {p: p % 2 for p in range(MICRO_N)}
    return [
        LaneSpec(
            pattern=pattern,
            history=sample_history_cached(detector, pattern, seed),
            seed=seed,
            max_steps=MICRO_STEPS,
            automaton=QuorumMR(),
            proposals=proposals,
            trace="metrics",
        )
        for seed in range(BATCH_LANES)
    ]


def _serial_lanes(specs) -> int:
    from repro.kernel.automaton import AutomatonProcess
    from repro.kernel.system import System

    total = 0
    for spec in specs:
        processes = {
            p: AutomatonProcess(spec.automaton, spec.proposals[p])
            for p in range(spec.pattern.n)
        }
        system = System(
            processes, spec.pattern, spec.history, seed=spec.seed,
            trace="metrics",
        )
        total += system.run(max_steps=spec.max_steps).total_steps
    return total


def _batched_lanes(specs, use_numpy) -> int:
    from repro.kernel.batch import BatchSystem

    results = BatchSystem(specs, use_numpy=use_numpy).run()
    return sum(r.total_steps for r in results)


def bench_batch(repeats: int) -> Dict[str, Any]:
    """The batched kernel vs one-`System.run()`-at-a-time, same 256 lanes.

    All three modes execute bit-identical runs (the oracle suite in
    ``tests/kernel/test_batch.py`` proves it), so steps/sec is the whole
    story.  The numpy/pure-python split is benched separately because the
    control plane differs; ``speedup_vs_serial`` of the best available
    mode is what the CI gate watches.
    """
    try:
        import numpy  # noqa: F401 -- availability probe only
        have_numpy = True
    except ImportError:
        have_numpy = False

    specs = _batch_specs()
    total_steps = _serial_lanes(specs)  # warm-up; also the step count
    out: Dict[str, Any] = {
        "workload": (
            f"quorum-MR over (Omega, Sigma), n={MICRO_N}, "
            f"{BATCH_LANES} lanes x {MICRO_STEPS} steps, metrics trace"
        ),
        "lanes": BATCH_LANES,
        "steps_per_lane": MICRO_STEPS,
        "total_steps": total_steps,
    }
    serial_best = min(
        _timed(_serial_lanes, specs) for _ in range(repeats)
    )
    out["serial"] = {
        "best_ms": round(serial_best * 1e3, 3),
        "steps_per_sec": round(total_steps / serial_best),
    }
    modes = [("pure_python", False)] + ([("numpy", True)] if have_numpy else [])
    for label, use_numpy in modes:
        _batched_lanes(specs, use_numpy)  # warm up
        best = min(
            _timed(_batched_lanes, specs, use_numpy) for _ in range(repeats)
        )
        out[label] = {
            "best_ms": round(best * 1e3, 3),
            "steps_per_sec": round(total_steps / best),
            "speedup_vs_serial": round(serial_best / best, 3),
        }
    out["primary_mode"] = "numpy" if have_numpy else "pure_python"
    out["speedup"] = out[out["primary_mode"]]["speedup_vs_serial"]
    return out


def bench_experiments(names) -> List[Dict[str, Any]]:
    from repro.harness import experiments

    rows = []
    for name in names:
        runner = getattr(experiments, _runner_name(name))
        kwargs = dict(QUICK_OVERRIDES[name])
        wall = _timed(lambda: runner(**kwargs, jobs=1))
        rows.append({"name": name, "wall_s": round(wall, 3), "jobs": 1})
        print(f"  {name}: {wall:.2f}s", flush=True)
    return rows


def _runner_name(name: str) -> str:
    suffixes = {
        "exp1": "nuc_sufficiency",
        "exp2": "boosting",
        "exp3": "extraction",
        "exp4": "separation",
        "exp5": "contamination",
        "exp6": "merging",
        "exp7": "scaling",
        "exp8": "exhaustive",
        "exp9": "registers",
    }
    return f"{name}_{suffixes[name]}"


def bench_obs(repeats: int) -> Dict[str, Any]:
    """Tracing-off vs tracing-on kernel throughput on the micro workload.

    ``off`` is the plain metrics-trace micro-bench — the number CI gates
    against the baseline so instrumentation growth can never tax the
    untraced hot path.  ``on`` wraps the same workload in
    ``obs.tracing()`` so every guarded span/event/counter site fires;
    its ``overhead_pct`` is informational (tracing is a debugging mode,
    not a production one) but keeps the cost visible in the report's
    trajectory section.
    """
    from repro import obs

    _micro_run("metrics")  # warm up
    off_best = min(_timed(_micro_run, "metrics") for _ in range(repeats))

    def _traced_run() -> None:
        with obs.tracing(label="bench:obs-overhead"):
            _micro_run("metrics")

    _traced_run()  # warm up
    on_best = min(_timed(_traced_run) for _ in range(repeats))
    return {
        "workload": (
            f"quorum-MR over (Omega, Sigma), n={MICRO_N}, "
            f"{MICRO_STEPS} steps, metrics trace"
        ),
        "off": {
            "best_ms": round(off_best * 1e3, 3),
            "steps_per_sec": round(MICRO_STEPS / off_best),
        },
        "on": {
            "best_ms": round(on_best * 1e3, 3),
            "steps_per_sec": round(MICRO_STEPS / on_best),
        },
        "overhead_pct": round(100.0 * (on_best - off_best) / off_best, 1),
    }


def bench_phases() -> Dict[str, Any]:
    """Per-phase breakdown of a traced EXP-3 quick run.

    Runs EXP-3 once under the tracer and reports each span name's count,
    logical-tick totals and wall time, plus the deterministic counter
    totals the run recorded.  The tick/counter numbers are reproducible;
    only ``wall_ms`` varies between hosts.
    """
    from repro import obs
    from repro.harness import experiments
    from repro.obs.inspect import aggregate_spans

    kwargs = dict(QUICK_OVERRIDES["exp3"])
    with obs.tracing(label="bench:exp3") as tracer:
        wall = _timed(lambda: experiments.exp3_extraction(**kwargs, jobs=1))
    return {
        "experiment": "exp3",
        "wall_s": round(wall, 3),
        "spans": aggregate_spans(tracer.records),
        "counters": obs.metrics().counters(),
    }


def bench_store() -> Dict[str, Any]:
    """Cold vs warm EXP-1 quick sweep through a throwaway result store.

    The wall numbers are host-dependent; the deterministic facts —
    warm run all hits, zero misses, byte-identical table — are what
    ``tests/harness/test_store_sweep.py`` asserts and CI gates on.
    """
    import tempfile

    from repro.harness import experiments
    from repro.store import ResultStore

    kwargs = dict(QUICK_OVERRIDES["exp1"])
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        store = ResultStore(root)
        start = time.perf_counter()
        cold_table = experiments.exp1_nuc_sufficiency(
            **kwargs, store=store
        ).render()
        cold = time.perf_counter() - start
        store.stats.reset()
        start = time.perf_counter()
        warm_table = experiments.exp1_nuc_sufficiency(
            **kwargs, store=store
        ).render()
        warm = time.perf_counter() - start
        return {
            "experiment": "exp1",
            "tasks": store.stats.lookups,
            "cold_s": round(cold, 3),
            "warm_s": round(warm, 4),
            "speedup": round(cold / warm, 1) if warm else None,
            "warm_hits": store.stats.hits,
            "warm_misses": store.stats.misses,
            "byte_identical": warm_table == cold_table,
        }


def bench_parallel(jobs: int) -> Dict[str, Any]:
    from repro.harness import experiments

    if os.cpu_count() == 1:
        # Worker processes cannot beat serial on one core; the number would
        # be pure noise, so record the skip instead of a misleading ratio.
        return {"experiment": "exp1", "skipped": "single-cpu host"}
    kwargs = dict(QUICK_OVERRIDES["exp1"])
    serial = _timed(lambda: experiments.exp1_nuc_sufficiency(**kwargs, jobs=1))
    parallel = _timed(
        lambda: experiments.exp1_nuc_sufficiency(**kwargs, jobs=jobs)
    )
    return {
        "experiment": "exp1",
        "serial_s": round(serial, 3),
        "parallel_s": round(parallel, 3),
        "jobs": jobs,
        "speedup": round(serial / parallel, 3) if parallel else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repeats; sweep subset " + "/".join(QUICK_SUBSET),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker count for the parallel comparison (default 2)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="also measure the batched kernel (BatchSystem, "
        f"{BATCH_LANES} quorum-MR lanes) and emit the `batch` section",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="also measure a cold-vs-warm sweep through a throwaway "
        "result store and emit the `store` section",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="file the report on the result store's bench shelf for "
        "check_regression.py --store-baseline",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root for --record-baseline "
        "(default: benchmarks/results/store)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        metavar="FILE",
    )
    args = parser.parse_args(argv)

    repeats = 10 if args.quick else 40
    names = QUICK_SUBSET if args.quick else tuple(QUICK_OVERRIDES)

    print("kernel micro-benchmark ...", flush=True)
    kernel = bench_kernel(repeats)
    print(
        f"  full: {kernel['full']['steps_per_sec']:,} steps/s   "
        f"metrics: {kernel['metrics']['steps_per_sec']:,} steps/s   "
        f"({kernel['metrics_speedup_vs_full']}x)",
        flush=True,
    )
    batch = None
    if args.batch:
        print(f"batched kernel ({BATCH_LANES} lanes) ...", flush=True)
        batch = bench_batch(2 if args.quick else 3)
        serial_sps = batch["serial"]["steps_per_sec"]
        primary = batch[batch["primary_mode"]]
        print(
            f"  serial: {serial_sps:,} steps/s   "
            f"{batch['primary_mode']}: {primary['steps_per_sec']:,} steps/s   "
            f"({batch['speedup']}x)",
            flush=True,
        )
    print("observability overhead (tracing off vs on) ...", flush=True)
    obs_section = bench_obs(repeats)
    print(
        f"  off: {obs_section['off']['steps_per_sec']:,} steps/s   "
        f"on: {obs_section['on']['steps_per_sec']:,} steps/s   "
        f"({obs_section['overhead_pct']:+.1f}% overhead)",
        flush=True,
    )
    print("experiment sweeps (quick parameterization) ...", flush=True)
    experiments = bench_experiments(names)
    print("traced exp3 phase breakdown ...", flush=True)
    phases = bench_phases()
    top = sorted(
        phases["spans"].items(), key=lambda kv: -kv[1]["wall_ms"]
    )[:3]
    for name, agg in top:
        print(f"  {name}: x{agg['count']}, {agg['wall_ms']}ms", flush=True)
    print(f"serial vs --jobs {args.jobs} (exp1) ...", flush=True)
    sweep = bench_parallel(args.jobs)
    if "skipped" in sweep:
        print(f"  skipped: {sweep['skipped']}", flush=True)
    else:
        print(
            f"  serial {sweep['serial_s']}s, parallel {sweep['parallel_s']}s, "
            f"speedup {sweep['speedup']}x",
            flush=True,
        )

    store_section = None
    if args.store:
        print("result store cold vs warm (exp1) ...", flush=True)
        store_section = bench_store()
        print(
            f"  cold {store_section['cold_s']}s, warm {store_section['warm_s']}s "
            f"({store_section['speedup']}x), "
            f"byte-identical: {store_section['byte_identical']}",
            flush=True,
        )

    from repro.harness.envinfo import environment_stamp

    report = {
        "schema": "bench-kernel/2",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "environment": environment_stamp(REPO_ROOT),
        "kernel": kernel,
        "obs": obs_section,
        "experiments": experiments,
        "phases": phases,
        "sweep_parallelism": sweep,
    }
    if batch is not None:
        report["batch"] = batch
    if store_section is not None:
        report["store"] = store_section
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.record_baseline:
        from repro.store import ResultStore

        baseline_store = ResultStore(args.store_dir)
        path = baseline_store.put_bench("kernel", report)
        print(f"recorded baseline {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
