"""EXP-3 (Theorems 5.4/5.8): necessity extraction over three (D, A) pairs.

Every extracted history must satisfy Sigma^nu; since each subject solves
*uniform* consensus with its detector, full Sigma must hold as well."""

from conftest import publish

from repro.harness.experiments import exp3_extraction


def test_exp3_extraction(benchmark):
    table = benchmark.pedantic(
        lambda: exp3_extraction(ns=(3, 4), seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        assert row[3] == "yes", row  # sigma_nu_ok
        assert row[4] == "yes", row  # sigma_ok (Thm 5.8)
