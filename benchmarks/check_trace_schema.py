#!/usr/bin/env python
"""Validate JSONL trace files (repro-trace/1 and repro-trace/2 schemas).

Usage: PYTHONPATH=src python benchmarks/check_trace_schema.py TRACE [TRACE ...]

Both schema generations are accepted: /2 adds an optional precomputed
span-path aggregate record, which is only legal under a /2 header.
Exits nonzero if any file fails validation; CI runs this against the
traces emitted by the smoke experiment.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.export import read_trace, validate_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        epilog=(
            "Exit codes: 0 = every trace valid, 1 = schema violations or "
            "unreadable files, 2 = usage error."
        ),
    )
    parser.add_argument("traces", nargs="+", help="JSONL trace files to check")
    args = parser.parse_args(argv)

    failed = 0
    for path in args.traces:
        try:
            records = read_trace(path)
        except Exception as exc:
            print(f"{path}: unreadable ({exc})")
            failed += 1
            continue
        errors = validate_trace(records)
        if errors:
            failed += 1
            print(f"{path}: {len(errors)} schema error(s)")
            for error in errors:
                print(f"  - {error}")
        else:
            spans = sum(1 for r in records if r.get("type") == "span")
            events = sum(1 for r in records if r.get("type") == "event")
            print(f"{path}: ok ({spans} spans, {events} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
