"""Cold-vs-warm lint benchmark: the incremental cache must pay for itself.

``python benchmarks/bench_lint.py [--paths src ...] [--output FILE]``

Runs the whole-program linter twice against a fresh result store:

* **cold** — every file is parsed, single-file rules run, facts extracted,
  and the record stored;
* **warm** — every per-file record replays from the store; only the
  project phase (graph build + flow rules) executes.

Both runs must produce byte-identical reports (the engine's contract);
the report records wall times, the speedup, and the cache hit counts.
CI gates on the result with ``check_regression.py --lint``: a warm run
slower than 3x cold means the cache stopped earning its keep.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.lint.engine import run_lint  # noqa: E402
from repro.lint.project.cache import FactsCache  # noqa: E402
from repro.lint.reporters import render_json  # noqa: E402
from repro.store.store import ResultStore  # noqa: E402

BENCH_SCHEMA = "repro-bench-lint/1"


def bench(paths, repeats: int = 1) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-lint-bench-") as root:
        t0 = time.perf_counter()
        cold = run_lint(paths, cache=FactsCache(ResultStore(root)))
        cold_s = time.perf_counter() - t0

        warm_s = float("inf")
        warm = None
        for _ in range(max(1, repeats)):
            cache = FactsCache(ResultStore(root))
            t0 = time.perf_counter()
            warm = run_lint(paths, cache=cache)
            warm_s = min(warm_s, time.perf_counter() - t0)

    return {
        "schema": BENCH_SCHEMA,
        "paths": list(paths),
        "files": cold.files_checked,
        "findings": len(cold.findings),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "identical": render_json(cold) == render_json(warm),
        "warm_hits": warm.cache_stats["hits"],
        "warm_misses": warm.cache_stats["misses"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--paths",
        nargs="+",
        default=[os.path.join(REPO_ROOT, "src")],
        metavar="PATH",
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="warm runs to take the best of (default 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    args = parser.parse_args(argv)

    report = bench(args.paths, repeats=args.repeats)
    print(
        f"lint[{report['files']} files]: cold {report['cold_s']}s, "
        f"warm {report['warm_s']}s ({report['speedup']}x), "
        f"warm cache {report['warm_hits']} hit(s) / "
        f"{report['warm_misses']} miss(es), "
        f"reports {'byte-identical' if report['identical'] else 'DIVERGED'}"
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if report["identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
