#!/usr/bin/env python
"""Runtime determinism smoke check: run an experiment twice, diff digests.

Usage: PYTHONPATH=src python benchmarks/check_determinism.py
           [--exp NAME | --chaos | --service] [--quick/--full] [--jobs N]
           [--verbose] [--store]

The static pass (``python -m repro lint``) proves the *patterns* that break
determinism are absent; this script is its dynamic counterpart.  It executes
the chosen experiment sweep (EXP-3, the extraction pipeline, by default —
the deepest consumer of replay, tries, and caching) twice in-process with
identical parameters and compares SHA-256 digests of the rendered tables
and of the merged obs counter registries.  Any divergence — ambient RNG,
set-order leakage, cross-run cache contamination — fails with exit 1.

With ``--jobs N`` (N > 1) the second run additionally exercises the
parallel sweep driver, so the diff doubles as a serial-vs-parallel parity
check.

With ``--store`` both compared runs are routed through a throwaway
content-addressed result store that a cold run prepopulates first: the
check then also proves that warm (all-hits) sweeps render the same bytes
and obs counters as each other regardless of job count, and that no row
was silently re-executed.

CI runs the quick parameterization; it completes in well under a minute.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

QUICK_OVERRIDES = {
    "exp1": dict(ns=(2, 3), seeds=(0,)),
    "exp2": dict(ns=(2, 3), seeds=(0,)),
    "exp3": dict(ns=(3,), seeds=(0,)),
    "exp5": dict(seeds=(0,)),
    "exp6": dict(seeds=range(3)),
    "exp7": dict(ns=(2, 3), seeds=(0,)),
    "exp9": dict(seeds=(0,)),
}


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_counters(snapshot: dict) -> str:
    """Registry snapshot as sorted (section, key, value) triples.

    Key insertion order and zero-valued counters are presentation detail
    (a worker that never increments a counter ships no delta for it), so
    they are normalized away before hashing.
    """
    triples = []
    for section, values in sorted(snapshot.items()):
        if not isinstance(values, dict):
            triples.append((section, "", repr(values)))
            continue
        for key, value in sorted(values.items()):
            if section == "counters" and not value:
                continue
            triples.append((section, key, repr(value)))
    return repr(triples)


def run_once(exp: str, quick: bool, jobs: int, store=None) -> dict:
    """One full experiment run; returns digests of everything observable."""
    from repro import obs
    from repro.detectors.base import clear_history_cache
    from repro.harness import experiments

    runner = getattr(experiments, f"{exp}_{_SUFFIXES[exp]}")
    kwargs = dict(QUICK_OVERRIDES.get(exp, {})) if quick else {}
    kwargs["jobs"] = jobs
    if store is not None:
        kwargs["store"] = store

    # Fresh cross-run state: the point is to prove a rerun reproduces the
    # first run from nothing but (parameters, seeds).
    clear_history_cache()
    obs.enable(label=f"determinism:{exp}", fresh_metrics=True)
    try:
        table = runner(**kwargs)
    finally:
        obs.disable()
    rendered = table.render()
    counters = _canonical_counters(obs.metrics().snapshot())
    return {
        "table": _digest(rendered),
        "counters": _digest(counters),
        "rendered": rendered,
        "counters_text": counters,
    }


#: The quick --chaos parameterization: three matrix rows covering all
#: three run kinds (consensus liveness, consensus safety, register safety).
CHAOS_QUICK_NAMES = ("omega-crashed", "split-quorums", "register-split")
CHAOS_QUICK_BUDGET = 60_000

#: The --service parameterization: burst workload at several batch sizes.
SERVICE_QUICK = dict(clients=5, commands=40, seed=17)
SERVICE_FULL = dict(clients=8, commands=96, seed=17)
SERVICE_BATCH_SIZES = (1, 4, 16)


def run_service_once(quick: bool) -> dict:
    """One service pass: the seeded burst workload at every batch size.

    The whole asyncio service runs on the logical clock, so the applied
    command sequence and the counter registry are functions of (spec,
    config) alone.  The rendered table carries one row per batch size
    *plus* the cross-batch digest set — so a single diff proves both
    double-run identity and that batching never changes what is applied.
    """
    from repro import obs
    from repro.detectors.base import clear_history_cache
    from repro.harness.load import LoadSpec, run_service_load
    from repro.service.service import ServiceConfig

    params = SERVICE_QUICK if quick else SERVICE_FULL
    spec = LoadSpec(mode="open", arrival_every=0, deadline_ticks=8000,
                    **params)

    clear_history_cache()
    obs.enable(label="determinism:service", fresh_metrics=True)
    try:
        lines = []
        digests = set()
        for batch_size in SERVICE_BATCH_SIZES:
            config = ServiceConfig(
                n=3,
                seed=params["seed"],
                batch_size=batch_size,
                queue_depth=max(params["commands"], 64),
            )
            report, service = run_service_load(config, spec)
            digests.add(report.applied_digest)
            lines.append(
                f"batch={batch_size} committed={report.committed} "
                f"shed={report.shed} timed_out={report.timed_out} "
                f"kernel_steps={report.kernel_steps} "
                f"applied={report.applied_digest} "
                f"p50={report.latency_percentile(0.5)} "
                f"p99={report.latency_percentile(0.99)} "
                f"invariants_ok={service.invariants.ok}"
            )
        lines.append(f"cross_batch_digests={sorted(digests)}")
        if len(digests) != 1:
            lines.append("CROSS-BATCH DIVERGENCE")
    finally:
        obs.disable()
    rendered = "\n".join(lines)
    # Timers hold wall durations — logical identity lives in counters
    # and gauges only.
    snapshot = {
        k: v
        for k, v in obs.metrics().snapshot().items()
        if k != "timers"
    }
    counters = _canonical_counters(snapshot)
    return {
        "table": _digest(rendered),
        "counters": _digest(counters),
        "rendered": rendered,
        "counters_text": counters,
    }


def run_chaos_once(quick: bool, jobs: int) -> dict:
    """One chaos-matrix run; returns digests of verdicts and counters."""
    from repro import obs
    from repro.chaos.matrix import run_matrix
    from repro.detectors.base import clear_history_cache

    names = CHAOS_QUICK_NAMES if quick else None
    budget = CHAOS_QUICK_BUDGET if quick else None

    clear_history_cache()
    obs.enable(label="determinism:chaos", fresh_metrics=True)
    try:
        report = run_matrix(seed=0, budget=budget, jobs=jobs, names=names)
    finally:
        obs.disable()
    rendered = "\n".join(
        f"{v.config} ok={v.ok} found={sorted(v.found)} cases={v.cases} "
        f"steps={v.steps} sample={v.sample!r}"
        for v in report.verdicts
    )
    counters = _canonical_counters(obs.metrics().snapshot())
    return {
        "table": _digest(rendered),
        "counters": _digest(counters),
        "rendered": rendered,
        "counters_text": counters,
    }


_SUFFIXES = {
    "exp1": "nuc_sufficiency",
    "exp2": "boosting",
    "exp3": "extraction",
    "exp4": "separation",
    "exp5": "contamination",
    "exp6": "merging",
    "exp7": "scaling",
    "exp8": "exhaustive",
    "exp9": "registers",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Run an experiment sweep twice with identical seeds and fail "
            "if the result digests differ (dynamic determinism check)."
        ),
        epilog=(
            "Exit codes: 0 = digests identical, 1 = determinism violation, "
            "2 = usage error.  The static counterpart is "
            "'python -m repro lint' (see docs/linting.md)."
        ),
    )
    parser.add_argument(
        "--exp",
        default="exp3",
        choices=sorted(_SUFFIXES),
        help="experiment sweep to run twice (default: exp3, extraction)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full parameterization (default: quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the SECOND run (first is always serial), "
        "making the diff a serial-vs-parallel parity check (default 1)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print the rendered tables on mismatch",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="diff the chaos fuzzing matrix instead of an experiment sweep "
        "(quick: three rows, capped budget; full: the whole matrix)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="diff the asyncio consensus service instead: the seeded "
        "burst workload at batch sizes 1/4/16 on the logical clock, "
        "twice — also proves the applied digest is batch-size-invariant",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="route both compared runs through a prepopulated throwaway "
        "result store: a cold run fills it first, then the serial and "
        "jobs=N runs must both be all-hits AND digest-identical",
    )
    args = parser.parse_args(argv)

    if args.store and (args.chaos or args.service):
        print("error: --store applies to experiment sweeps only",
              file=sys.stderr)
        return 2
    if args.chaos and args.service:
        print("error: pick one of --chaos / --service", file=sys.stderr)
        return 2

    quick = not args.full
    if args.service:
        label = "consensus service"
    elif args.chaos:
        label = "chaos matrix"
    else:
        label = args.exp
    store = None
    store_ctx = None
    if args.store:
        import tempfile

        from repro.store import ResultStore

        store_ctx = tempfile.TemporaryDirectory(prefix="repro-determ-store-")
        store = ResultStore(store_ctx.name)
        print(f"prepopulating result store (cold {args.exp} run) ...",
              flush=True)
        run_once(args.exp, quick, 1, store=store)
        store.stats.reset()
    if args.service:
        once = lambda jobs: run_service_once(quick)  # noqa: E731
    elif args.chaos:
        once = lambda jobs: run_chaos_once(quick, jobs)  # noqa: E731
    else:
        once = (  # noqa: E731
            lambda jobs: run_once(args.exp, quick, jobs, store=store)
        )
    print(
        f"run 1/2: {label} ({'quick' if quick else 'full'}, serial) ...",
        flush=True,
    )
    first = once(1)
    print(
        f"run 2/2: {label} ({'quick' if quick else 'full'}, "
        f"jobs={args.jobs}) ...",
        flush=True,
    )
    second = once(args.jobs)

    ok = True
    for key in ("table", "counters"):
        match = first[key] == second[key]
        print(
            f"{key:8s}: {first[key][:16]} vs {second[key][:16]} "
            f"[{'ok' if match else 'MISMATCH'}]"
        )
        ok = ok and match

    if store is not None:
        cold_rows = store.stats.misses + store.stats.invalidated
        warm_ok = cold_rows == 0 and store.stats.hits > 0
        print(
            f"store   : {store.stats.hits} hit(s), {cold_rows} re-executed "
            f"across both warm runs [{'ok' if warm_ok else 'MISMATCH'}]"
        )
        ok = ok and warm_ok
        store_ctx.cleanup()

    if not ok:
        print(
            f"{label} is not deterministic: rerun with the same seeds "
            f"produced different results",
            file=sys.stderr,
        )
        if args.verbose:
            print("--- run 1 table ---\n" + first["rendered"])
            print("--- run 2 table ---\n" + second["rendered"])
            print("--- run 1 counters ---\n" + first["counters_text"])
            print("--- run 2 counters ---\n" + second["counters_text"])
        return 1
    print(f"{label} deterministic: identical table and counter digests")
    return 0


if __name__ == "__main__":
    sys.exit(main())
