"""Extraction engine benchmark: ``python benchmarks/bench_extraction.py``.

Runs the ``T_{D -> Sigma^nu}`` extraction workload (quorum-MR subject over
(Omega, Sigma), n=5) twice per case — once through the incremental
simulation trie (``use_trie=True``) and once from scratch — on identical
failure patterns and seeds, and writes ``BENCH_extraction.json`` with:

* per-case and total wall times for both modes and the observed speedup
  (the trie path is expected to be >= 2x faster on this workload);
* the trie's work counters (prefix hit-rate, steps simulated vs. replayed
  for free, subsets pruned) merged across processes and cases;
* an equivalence verdict: both modes must produce identical output
  sequences and identical Sigma^nu verdicts — the trie is an optimization,
  not a behaviour change.

``--quick`` trims the case list so CI stays fast.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Any, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

N = 5
MAX_STEPS = 2500
MIN_OUTPUTS = 3


def _run_case(trial: int, use_trie: bool) -> Dict[str, Any]:
    from repro.consensus.quorum_mr import QuorumMR
    from repro.core.extraction import ExtractionSearch
    from repro.detectors import Omega, PairedDetector, Sigma
    from repro.harness.runner import random_pattern, run_extraction

    rng = random.Random(trial)
    pattern = random_pattern(N, rng, max_faulty=2)
    detector = PairedDetector(Omega(), Sigma("pivot"))
    start = time.perf_counter()
    outcome = run_extraction(
        QuorumMR(),
        detector,
        pattern,
        seed=trial,
        max_steps=MAX_STEPS,
        min_outputs=MIN_OUTPUTS,
        search=ExtractionSearch(use_trie=use_trie),
        trace="metrics",
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "outputs": {p: list(v) for p, v in outcome.result.outputs.items()},
        "sigma_nu_ok": bool(outcome.sigma_nu_check),
        "counters": outcome.search_counters,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer cases for CI"
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_extraction.json"),
        metavar="FILE",
    )
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="file the report on the result store's bench shelf "
        "(store.put_bench('extraction', ...))",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root for --record-baseline "
        "(default: benchmarks/results/store)",
    )
    args = parser.parse_args(argv)

    from repro.core.simtrie import TrieCounters, merge_counter_dicts

    trials = range(3) if args.quick else range(7)
    cases: List[Dict[str, Any]] = []
    total = {True: 0.0, False: 0.0}
    counter_dicts: List[Dict[str, int]] = []
    all_equal = True
    for trial in trials:
        scratch = _run_case(trial, use_trie=False)
        trie = _run_case(trial, use_trie=True)
        total[False] += scratch["wall_s"]
        total[True] += trie["wall_s"]
        equal = (
            scratch["outputs"] == trie["outputs"]
            and scratch["sigma_nu_ok"] == trie["sigma_nu_ok"]
        )
        all_equal = all_equal and equal
        if trie["counters"]:
            counter_dicts.append(trie["counters"])
        cases.append(
            {
                "trial": trial,
                "scratch_s": round(scratch["wall_s"], 3),
                "trie_s": round(trie["wall_s"], 3),
                "speedup": round(scratch["wall_s"] / trie["wall_s"], 3),
                "outputs_equal": equal,
                "sigma_nu_ok": trie["sigma_nu_ok"],
            }
        )
        print(
            f"  case {trial}: scratch {scratch['wall_s']:.3f}s  "
            f"trie {trie['wall_s']:.3f}s  "
            f"speedup {scratch['wall_s'] / trie['wall_s']:.2f}x  "
            f"equal={equal}",
            flush=True,
        )

    merged = merge_counter_dicts(counter_dicts) or {}
    rates = TrieCounters(**merged) if merged else TrieCounters()
    speedup = total[False] / total[True] if total[True] else None
    print(
        f"TOTAL: scratch {total[False]:.3f}s  trie {total[True]:.3f}s  "
        f"speedup {speedup:.2f}x  all_equal={all_equal}",
        flush=True,
    )

    from repro.harness.envinfo import environment_stamp

    report = {
        "schema": "bench-extraction/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": args.quick,
        "environment": environment_stamp(REPO_ROOT),
        "workload": (
            f"T_{{D->Sigma^nu}} over quorum-MR / (Omega, Sigma), n={N}, "
            f"max {MAX_STEPS} steps, {MIN_OUTPUTS} outputs per correct "
            f"process, {len(cases)} failure patterns"
        ),
        "totals": {
            "scratch_s": round(total[False], 3),
            "trie_s": round(total[True], 3),
            "speedup": round(speedup, 3) if speedup else None,
        },
        "outputs_equal": all_equal,
        "cases": cases,
        "counters": merged,
        "counter_rates": {
            "prefix_hit_rate": round(rates.prefix_hit_rate, 4),
            "free_step_rate": round(rates.free_step_rate, 4),
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    if args.record_baseline:
        from repro.store import ResultStore

        store = ResultStore(args.store_dir)
        path = store.put_bench("extraction", report)
        print(f"recorded baseline {path}")
    if not all_equal:
        print("ERROR: trie and from-scratch outputs diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
