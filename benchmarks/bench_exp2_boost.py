"""EXP-2 (Theorem 6.7): the booster's emitted histories satisfy Sigma^nu+
across environments and faulty-quorum styles."""

from conftest import publish

from repro.harness.experiments import exp2_boosting


def test_exp2_boosting(benchmark):
    table = benchmark.pedantic(
        lambda: exp2_boosting(ns=(2, 3, 4, 5), seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        assert row[3] == "yes", row  # all_valid
