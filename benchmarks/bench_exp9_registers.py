"""EXP-9: the register gap between Sigma and Sigma^nu."""

from conftest import publish

from repro.harness.experiments import exp9_registers


def test_exp9_registers(benchmark):
    table = benchmark.pedantic(
        lambda: exp9_registers(seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        arm, atomic = row[0], row[3]
        if arm.startswith("Sigma /") or arm.startswith("Sigma control"):
            assert atomic == "yes", row
        else:
            assert atomic == "no", row  # the anomaly must manifest
