"""EXP-6 (Lemma 2.2): merging mergeable runs preserves validity & states."""

from conftest import publish

from repro.harness.experiments import exp6_merging


def test_exp6_merging(benchmark):
    table = benchmark.pedantic(
        lambda: exp6_merging(seeds=range(8), n=5),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        assert row[3] == "yes" and row[4] == "yes", row
