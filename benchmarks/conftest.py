"""Shared benchmark plumbing: table capture into benchmarks/results/."""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(table) -> None:
    """Print an experiment table and persist it under benchmarks/results/."""
    text = table.render()
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = table.title.split(":")[0].strip().lower().replace(" ", "_")
    path = os.path.join(RESULTS_DIR, f"{slug}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
