"""EXP-8: exhaustive crash-set coverage of A_nuc at n=3."""

from conftest import publish

from repro.harness.experiments import exp8_exhaustive


def test_exp8_exhaustive(benchmark):
    table = benchmark.pedantic(
        lambda: exp8_exhaustive(n=3, crash_times=(0, 25), seeds=(0,)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        assert row[4] == "yes", row
        assert row[2] == row[3], row
