"""Compare a fresh ``BENCH_kernel.json`` against the committed baseline.

``python benchmarks/check_regression.py NEW [--baseline FILE] [--threshold PCT]``

Fails (exit 1) when the new report's kernel step throughput drops more than
``--threshold`` percent (default 25) below the baseline in either trace
mode.  Wall times of the experiment sweeps are reported but not gated —
they run at quick parameterizations where noise swamps small shifts; the
steps/sec micro-benchmark is the stable signal.

When the new report carries a ``batch`` section (``bench_report.py
--batch``), the batched kernel is gated too: its primary-mode aggregate
throughput must not fall below the serial engine measured in the same run
(speedup >= 1), and must not drop more than ``--threshold`` percent below
the committed baseline's batch throughput.

``--store-baseline`` compares against the most recent report on the result
store's bench shelf (``benchmarks/results/store/bench/kernel/...``) for
*this* environment digest — same python, platform and CPU count — instead
of the committed file, so a fast dev box is never judged against CI
hardware.  Record shelf baselines with ``bench_report.py
--record-baseline``; when the shelf has no entry for this environment the
check falls back to ``--baseline`` with a notice.

``--chaos`` switches to the *semantic* regression gate instead: it runs the
quick chaos injection-matrix rows (see ``repro.chaos.matrix``) and fails if
any row stops being exact — an injector no longer finds its declared
violation, finds one outside its declared set, or an honest row stops
exhausting clean.  No baseline file is involved; the matrix's expectations
are the baseline.

CI runs this after regenerating the report so a kernel slowdown (or a chaos
matrix drift) fails the build instead of silently landing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The quick --chaos rows: one consensus-liveness, one consensus-safety and
#: one register-safety injection, plus an honest control.
CHAOS_QUICK_NAMES = (
    "nuc-honest",
    "omega-crashed",
    "split-quorums",
    "register-split",
)
CHAOS_QUICK_BUDGET = 60_000


def check_chaos(seed: int, jobs: int) -> int:
    """Run the quick matrix rows; exit 1 if any verdict is not exact."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.chaos.matrix import run_matrix

    report = run_matrix(
        seed=seed, budget=CHAOS_QUICK_BUDGET, jobs=jobs, names=CHAOS_QUICK_NAMES
    )
    failures = []
    for verdict in report.verdicts:
        found = ",".join(sorted(verdict.found)) or "-"
        expected = ",".join(sorted(verdict.expected)) or "-"
        status = "ok" if verdict.ok else "FAIL"
        print(
            f"chaos[{verdict.config}]: found {found}, expected {expected}, "
            f"{verdict.cases} cases [{status}]"
        )
        if not verdict.ok:
            failures.append(verdict.config)
            if verdict.sample:
                print(f"  sample: {verdict.sample}")
    if failures:
        print(
            "chaos matrix regressed in: " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("chaos matrix exact: every row matches its declared expectations")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "Exit codes: 0 = within threshold, 1 = throughput regression, "
            "2 = usage error.  Sweep wall times are informational only."
        ),
    )
    parser.add_argument(
        "new",
        nargs="?",
        default=None,
        help="freshly generated BENCH_kernel.json (omit with --chaos)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        metavar="FILE",
        help="committed baseline report (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max allowed throughput drop in percent (default 25)",
    )
    parser.add_argument(
        "--store-baseline",
        action="store_true",
        help="take the baseline from the result store's bench shelf "
        "(latest kernel report for this environment digest); falls back "
        "to --baseline if the shelf has none",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root for --store-baseline "
        "(default: benchmarks/results/store)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the quick chaos-matrix rows and fail on inexact verdicts "
        "(semantic gate; ignores the benchmark report arguments)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="chaos matrix seed (only with --chaos, default 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel chaos matrix workers (only with --chaos, default 1)",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        return check_chaos(args.seed, args.jobs)
    if args.new is None:
        parser.error("a fresh BENCH_kernel.json is required without --chaos")

    baseline = None
    if args.store_baseline:
        sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
        from repro.harness.envinfo import environment_digest
        from repro.store import ResultStore

        store = ResultStore(args.store_dir)
        env = environment_digest()
        found = store.latest_bench("kernel", env)
        if found is not None:
            path, baseline = found
            print(f"baseline: bench shelf kernel/{env}/{os.path.basename(path)}")
        else:
            print(
                f"baseline: shelf has no kernel report for environment "
                f"{env}; falling back to {args.baseline}"
            )
    if baseline is None:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    failures = []
    for trace in ("full", "metrics"):
        base = baseline["kernel"][trace]["steps_per_sec"]
        now = new["kernel"][trace]["steps_per_sec"]
        drop = 100.0 * (base - now) / base if base else 0.0
        status = "FAIL" if drop > args.threshold else "ok"
        print(
            f"kernel[{trace}]: baseline {base:,} steps/s, new {now:,} steps/s "
            f"({drop:+.1f}% drop) [{status}]"
        )
        if drop > args.threshold:
            failures.append(trace)

    if "batch" in new:
        batch = new["batch"]
        primary_mode = batch.get("primary_mode", "numpy")
        primary = batch[primary_mode]
        speedup = primary["speedup_vs_serial"]
        status = "FAIL" if speedup < 1.0 else "ok"
        print(
            f"batch[{primary_mode}]: {primary['steps_per_sec']:,} steps/s, "
            f"{speedup}x vs serial in the same run [{status}]"
        )
        if speedup < 1.0:
            failures.append("batch-below-serial")
        base_batch = baseline.get("batch")
        if base_batch and primary_mode in base_batch:
            base_sps = base_batch[primary_mode]["steps_per_sec"]
            now_sps = primary["steps_per_sec"]
            drop = 100.0 * (base_sps - now_sps) / base_sps if base_sps else 0.0
            status = "FAIL" if drop > args.threshold else "ok"
            print(
                f"batch[{primary_mode}]: baseline {base_sps:,} steps/s, "
                f"new {now_sps:,} steps/s ({drop:+.1f}% drop) [{status}]"
            )
            if drop > args.threshold:
                failures.append("batch-throughput")

    base_sweeps = {e["name"]: e["wall_s"] for e in baseline.get("experiments", [])}
    for entry in new.get("experiments", []):
        base_wall = base_sweeps.get(entry["name"])
        if base_wall:
            print(
                f"sweep[{entry['name']}]: baseline {base_wall}s, "
                f"new {entry['wall_s']}s (informational)"
            )

    if failures:
        print(
            f"throughput regressed >{args.threshold:.0f}% in: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("no throughput regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
