"""Compare a fresh ``BENCH_kernel.json`` against the committed baseline.

``python benchmarks/check_regression.py NEW [--baseline FILE] [--threshold PCT]``

Fails (exit 1) when the new report's kernel step throughput drops more than
``--threshold`` percent (default 25) below the baseline in either trace
mode.  Wall times of the experiment sweeps are reported but not gated —
they run at quick parameterizations where noise swamps small shifts; the
steps/sec micro-benchmark is the stable signal.

When the new report carries a ``batch`` section (``bench_report.py
--batch``), the batched kernel is gated too: its primary-mode aggregate
throughput must not fall below the serial engine measured in the same run
(speedup >= 1), and must not drop more than ``--threshold`` percent below
the committed baseline's batch throughput.

When it carries an ``obs`` section, the tracing-*off* throughput is gated
at the same threshold (against the baseline's own ``obs.off`` when
present, else the baseline's metrics-mode kernel number — older reports
predate the section).  The tracing-on overhead is informational: tracing
is a debugging mode.

``--attribute TRACE_A TRACE_B`` names two trace files (``repro run
--trace``, ``repro-trace/1`` or ``/2``); when the throughput gate trips,
the check prints the top span-path deltas between them so the failure
comes with the stage it lives in, not just a number.  See
``docs/observability.md``.

``--store-baseline`` compares against the most recent report on the result
store's bench shelf (``benchmarks/results/store/bench/kernel/...``) for
*this* environment digest — same python, platform and CPU count — instead
of the committed file, so a fast dev box is never judged against CI
hardware.  Record shelf baselines with ``bench_report.py
--record-baseline``; when the shelf has no entry for this environment the
check falls back to ``--baseline`` with a notice.

``--service BENCH_service.json`` gates the consensus-service bench
instead: cross-batch applied digests must agree, every row must commit
everything it submitted, and batch-16 commands-per-kernel-step must be at
least ``--service-speedup`` (default 3) times batch-1 on the same seeded
burst workload — all logical numbers, bit-stable across hosts.

``--chaos`` switches to the *semantic* regression gate instead: it runs the
quick chaos injection-matrix rows (see ``repro.chaos.matrix``) and fails if
any row stops being exact — an injector no longer finds its declared
violation, finds one outside its declared set, or an honest row stops
exhausting clean.  No baseline file is involved; the matrix's expectations
are the baseline.

CI runs this after regenerating the report so a kernel slowdown (or a chaos
matrix drift) fails the build instead of silently landing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The quick --chaos rows: one consensus-liveness, one consensus-safety and
#: one register-safety injection, plus an honest control.
CHAOS_QUICK_NAMES = (
    "nuc-honest",
    "omega-crashed",
    "split-quorums",
    "register-split",
)
CHAOS_QUICK_BUDGET = 60_000


def check_chaos(seed: int, jobs: int) -> int:
    """Run the quick matrix rows; exit 1 if any verdict is not exact."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.chaos.matrix import run_matrix

    report = run_matrix(
        seed=seed, budget=CHAOS_QUICK_BUDGET, jobs=jobs, names=CHAOS_QUICK_NAMES
    )
    failures = []
    for verdict in report.verdicts:
        found = ",".join(sorted(verdict.found)) or "-"
        expected = ",".join(sorted(verdict.expected)) or "-"
        status = "ok" if verdict.ok else "FAIL"
        print(
            f"chaos[{verdict.config}]: found {found}, expected {expected}, "
            f"{verdict.cases} cases [{status}]"
        )
        if not verdict.ok:
            failures.append(verdict.config)
            if verdict.sample:
                print(f"  sample: {verdict.sample}")
    if failures:
        print(
            "chaos matrix regressed in: " + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("chaos matrix exact: every row matches its declared expectations")
    return 0


def check_service(report_path: str, min_speedup: float,
                  baseline_path: str, threshold: float) -> int:
    """Gate ``BENCH_service.json``: batching must pay and nothing may drop.

    All gated numbers are logical (commands per kernel step, commit
    counts, applied digests), so they are bit-stable across hosts: the
    3x batching gate is absolute, and the per-row throughput comparison
    against the committed baseline catches code-driven regressions, not
    hardware noise.
    """
    with open(report_path) as fh:
        report = json.load(fh)
    failures = []
    for row in report["batches"]:
        complete = (
            row["committed"] == row["submitted"]
            and row["timed_out"] == 0
            and row["shed"] == 0
        )
        status = "ok" if complete else "FAIL"
        print(
            f"service[batch {row['batch_size']}]: "
            f"{row['committed']}/{row['submitted']} committed, "
            f"{row['shed']} shed, {row['timed_out']} timed out, "
            f"{row['commands_per_kstep']} cmds/kstep [{status}]"
        )
        if not complete:
            failures.append(f"batch{row['batch_size']}-incomplete")
    identical = bool(report.get("digests_identical"))
    status = "ok" if identical else "FAIL"
    print(
        f"service[digests]: applied sequences "
        f"{'identical' if identical else 'DIVERGED'} across batch sizes "
        f"[{status}]"
    )
    if not identical:
        failures.append("cross-batch-digest")
    speedup = report.get("speedup_16_vs_1") or 0.0
    status = "FAIL" if speedup < min_speedup else "ok"
    print(
        f"service[batching]: {speedup}x commands/kstep at batch 16 vs 1, "
        f"required {min_speedup}x [{status}]"
    )
    if speedup < min_speedup:
        failures.append("batching-speedup")
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except OSError:
        baseline = None
        print(f"service[baseline]: no committed report at {baseline_path}")
    if baseline is not None and os.path.abspath(
        baseline_path
    ) != os.path.abspath(report_path):
        base_rows = {r["batch_size"]: r for r in baseline.get("batches", [])}
        for row in report["batches"]:
            base = base_rows.get(row["batch_size"])
            if not base:
                continue
            base_tp = base["commands_per_kstep"]
            drop = (
                100.0 * (base_tp - row["commands_per_kstep"]) / base_tp
                if base_tp
                else 0.0
            )
            status = "FAIL" if drop > threshold else "ok"
            print(
                f"service[batch {row['batch_size']}]: baseline "
                f"{base_tp} cmds/kstep, new {row['commands_per_kstep']} "
                f"({drop:+.1f}% drop) [{status}]"
            )
            if drop > threshold:
                failures.append(f"batch{row['batch_size']}-throughput")
    if failures:
        print("service bench regressed in: " + ", ".join(failures),
              file=sys.stderr)
        return 1
    print("service bench healthy: batching pays, digests agree, no drops")
    return 0


def check_lint(report_path: str, min_speedup: float) -> int:
    """Gate the lint cold/warm report: warm must be >= min_speedup x cold
    with byte-identical findings.  See ``bench_lint.py``."""
    with open(report_path) as fh:
        report = json.load(fh)
    speedup = report.get("speedup") or 0.0
    identical = bool(report.get("identical"))
    failures = []
    status = "ok" if identical else "FAIL"
    print(
        f"lint[{report.get('files', '?')} files]: cold {report['cold_s']}s, "
        f"warm {report['warm_s']}s, reports "
        f"{'byte-identical' if identical else 'DIVERGED'} [{status}]"
    )
    if not identical:
        failures.append("warm-report-diverged")
    status = "FAIL" if speedup < min_speedup else "ok"
    print(
        f"lint[warm speedup]: {speedup}x vs required {min_speedup}x "
        f"[{status}]"
    )
    if speedup < min_speedup:
        failures.append("warm-speedup")
    if failures:
        print("lint cache regressed in: " + ", ".join(failures), file=sys.stderr)
        return 1
    print("lint cache healthy: warm runs are fast and byte-identical")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "Exit codes: 0 = within threshold, 1 = throughput regression, "
            "2 = usage error.  Sweep wall times are informational only."
        ),
    )
    parser.add_argument(
        "new",
        nargs="?",
        default=None,
        help="freshly generated BENCH_kernel.json (omit with --chaos)",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        metavar="FILE",
        help="committed baseline report (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max allowed throughput drop in percent (default 25)",
    )
    parser.add_argument(
        "--store-baseline",
        action="store_true",
        help="take the baseline from the result store's bench shelf "
        "(latest kernel report for this environment digest); falls back "
        "to --baseline if the shelf has none",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root for --store-baseline "
        "(default: benchmarks/results/store)",
    )
    parser.add_argument(
        "--attribute",
        nargs=2,
        metavar=("TRACE_A", "TRACE_B"),
        default=None,
        help="two trace files to diff (baseline run vs new run) when the "
        "throughput gate fails — prints the top span-path deltas so the "
        "regression comes with an attribution",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the quick chaos-matrix rows and fail on inexact verdicts "
        "(semantic gate; ignores the benchmark report arguments)",
    )
    parser.add_argument(
        "--service",
        default=None,
        metavar="BENCH_SERVICE_JSON",
        help="gate a bench_service.py report instead: batch-16 throughput "
        "must be at least --service-speedup times batch-1 on the same "
        "workload, applied digests must match across batch sizes, and "
        "per-row commands/kstep must not drop more than --threshold "
        "percent below the committed BENCH_service.json",
    )
    parser.add_argument(
        "--service-speedup",
        type=float,
        default=3.0,
        metavar="X",
        help="minimum batch-16-over-batch-1 commands/kstep speedup "
        "(only with --service, default 3.0)",
    )
    parser.add_argument(
        "--service-baseline",
        default=os.path.join(REPO_ROOT, "BENCH_service.json"),
        metavar="FILE",
        help="committed service baseline (only with --service)",
    )
    parser.add_argument(
        "--lint",
        default=None,
        metavar="BENCH_LINT_JSON",
        help="gate a bench_lint.py report instead: warm must be at least "
        "--lint-speedup times faster than cold and byte-identical to it",
    )
    parser.add_argument(
        "--lint-speedup",
        type=float,
        default=3.0,
        metavar="X",
        help="minimum warm-over-cold lint speedup (only with --lint, "
        "default 3.0)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="chaos matrix seed (only with --chaos, default 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel chaos matrix workers (only with --chaos, default 1)",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        return check_chaos(args.seed, args.jobs)
    if args.lint:
        return check_lint(args.lint, args.lint_speedup)
    if args.service:
        return check_service(
            args.service,
            args.service_speedup,
            args.service_baseline,
            args.threshold,
        )
    if args.new is None:
        parser.error(
            "a fresh BENCH_kernel.json is required without "
            "--chaos/--lint/--service"
        )

    baseline = None
    if args.store_baseline:
        sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
        from repro.harness.envinfo import environment_digest
        from repro.store import ResultStore

        store = ResultStore(args.store_dir)
        env = environment_digest()
        found = store.latest_bench("kernel", env)
        if found is not None:
            path, baseline = found
            print(f"baseline: bench shelf kernel/{env}/{os.path.basename(path)}")
        else:
            print(
                f"baseline: shelf has no kernel report for environment "
                f"{env}; falling back to {args.baseline}"
            )
    if baseline is None:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    failures = []
    for trace in ("full", "metrics"):
        base = baseline["kernel"][trace]["steps_per_sec"]
        now = new["kernel"][trace]["steps_per_sec"]
        drop = 100.0 * (base - now) / base if base else 0.0
        status = "FAIL" if drop > args.threshold else "ok"
        print(
            f"kernel[{trace}]: baseline {base:,} steps/s, new {now:,} steps/s "
            f"({drop:+.1f}% drop) [{status}]"
        )
        if drop > args.threshold:
            failures.append(trace)

    if "batch" in new:
        batch = new["batch"]
        primary_mode = batch.get("primary_mode", "numpy")
        primary = batch[primary_mode]
        speedup = primary["speedup_vs_serial"]
        status = "FAIL" if speedup < 1.0 else "ok"
        print(
            f"batch[{primary_mode}]: {primary['steps_per_sec']:,} steps/s, "
            f"{speedup}x vs serial in the same run [{status}]"
        )
        if speedup < 1.0:
            failures.append("batch-below-serial")
        base_batch = baseline.get("batch")
        if base_batch and primary_mode in base_batch:
            base_sps = base_batch[primary_mode]["steps_per_sec"]
            now_sps = primary["steps_per_sec"]
            drop = 100.0 * (base_sps - now_sps) / base_sps if base_sps else 0.0
            status = "FAIL" if drop > args.threshold else "ok"
            print(
                f"batch[{primary_mode}]: baseline {base_sps:,} steps/s, "
                f"new {now_sps:,} steps/s ({drop:+.1f}% drop) [{status}]"
            )
            if drop > args.threshold:
                failures.append("batch-throughput")

    if "obs" in new:
        off = new["obs"]["off"]["steps_per_sec"]
        base_off = baseline.get("obs", {}).get("off", {}).get("steps_per_sec")
        source = "obs.off"
        if not base_off:
            # Older baselines predate the obs section; the tracing-off
            # path is the plain metrics-mode kernel, so that number is
            # the honest stand-in.
            base_off = baseline["kernel"]["metrics"]["steps_per_sec"]
            source = "kernel.metrics, pre-obs baseline"
        drop = 100.0 * (base_off - off) / base_off if base_off else 0.0
        status = "FAIL" if drop > args.threshold else "ok"
        print(
            f"obs[off]: baseline {base_off:,} steps/s ({source}), "
            f"new {off:,} steps/s ({drop:+.1f}% drop) [{status}]"
        )
        if drop > args.threshold:
            failures.append("obs-tracing-off")
        print(
            f"obs[on]: {new['obs']['on']['steps_per_sec']:,} steps/s "
            f"({new['obs']['overhead_pct']:+.1f}% tracing overhead, "
            f"informational)"
        )

    base_sweeps = {e["name"]: e["wall_s"] for e in baseline.get("experiments", [])}
    for entry in new.get("experiments", []):
        base_wall = base_sweeps.get(entry["name"])
        if base_wall:
            print(
                f"sweep[{entry['name']}]: baseline {base_wall}s, "
                f"new {entry['wall_s']}s (informational)"
            )

    if failures:
        print(
            f"throughput regressed >{args.threshold:.0f}% in: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        if args.attribute:
            _attribute_failure(args.attribute[0], args.attribute[1])
        return 1
    print("no throughput regression beyond threshold")
    return 0


def _attribute_failure(trace_a: str, trace_b: str) -> None:
    """Diff two traces so the gate failure names its suspect stage."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.obs.analyze import diff_traces, render_diff
        from repro.obs.export import read_trace

        diff = diff_traces(read_trace(trace_a), read_trace(trace_b))
    except (OSError, ValueError, KeyError) as exc:
        print(f"attribution unavailable: {exc}", file=sys.stderr)
        return
    print(f"\nattribution ({trace_a} vs {trace_b}):")
    print(render_diff(diff, top=8))


if __name__ == "__main__":
    sys.exit(main())
