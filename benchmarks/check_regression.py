"""Compare a fresh ``BENCH_kernel.json`` against the committed baseline.

``python benchmarks/check_regression.py NEW [--baseline FILE] [--threshold PCT]``

Fails (exit 1) when the new report's kernel step throughput drops more than
``--threshold`` percent (default 25) below the baseline in either trace
mode.  Wall times of the experiment sweeps are reported but not gated —
they run at quick parameterizations where noise swamps small shifts; the
steps/sec micro-benchmark is the stable signal.

CI runs this after regenerating the report so a kernel slowdown fails the
build instead of silently landing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "Exit codes: 0 = within threshold, 1 = throughput regression, "
            "2 = usage error.  Sweep wall times are informational only."
        ),
    )
    parser.add_argument("new", help="freshly generated BENCH_kernel.json")
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        metavar="FILE",
        help="committed baseline report (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="max allowed throughput drop in percent (default 25)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    failures = []
    for trace in ("full", "metrics"):
        base = baseline["kernel"][trace]["steps_per_sec"]
        now = new["kernel"][trace]["steps_per_sec"]
        drop = 100.0 * (base - now) / base if base else 0.0
        status = "FAIL" if drop > args.threshold else "ok"
        print(
            f"kernel[{trace}]: baseline {base:,} steps/s, new {now:,} steps/s "
            f"({drop:+.1f}% drop) [{status}]"
        )
        if drop > args.threshold:
            failures.append(trace)

    base_sweeps = {e["name"]: e["wall_s"] for e in baseline.get("experiments", [])}
    for entry in new.get("experiments", []):
        base_wall = base_sweeps.get(entry["name"])
        if base_wall:
            print(
                f"sweep[{entry['name']}]: baseline {base_wall}s, "
                f"new {entry['wall_s']}s (informational)"
            )

    if failures:
        print(
            f"throughput regressed >{args.threshold:.0f}% in: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("no throughput regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
