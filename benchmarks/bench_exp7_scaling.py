"""EXP-7: cost scaling of A_nuc vs the MR baselines with n."""

from conftest import publish

from repro.harness.experiments import exp7_scaling


def test_exp7_scaling(benchmark):
    table = benchmark.pedantic(
        lambda: exp7_scaling(ns=(2, 3, 4, 5), seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        assert row[5] == "1.00", row  # every run decided
