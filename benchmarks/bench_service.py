"""Service throughput benchmark: batching must earn its complexity.

``python benchmarks/bench_service.py [--output FILE] [--commands N]``

Plays the same seeded burst workload (every command scheduled at tick 1,
open loop — the regime where batching matters) through the full asyncio
service at batch sizes 1, 4 and 16, all on the logical clock, and
records commands per kernel step plus commit-latency percentiles for
each.  A closed-loop spread workload rides along for latency context.

Everything gated is *logical* — commands per kernel step, latency in
ticks, applied digests — so the numbers are bit-stable across hosts;
wall seconds are recorded for curiosity only.  CI regenerates the report
and gates it with ``check_regression.py --service``: batch 16 must
commit at least 3x the commands-per-kernel-step of batch 1 on the same
workload, and every row must commit everything it submitted with digests
equal across batch sizes (batching may change grouping, never content).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.harness.load import LoadSpec, run_service_load  # noqa: E402
from repro.service.service import ServiceConfig  # noqa: E402

BENCH_SCHEMA = "repro-bench-service/1"
BATCH_SIZES = (1, 4, 16)


def bench(commands: int = 96, clients: int = 8, seed: int = 42) -> dict:
    burst = LoadSpec(
        mode="open",
        clients=clients,
        commands=commands,
        arrival_every=0,  # everything arrives at once: batching's regime
        seed=seed,
        deadline_ticks=8000,
    )
    rows = []
    for batch_size in BATCH_SIZES:
        config = ServiceConfig(
            n=3,
            seed=seed,
            batch_size=batch_size,
            queue_depth=max(commands, 64),
            max_inflight=4,
        )
        report, _service = run_service_load(config, burst)
        rows.append(report.to_row())

    by_batch = {row["batch_size"]: row for row in rows}
    base = by_batch[1]["commands_per_kstep"]
    top = by_batch[16]["commands_per_kstep"]
    speedup = round(top / base, 2) if base else None

    closed = LoadSpec(
        mode="closed",
        clients=clients,
        commands=commands,
        think_ticks=1,
        seed=seed,
        deadline_ticks=8000,
    )
    closed_report, _ = run_service_load(
        ServiceConfig(n=3, seed=seed, batch_size=4,
                      queue_depth=max(commands, 64)),
        closed,
    )

    return {
        "schema": BENCH_SCHEMA,
        "workload": {
            "mode": "open-burst",
            "clients": clients,
            "commands": commands,
            "seed": seed,
        },
        "batches": rows,
        "speedup_16_vs_1": speedup,
        "digests_identical": len({r["applied_digest"] for r in rows}) == 1,
        "closed_loop": closed_report.to_row(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="Gate the output with check_regression.py --service.",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_service.json"),
        metavar="FILE",
        help="report path (default: repo-root BENCH_service.json)",
    )
    parser.add_argument(
        "--commands", type=int, default=96, metavar="N",
        help="burst workload size (default 96)",
    )
    parser.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="sessions in the workload (default 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, metavar="N",
        help="workload and service seed (default 42)",
    )
    args = parser.parse_args(argv)

    report = bench(commands=args.commands, clients=args.clients,
                   seed=args.seed)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for row in report["batches"]:
        print(
            f"batch {row['batch_size']:>2}: "
            f"{row['committed']}/{row['submitted']} committed, "
            f"{row['commands_per_kstep']:.4f} cmds/kstep, "
            f"p50 {row['latency_p50_ticks']} / "
            f"p99 {row['latency_p99_ticks']} ticks, "
            f"{row['wall_seconds']}s wall"
        )
    print(
        f"speedup batch16/batch1: {report['speedup_16_vs_1']}x, digests "
        f"{'identical' if report['digests_identical'] else 'DIVERGED'}"
    )
    closed = report["closed_loop"]
    print(
        f"closed loop (batch 4): {closed['committed']} committed, "
        f"p50 {closed['latency_p50_ticks']} / "
        f"p99 {closed['latency_p99_ticks']} ticks"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
