"""EXP-5 (Section 6.3): the contamination scenario, naive vs A_nuc."""

from conftest import publish

from repro.harness.experiments import exp5_contamination


def test_exp5_contamination(benchmark):
    table = benchmark.pedantic(
        lambda: exp5_contamination(seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    publish(table)
    for row in table.rows:
        algorithm, violated, history_valid = row[0], row[3], row[4]
        assert history_valid == "yes", row
        if algorithm == "naive":
            assert violated == "yes", row
        else:
            assert violated == "no", row
