"""The asyncio consensus service: sessions, batching, leases, backpressure.

Pipeline (each stage traced when ``repro.obs`` is enabled)::

    submit -> [intake queue] -> batch -> propose (feed leader)
           -> kernel steps -> decide -> certify -> apply -> reply

Clients talk to :meth:`ConsensusService.submit` with ``(session, seq,
op)`` commands; session sequence numbers give exactly-once apply (the
apply loop skips duplicates) and FIFO order (checked online by
:class:`repro.smr.properties.ServiceInvariants`).  The *batcher* drains
the bounded intake queue into ``("batch", "svc", n, cmds)`` log entries —
one consensus instance certifies a whole batch, which is where the
batch-16-vs-1 throughput win comes from — and the *pump* advances the
kernel a bounded burst of steps per tick, applies newly certified slots,
and resolves client futures.

Backpressure: the intake queue is bounded; ``submit`` awaits space
(closed-loop clients slow down) while ``try_submit`` raises
:class:`Backpressure` (open-loop clients shed).  Pipelining is bounded by
``max_inflight`` undecided batches.

Reads: a reply may only expose *certified* state (see
:mod:`repro.service.core`).  Reads are served under a *lease* — a
believed-leader identity cached for ``lease_ticks`` — so steady-state
reads cost no detector query.  The lease optimizes nothing about safety:
``read_mode="majority"`` serves the certified prefix regardless of who
holds the lease; ``read_mode="local"`` (unsafe, for demonstration) serves
the lease holder's decided-but-possibly-uncertified log.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.service.clock import TickClock
from repro.service.core import ServiceCore
from repro.smr.properties import ServiceInvariants, flatten_batches


class Backpressure(Exception):
    """The bounded intake queue is full; the command was shed."""


class Unavailable(Exception):
    """No alive replica can serve (all crashed or no lease obtainable)."""


@dataclass
class ServiceConfig:
    """Everything that determines a service run (with the seed)."""

    n: int = 3
    seed: int = 0
    batch_size: int = 4
    max_inflight: int = 4
    queue_depth: int = 64
    steps_per_tick: int = 256
    lease_ticks: int = 64
    read_mode: str = "majority"  # "majority" (safe) | "local" (unsafe demo)
    crash_times: Dict[int, int] = field(default_factory=dict)
    detector: Any = None

    def __post_init__(self) -> None:
        if self.read_mode not in ("majority", "local"):
            raise ValueError(f"unknown read_mode {self.read_mode!r}")
        if self.batch_size < 1 or self.max_inflight < 1:
            raise ValueError("batch_size and max_inflight must be >= 1")


class ConsensusService:
    """One deployment: a core, a batcher task and a pump task.

    Lifecycle::

        service = ConsensusService(config, clock)
        service.start()          # spawns batcher + pump on the running loop
        await service.submit(session, seq, op)   # -> ("ok", slot, index)
        await service.read()                     # -> certified commands
        await service.stop()
    """

    def __init__(self, config: ServiceConfig, clock: TickClock):
        self.config = config
        self.clock = clock
        self.core = ServiceCore(
            config.n,
            crash_times=config.crash_times,
            seed=config.seed,
            detector=config.detector,
        )
        self._intake: asyncio.Queue = asyncio.Queue(maxsize=config.queue_depth)
        self._batch_seq = 0
        self._inflight: Dict[int, Tuple] = {}  # batch seq -> log entry
        self._waiters: Dict[Tuple, List[asyncio.Future]] = {}
        self._applied: Dict[Tuple, Tuple] = {}  # (session, seq) -> reply
        self._applied_slots = 0
        self._lease: Optional[Tuple[int, int]] = None  # (holder, expiry tick)
        self.applied_commands: List[Tuple] = []
        self.invariants = ServiceInvariants()
        self.read_log: List[Tuple[int, Tuple]] = []  # audit: (prefix, view)
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "shed": 0,
            "batches": 0,
            "committed": 0,
            "duplicates": 0,
            "reads": 0,
            "kernel_steps": 0,
            "ticks": 0,
            "refeeds": 0,
        }
        self._tasks: List[asyncio.Task] = []
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._batcher()),
            loop.create_task(self._pump()),
        ]

    async def stop(self) -> None:
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        # Nothing will resolve waiters once the pump is gone; cancel them
        # so clients blocked in submit() don't hang forever.
        for futures in self._waiters.values():
            for future in futures:
                if not future.done():
                    future.cancel()
        self._waiters.clear()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------

    async def submit(self, session, seq: int, op) -> Tuple:
        """Submit and await commit; blocks on a full queue (closed loop)."""
        key = (session, seq)
        if key in self._applied:  # exactly-once resubmit fast path
            self.stats["duplicates"] += 1
            return self._applied[key]
        if key in self._waiters:  # already in flight: piggyback, don't re-log
            self.stats["duplicates"] += 1
            return await self._register_waiter(key)
        future = self._register_waiter(key)
        await self._intake.put((session, seq, op))
        self._note_submit(session, seq)
        return await future

    def try_submit(self, session, seq: int, op) -> asyncio.Future:
        """Non-blocking submit; raises :class:`Backpressure` when full
        (open loop).  Returns a future resolving at commit."""
        key = (session, seq)
        if key in self._applied:
            self.stats["duplicates"] += 1
            future = asyncio.get_running_loop().create_future()
            future.set_result(self._applied[key])
            return future
        if key in self._waiters:  # already in flight: piggyback, don't re-log
            self.stats["duplicates"] += 1
            return self._register_waiter(key)
        future = self._register_waiter(key)
        try:
            self._intake.put_nowait((session, seq, op))
        except asyncio.QueueFull:
            self.stats["shed"] += 1
            if obs._ENABLED:
                obs.metrics().inc("service.shed")
            self._waiters[key].remove(future)
            if not self._waiters[key]:
                del self._waiters[key]
            future.cancel()
            raise Backpressure(f"intake queue full ({self.config.queue_depth})")
        self._note_submit(session, seq)
        return future

    async def read(self) -> Tuple:
        """The certified command sequence, served under a lease."""
        self._acquire_lease()
        self.stats["reads"] += 1
        if obs._ENABLED:
            obs.metrics().inc("service.reads")
        if self.config.read_mode == "majority":
            prefix, view = self._applied_slots, tuple(self.applied_commands)
        else:  # "local": the lease holder's decided log, uncertified.
            holder = self._lease[0] if self._lease else 0
            log = self.core.replicas[holder].log
            prefix, view = len(log), tuple(flatten_batches(log))
        self.read_log.append((prefix, view))
        return view

    # ------------------------------------------------------------------

    def _register_waiter(self, key: Tuple) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(key, []).append(future)
        return future

    def _note_submit(self, session, seq: int) -> None:
        self.stats["submitted"] += 1
        if obs._ENABLED:
            obs.metrics().inc("service.submitted")
            obs.tracer().event(
                "service.submit",
                tick=self.clock.now_ticks(),
                session=str(session),
                seq=seq,
            )

    def _acquire_lease(self) -> None:
        tick = self.clock.now_ticks()
        if self._lease is not None:
            holder, expiry = self._lease
            if tick < expiry and self.core.pattern.is_alive(
                holder, self.core.time
            ):
                return
        holder = self.core.leader_hint()
        if holder is None:
            raise Unavailable("no alive replica to lease from")
        self._lease = (holder, tick + self.config.lease_ticks)
        if obs._ENABLED:
            obs.metrics().inc("service.leases")
            obs.tracer().event("service.lease", tick=tick, holder=holder)

    # ------------------------------------------------------------------
    # Background tasks
    # ------------------------------------------------------------------

    async def _batcher(self) -> None:
        while True:
            first = await self._intake.get()
            # Wait for an inflight slot before draining the queue: holding
            # a full batch outside the queue would free queue slots early
            # and silently extend intake capacity beyond queue_depth.
            while len(self._inflight) >= self.config.max_inflight:
                await self.clock.sleep_ticks(1)  # pipelining bound
            batch = [first]
            while len(batch) < self.config.batch_size:
                try:
                    batch.append(self._intake.get_nowait())
                except asyncio.QueueEmpty:
                    break
            seq = self._batch_seq
            self._batch_seq += 1
            entry = ("batch", "svc", seq, tuple(batch))
            self._inflight[seq] = entry
            fed = self.core.feed_batch(entry)
            self.stats["batches"] += 1
            if obs._ENABLED:
                tick = self.clock.now_ticks()
                with obs.tracer().span(
                    "service.batch", tick=tick, seq=seq, size=len(batch)
                ):
                    obs.tracer().event(
                        "service.propose",
                        tick=tick,
                        seq=seq,
                        size=len(batch),
                        replica=-1 if fed is None else fed,
                    )
                obs.metrics().inc("service.batches")
                obs.metrics().inc("service.batched_commands", len(batch))

    async def _pump(self) -> None:
        clock = self.clock
        steps_per_tick = self.config.steps_per_tick
        while True:
            tick = clock.now_ticks()
            self.stats["ticks"] += 1
            if self._inflight:
                self.stats["refeeds"] += self.core.refeed_pending(
                    list(self._inflight.values())
                )
            if self.core.has_work():
                if obs._ENABLED:
                    with obs.tracer().span(
                        "service.kernel", tick=tick
                    ) as span:
                        taken = self.core.step(steps_per_tick)
                        span.set(steps=taken)
                else:
                    taken = self.core.step(steps_per_tick)
                self.stats["kernel_steps"] += taken
                if obs._ENABLED:
                    obs.metrics().inc("service.kernel_steps", taken)
            self._apply_certified(tick)
            await clock.sleep_ticks(1)

    def _apply_certified(self, tick: int) -> None:
        # Apply from the per-slot quorum-majority log, never from any
        # single replica: the longest local log may be a faulty replica's
        # and hold a divergent value inside the certified range.
        log = self.core.certified_log()
        certified = len(log)
        if certified <= self._applied_slots:
            return
        if obs._ENABLED:
            span_cm = obs.tracer().span(
                "service.apply", tick=tick, from_slot=self._applied_slots
            )
        else:
            span_cm = None
        applied = 0
        with span_cm if span_cm is not None else _NULL_CM:
            while self._applied_slots < certified:
                slot = self._applied_slots
                entry = log[slot]
                self._applied_slots += 1
                if entry is None or entry[0] != "batch":
                    continue
                _, _origin, bseq, commands = entry
                self._inflight.pop(bseq, None)
                if obs._ENABLED:
                    obs.tracer().event(
                        "service.decide", tick=tick, slot=slot, seq=bseq
                    )
                for session, seq, op in commands:
                    if not self.invariants.observe(session, seq, op, slot=slot):
                        self.stats["duplicates"] += 1
                        continue
                    self.applied_commands.append((session, seq, op))
                    reply = ("ok", slot, len(self.applied_commands) - 1)
                    self._applied[(session, seq)] = reply
                    self.stats["committed"] += 1
                    applied += 1
                    for future in self._waiters.pop((session, seq), ()):
                        if not future.done():
                            future.set_result(reply)
                    if obs._ENABLED:
                        obs.tracer().event(
                            "service.reply",
                            tick=tick,
                            session=str(session),
                            seq=seq,
                            slot=slot,
                        )
        if applied and obs._ENABLED:
            obs.metrics().inc("service.committed", applied)

    # ------------------------------------------------------------------
    # Introspection (harness + bench)
    # ------------------------------------------------------------------

    @property
    def certified_slots(self) -> int:
        return self._applied_slots

    def inflight(self) -> int:
        return len(self._inflight)

    def decided_digest_input(self) -> Tuple:
        """Canonical run summary for byte-identity comparisons."""
        return (
            tuple(self.core.certified_log()),
            tuple(self.applied_commands),
        )


class _NullCM:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CM = _NullCM()
