"""The synchronous consensus core beneath the asyncio service.

:class:`ServiceCore` owns a kernel :class:`~repro.kernel.system.System` of
:class:`~repro.smr.replicated_log.ReplicatedLogProcess` replicas running
unbounded logs under a sampled (Omega, Sigma^nu+) history.  The service
pump drives it in bounded step bursts (:meth:`step`), feeds client
batches at the believed leader (:meth:`feed_batch` — client-to-leader
routing one level above the in-protocol FWD forwarding), and reads back
two views of progress:

* the *decided* log — the longest local log; nonuniformly safe only, and
* the *certified* log — the per-slot quorum-majority entries of the
  longest prefix on which a majority of replica logs agree; the
  client-exposable (uniform-safe) part.

The core is deliberately detector-skeptical: certification counts actual
log matches, never detector output, so a lying injector (``SplitQuorums``,
``CrashedLeaderOmega``) can stall progress or mislead routing but cannot
make an uncertified value count as certified.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.kernel.failures import FailurePattern
from repro.kernel.system import System
from repro.smr.properties import certified_log, certified_prefix_length
from repro.smr.replicated_log import Command, ReplicatedLogProcess


class ServiceCore:
    """Kernel-side state of one service deployment."""

    def __init__(
        self,
        n: int,
        crash_times: Optional[Dict[int, int]] = None,
        seed: int = 0,
        detector: Any = None,
    ):
        if detector is None:
            from repro.detectors import Omega, PairedDetector, SigmaNuPlus

            detector = PairedDetector(Omega(), SigmaNuPlus())
        self.pattern = FailurePattern(n, crash_times or {})
        self.history = detector.sample_history(
            self.pattern, random.Random(seed + 777)
        )
        self.replicas: Dict[int, ReplicatedLogProcess] = {
            p: ReplicatedLogProcess((), slots=None) for p in range(n)
        }
        self.system = System(
            self.replicas,
            self.pattern,
            self.history,
            seed=seed,
            trace="metrics",
        )
        self.quorum = n // 2 + 1
        self._history_fn = (
            self.history.value if hasattr(self.history, "value") else self.history
        )
        self._fed_at: Dict[Command, int] = {}  # batch -> replica last fed

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.pattern.n

    @property
    def time(self) -> int:
        return self.system.time

    def alive(self) -> List[int]:
        return sorted(self.pattern.alive_at(self.system.time))

    def leader_hint(self) -> Optional[int]:
        """Best guess at the current leader, for client-side routing.

        The Omega component as seen by the lowest alive replica; if that
        hint is crashed (a lying detector), fall back to the lowest alive
        replica.  Routing is a liveness-only concern — feeding the wrong
        replica wastes a forward, never safety.
        """
        alive = self.alive()
        if not alive:
            return None
        d = self._history_fn(alive[0], self.system.time)
        if isinstance(d, tuple) and d and isinstance(d[0], int):
            hint = d[0]
            if self.pattern.is_alive(hint, self.system.time):
                return hint
        return alive[0]

    # ------------------------------------------------------------------

    def feed_batch(self, batch: Command) -> Optional[int]:
        """Hand ``batch`` to the believed leader; returns the replica fed."""
        target = self.leader_hint()
        if target is None:
            return None
        self.replicas[target].feed(batch)
        self._fed_at[batch] = target
        return target

    def refeed_pending(self, inflight) -> int:
        """Re-route undecided batches when the believed leader moved.

        Safe to over-feed: a replica dedups via ``feed``, seq-eligibility
        stops stale re-proposals, and per-slot consensus picks one value
        even if two replicas race the same batch.
        """
        target = self.leader_hint()
        if target is None:
            return 0
        moved = 0
        for batch in inflight:
            if self._fed_at.get(batch) != target:
                self.replicas[target].feed(batch)
                self._fed_at[batch] = target
                moved += 1
        return moved

    def step(self, budget: int) -> int:
        """Advance the kernel up to ``budget`` steps; returns steps taken."""
        taken = 0
        step = self.system.step
        for _ in range(budget):
            if step() is None:
                break
            taken += 1
        return taken

    # ------------------------------------------------------------------

    def decided_log(self) -> List[Optional[Command]]:
        """The longest local decided log (nonuniform view).

        Introspection only: the longest log may belong to a faulty
        replica holding a divergent entry, so certified state must be
        read via :meth:`certified_log`, never sliced out of this one.
        """
        best = max(self.replicas.values(), key=lambda r: len(r.log))
        return list(best.log)

    def certified_log(self) -> List[Optional[Command]]:
        """Per-slot quorum-majority entries of the certified prefix.

        The uniform-safe log: each entry is backed by a majority of
        matching replica logs, so no single faulty replica's divergence
        can reach it.  This is the only log the service may apply from
        or expose to clients.
        """
        return certified_log(
            {p: r.log for p, r in self.replicas.items()}, self.quorum
        )

    def certified_length(self) -> int:
        """Slots certified by a majority of matching replica logs."""
        return certified_prefix_length(
            {p: r.log for p, r in self.replicas.items()}, self.quorum
        )

    def logs(self) -> Dict[int, List[Optional[Command]]]:
        return {p: list(r.log) for p, r in self.replicas.items()}

    def has_work(self) -> bool:
        """Whether stepping the kernel can still make client-visible
        progress: a pending command at an *alive* replica, or decided
        slots not yet certified.  Crashed replicas' frozen pending pools
        and logs are excluded — no amount of stepping moves them."""
        t = self.system.time
        alive = [p for p in range(self.n) if self.pattern.is_alive(p, t)]
        if not alive:
            return False
        if any(self.replicas[p].pending_commands() for p in alive):
            return True
        longest = max(len(self.replicas[p].log) for p in alive)
        return self.certified_length() < longest
