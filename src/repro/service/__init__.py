"""Consensus as a service: an asyncio front-end over :mod:`repro.smr`.

The replicated log decides *values*; this package serves *clients*.  A
:class:`ConsensusService` accepts command submissions over sessions,
batches them into pipelined consensus instances (one (Omega, Sigma^nu+)
round amortized across a whole batch, Multi-Paxos style), applies
bounded-queue backpressure, and serves reads from quorum-*certified*
state under leases.

Certification is where the paper's nonuniform/uniform gap becomes an
operational rule: a decided slot is *nonuniformly* safe (correct replicas
agree) but a faulty replica may have applied a divergent value before
crashing, so a reply exposed to a client — which outlives any single
replica — must wait until a majority of replica logs hold the value.
``read_mode="majority"`` enforces this; ``read_mode="local"`` serves a
single replica's decided state and exists only to *demonstrate* the
anomaly the rule prevents.

Determinism: under :class:`repro.service.clock.LogicalTimeLoop` the whole
service — asyncio scheduling included — is a pure function of (config,
seed).  The test harness exploits this to assert byte-identical decided
logs across runs and across batch sizes.
"""

from repro.service.clock import (
    TICK_SECONDS,
    LogicalTimeLoop,
    TickClock,
    logical_event_loop,
)
from repro.service.core import ServiceCore
from repro.service.service import (
    Backpressure,
    ConsensusService,
    ServiceConfig,
    Unavailable,
)

__all__ = [
    "Backpressure",
    "ConsensusService",
    "LogicalTimeLoop",
    "ServiceConfig",
    "ServiceCore",
    "TICK_SECONDS",
    "TickClock",
    "Unavailable",
    "logical_event_loop",
]
