"""A deterministic asyncio event loop driven by logical time.

Production mode runs the service on a stock event loop against wall
clocks.  Under test we want the *same* asyncio machinery — tasks, queues,
futures, timeouts — but with no real sleeping and no timing jitter:
:class:`LogicalTimeLoop` replaces the selector's blocking wait with a
logical-clock jump.  Whenever the loop would block for ``timeout``
seconds (no ready callbacks, nearest timer ``timeout`` away), the
selector polls real I/O without blocking and, finding none, advances the
logical clock by exactly ``timeout``.  ``loop.time()`` reads that logical
clock, so timers fire in a deterministic order that depends only on the
program — runs are bit-identical regardless of host load.

A would-block-forever wait (no ready callbacks, no timers, no I/O) is a
deadlock under logical time; the loop surfaces it as a ``RuntimeError``
instead of hanging the test suite.

:class:`TickClock` quantizes loop time into integer *ticks* (the
service's scheduling unit and the tick source for ``repro.obs`` spans, so
traces line up with service time, not wall time).
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Callable, List, Optional, Tuple

#: One service tick in loop-time seconds.  Coarse enough that float
#: accumulation never splits a tick, fine enough for thousands of ticks.
TICK_SECONDS = 1 / 1024.0


class _FastForwardSelector(selectors.DefaultSelector):
    """A selector that fast-forwards a logical clock instead of blocking."""

    def __init__(self) -> None:
        super().__init__()
        #: Installed by the owning loop: called with the timeout the
        #: selector would otherwise have blocked for.
        self.on_idle: Optional[Callable[[float], None]] = None

    def select(self, timeout: Optional[float] = None) -> List[Tuple]:
        events = super().select(0)
        if events or timeout == 0:
            return events
        if timeout is None:
            raise RuntimeError(
                "logical event loop deadlock: no ready callbacks, no "
                "timers, no I/O — an await can never complete"
            )
        if self.on_idle is not None:
            self.on_idle(timeout)
        return events


class LogicalTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock is logical and jump-forward.

    ``time()`` starts at 0.0 and advances only when every runnable
    callback has run and the loop would otherwise block — by exactly the
    blocking duration.  All asyncio timing (``asyncio.sleep``,
    ``wait_for``, ``call_later``) therefore executes deterministically.
    """

    def __init__(self) -> None:
        self._logical_now = 0.0
        selector = _FastForwardSelector()
        super().__init__(selector)
        selector.on_idle = self._advance

    def _advance(self, timeout: float) -> None:
        self._logical_now += timeout

    def time(self) -> float:
        return self._logical_now


class TickClock:
    """Integer-tick view of a loop's clock; the service's time source."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 tick_seconds: float = TICK_SECONDS):
        self._loop = loop
        self._tick = tick_seconds

    @property
    def tick_seconds(self) -> float:
        return self._tick

    def now_ticks(self) -> int:
        # round() tolerates float accumulation drift well below a tick.
        return int(round(self._loop.time() / self._tick))

    async def sleep_ticks(self, ticks: int) -> None:
        await asyncio.sleep(ticks * self._tick)


def logical_event_loop() -> LogicalTimeLoop:
    """A fresh deterministic loop (callers own closing it)."""
    return LogicalTimeLoop()


def run_on_logical_loop(main_factory):
    """Run ``main_factory(loop)``'s coroutine to completion on a fresh
    logical loop; returns its result.  The sync entry point the harness
    and CLI use under ``--logical`` time."""
    loop = logical_event_loop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(main_factory(loop))
    finally:
        asyncio.set_event_loop(None)
        loop.close()
