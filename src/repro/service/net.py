"""A minimal TCP front for :class:`ConsensusService` (production mode).

Wire protocol: newline-delimited JSON, one request per line::

    {"op": "submit", "session": "s1", "seq": 0, "cmd": "set x 1"}
    {"op": "read"}
    {"op": "stats"}

Replies mirror the request with ``"ok": true/false`` plus payload.  The
front is deliberately thin — all semantics (batching, certification,
leases, backpressure) live in :class:`ConsensusService`; this module only
frames bytes.  Under test the service is exercised directly on a logical
loop and this module stays out of the picture.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict

from repro.service.service import Backpressure, ConsensusService, Unavailable


async def _handle_request(
    service: ConsensusService, request: Dict[str, Any]
) -> Dict[str, Any]:
    op = request.get("op")
    if op == "submit":
        session = request.get("session")
        seq = request.get("seq")
        if session is None or seq is None or "cmd" not in request:
            return {
                "ok": False,
                "error": "bad request",
                "detail": "submit requires session, seq and cmd",
            }
        try:
            seq = int(seq)
        except (TypeError, ValueError):
            return {
                "ok": False,
                "error": "bad request",
                "detail": "seq must be an integer",
            }
        try:
            reply = await service.submit(session, seq, request["cmd"])
        except Backpressure as exc:
            return {"ok": False, "error": "backpressure", "detail": str(exc)}
        status, slot, index = reply
        return {"ok": True, "status": status, "slot": slot, "index": index}
    if op == "read":
        try:
            view = await service.read()
        except Unavailable as exc:
            return {"ok": False, "error": "unavailable", "detail": str(exc)}
        return {"ok": True, "commands": [list(c) for c in view]}
    if op == "stats":
        return {
            "ok": True,
            "stats": dict(service.stats),
            "certified_slots": service.certified_slots,
            "inflight": service.inflight(),
        }
    return {"ok": False, "error": f"unknown op {op!r}"}


async def _client_connected(
    service: ConsensusService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
            except ValueError:
                response = {"ok": False, "error": "bad json"}
            else:
                if isinstance(request, dict):
                    response = await _handle_request(service, request)
                else:
                    response = {"ok": False, "error": "bad request"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_tcp(
    service: ConsensusService, host: str = "127.0.0.1", port: int = 7707
):
    """Start the TCP front; returns the listening ``asyncio.Server``."""

    async def on_connect(reader, writer):
        await _client_connected(service, reader, writer)

    return await asyncio.start_server(on_connect, host, port)
