"""Per-file analysis context shared by every rule.

One :class:`FileContext` wraps one parsed source file: the AST (with parent
links, computed once), the raw lines, the dotted module name derived from
the path, and small shared helpers (import-alias tables, lexical guard
queries) that several rules need.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.findings import Finding


def module_name_for_path(path: str) -> str:
    """Best-effort dotted module name for ``path``.

    Uses the last ``repro``, ``tests`` or ``benchmarks`` component as the
    package root, so both ``src/repro/kernel/system.py`` and an unpacked
    ``.../repro/kernel/fixture.py`` map into ``repro.kernel.*`` and
    package-scoped rules fire consistently.
    """
    parts = os.path.normpath(path).split(os.sep)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    root = None
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            candidate = parts[idx:]
            if root is None or len(candidate) > len(root):
                root = candidate
    dotted = root if root is not None else parts[-1:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(part for part in dotted if part) or "<unknown>"


class FileContext:
    """Everything a rule needs to inspect one file."""

    def __init__(self, path: str, source: str, module: Optional[str] = None):
        self.path = path
        self.source = source
        self.module = module or module_name_for_path(path)
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # -- tree navigation --------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # -- imports ----------------------------------------------------------

    def module_aliases(self, target: str) -> Set[str]:
        """Local names bound to module ``target`` (e.g. ``{"random", "rnd"}``
        for ``import random as rnd`` / ``import random``), including
        ``from <pkg> import <leaf> [as alias]`` forms."""
        names: Set[str] = set()
        pkg, _, leaf = target.rpartition(".")
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == target:
                        names.add(item.asname or item.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if pkg and node.module == pkg:
                    for item in node.names:
                        if item.name == leaf:
                            names.add(item.asname or item.name)
        return names

    def imported_names(self, module: str) -> Dict[str, str]:
        """``{local_name: original_name}`` for ``from module import ...``."""
        out: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and not node.level
                and node.module == module
            ):
                for item in node.names:
                    out[item.asname or item.name] = item.name
        return out

    # -- findings ----------------------------------------------------------

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def make_finding(self, rule, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            code=rule.code,
            path=self.path,
            module=self.module,
            line=lineno,
            col=col,
            message=message,
            rule_name=rule.name,
            snippet=self.line_text(lineno),
        )


def top_level_names(tree: ast.Module) -> Set[str]:
    """Names assigned at module level (candidates for global-state rules)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names
