"""RPR4xx — fork/parallel-safety rules.

``run_sweep --jobs N`` forks workers; ``BatchSystem`` interleaves hundreds
of lanes in one process.  Both assume worker code leaves *no trace in
module-level state*: results cross the fork boundary by return value, and
observability crosses it through the obs delta-shipping protocol (workers
return registry deltas, the parent merges them in task order — the only
sanctioned mutation path).  These rules check exactly that, over the
dependency cone of the real worker entry points (``SweepTask`` fn
registrations and the ``exp<N>`` experiment runners):

* RPR401 — mutable module-global state written by any function reachable
  from a worker entry point: under ``--jobs N`` the write lands in a
  short-lived child and silently diverges from serial runs.
* RPR402 — lambdas/closures registered as sweep-task fns: they cannot
  cross the fork boundary (unpicklable) and capture state with no merge
  semantics.
* RPR403 — obs registry writes outside the delta-shipping protocol
  (``merge``/``reset`` or private-table access outside ``repro.obs`` and
  the sweep driver): merging is the parent's job, in task order, once.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.lint.findings import Finding
from repro.lint.project.dataflow import reachable_cone
from repro.lint.project.graph import (
    Project,
    in_packages,
    is_run_sweep,
    is_sweep_task_ctor,
)
from repro.lint.registry import ProjectRule, register_project

#: The delta-shipping protocol's own machinery: the only modules allowed to
#: touch registries and (for the driver) module state around a fork.
PROTOCOL_MODULES = ("repro.obs", "repro.harness.parallel", "repro.lint")


def _protocol(module: str) -> bool:
    return in_packages(module, PROTOCOL_MODULES)


def _root_note(chain: List[Dict[str, Any]]) -> str:
    first = chain[0]
    return first.get("note") or f"{first.get('module', '?')}:{first.get('line', '?')}"


@register_project
class ForkGlobalStateRule(ProjectRule):
    """RPR401: worker-reachable writes to module-global state."""

    code = "RPR401"
    name = "fork-global-state"
    summary = (
        "module-global state mutated by a function reachable from a sweep "
        "worker entry point (SweepTask fn / experiment runner) without a "
        "merge path: under --jobs N the write dies with the forked child "
        "and serial vs parallel runs silently diverge"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        cone = reachable_cone(project, project.sweep_entry_points())
        for fid in sorted(cone):
            module = fid.split(":", 1)[0]
            if _protocol(module):
                continue
            fn = project.functions.get(fid)
            if fn is None:
                continue
            chain = cone[fid]
            for site in fn.get("gwrites", []):
                yield project.make_finding(
                    self,
                    module,
                    site,
                    f"{site.get('detail', 'module-global write')} inside "
                    f"worker-reachable code ({_root_note(chain)}); forked "
                    f"workers drop this state — return it and merge "
                    f"parent-side instead",
                    evidence=chain + [project.hop(fid, site)],
                )


@register_project
class UnmergeableClosureRule(ProjectRule):
    """RPR402: closures registered as parallel work units."""

    code = "RPR402"
    name = "unmergeable-closure"
    summary = (
        "lambda or locally-defined closure registered as a SweepTask fn or "
        "passed to run_sweep: it cannot cross the fork boundary (pickle) "
        "and anything it captures has no mergeable semantics — use a "
        "module-level function taking explicit kwargs"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for fid in sorted(project.functions):
            module = fid.split(":", 1)[0]
            for call, _target in project.call_edges.get(fid, []):
                res = project.resolve(module, call["callee"])
                if not (is_sweep_task_ctor(res) or is_run_sweep(res)):
                    continue
                shapes: List[Tuple[str, Dict[str, Any]]] = [
                    (f"positional #{i}", shape)
                    for i, shape in enumerate(call.get("args", []))
                ]
                shapes += sorted(call.get("kwargs", {}).items())
                for label, shape in shapes:
                    closure = shape.get("closure")
                    if not closure:
                        continue
                    what = (
                        "a lambda"
                        if closure == "<lambda>"
                        else f"locally-defined '{closure}'"
                    )
                    yield project.make_finding(
                        self,
                        module,
                        call,
                        f"{call['callee']}({label}={closure}) registers "
                        f"{what} as parallel work; closures cannot cross "
                        f"the fork boundary — use a module-level function",
                        evidence=[project.hop(fid, call)],
                    )


@register_project
class ObsOutOfBandRule(ProjectRule):
    """RPR403: obs registry mutation outside the delta-shipping protocol."""

    code = "RPR403"
    name = "obs-oob-write"
    summary = (
        "metrics-registry merge()/reset() or private-table access outside "
        "repro.obs and the sweep driver: deltas are merged by the parent, "
        "in task order, exactly once — out-of-band writes double-count or "
        "drop counters under --jobs N"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for fid in sorted(project.functions):
            module = fid.split(":", 1)[0]
            if _protocol(module):
                continue
            fn = project.functions.get(fid)
            for site in fn.get("obs_oob", []):
                yield project.make_finding(
                    self,
                    module,
                    site,
                    f"{site.get('detail', 'registry write')} outside the "
                    f"delta-shipping protocol; only repro.obs and the sweep "
                    f"driver may merge/reset registries",
                    evidence=[project.hop(fid, site)],
                )
