"""RPR2xx — model-fidelity rules.

The paper's algorithms are I/O automata: a step reads one observation,
updates local state, and emits sends — nothing else.  These rules hold the
implementation to that contract (purity of automaton methods), and to the
two repo-specific contracts layered on top of it: detectors must be honest
about their cacheability (the history LRU keys on ``cache_key()``), and
``copy_state`` overrides must copy *every* field (the simulation trie
branches configurations through them).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.context import top_level_names
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules._helpers import call_name, class_fields, guarded_by_enabled

#: Modules whose exported classes are automaton/process bases.
AUTOMATON_HOME_MODULES = ("repro.kernel.automaton", "repro.consensus", "repro.smr")

#: Method-call names that mutate their receiver.
MUTATOR_METHODS = {
    "add",
    "append",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

IO_CALLS = {"print", "open", "input"}

#: Constructor calls whose result the generic ``cache_key()`` cannot key.
UNKEYABLE_CONSTRUCTORS = {"dict", "list", "set", "bytearray"}


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _classes_matching(
    ctx, roots: Set[str], home_modules=()
) -> Dict[str, ast.ClassDef]:
    """In-file classes whose ancestry (resolved within the file, seeded by
    ``roots`` names and imports from ``home_modules``) matches."""
    imported_matches: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if any(
                node.module == home or node.module.startswith(home + ".")
                for home in home_modules
            ):
                for item in node.names:
                    imported_matches.add(item.asname or item.name)

    all_classes = {
        node.name: node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef)
    }
    matching: Dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for name, cls in all_classes.items():
            if name in matching:
                continue
            for base in _base_names(cls):
                if (
                    base in roots
                    or any(root in base for root in roots)
                    or base in imported_matches
                    or base in matching
                ):
                    matching[name] = cls
                    changed = True
                    break
    return matching


@register
class AutomatonPurityRule(Rule):
    """RPR201: automaton steps are pure — no I/O, no module globals."""

    code = "RPR201"
    name = "automaton-purity"
    summary = (
        "Automaton/Process subclass methods performing I/O (print/open/"
        "input, sys.stdout) or mutating module globals; steps must be pure "
        "functions of (state, observation) or replay and merging break"
    )
    scope = None

    def check(self, ctx) -> Iterator[Finding]:
        automata = _classes_matching(
            ctx, {"Automaton", "Process"}, AUTOMATON_HOME_MODULES
        )
        if not automata:
            return
        module_globals = top_level_names(ctx.tree)
        for cls in automata.values():
            for stmt in cls.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_method(ctx, cls, stmt, module_globals)

    def _check_method(
        self, ctx, cls: ast.ClassDef, method, module_globals: Set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    f"{cls.name}.{method.name} rebinds module globals "
                    f"({', '.join(node.names)}); keep all mutable state in "
                    f"the automaton state object",
                )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name in IO_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{method.name} calls {name}(); automaton "
                        f"steps must not perform I/O",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in module_globals
                    and not guarded_by_enabled(ctx, node)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{method.name} mutates module-level "
                        f"'{node.func.value.id}'; automaton state must live "
                        f"in the state object",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "sys"
                    and node.attr in ("stdout", "stderr", "stdin")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name}.{method.name} touches sys.{node.attr}; "
                        f"automaton steps must not perform I/O",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, (ast.Subscript, ast.Attribute))
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_globals
                        and not guarded_by_enabled(ctx, node)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"{cls.name}.{method.name} writes through module-"
                            f"level '{target.value.id}'; steps must be pure",
                        )


@register
class DetectorCacheKeyRule(Rule):
    """RPR202: detectors with unkeyable state need an explicit cache_key."""

    code = "RPR202"
    name = "detector-cache-key"
    summary = (
        "FailureDetector subclass stores state the generic cache_key() "
        "cannot key (dict/list/set/lambda attributes) without overriding "
        "cache_key(); the history LRU then silently never caches it — "
        "declare a config tuple, or return None with a comment if stateful"
    )
    scope = ("repro",)

    def check(self, ctx) -> Iterator[Finding]:
        detectors = _classes_matching(ctx, {"Detector"}, ("repro.detectors",))
        for cls in detectors.values():
            if cls.name == "FailureDetector":
                continue
            has_cache_key = any(
                isinstance(stmt, ast.FunctionDef) and stmt.name == "cache_key"
                for stmt in cls.body
            )
            if has_cache_key:
                continue
            init = next(
                (
                    stmt
                    for stmt in cls.body
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            for node in ast.walk(init):
                if not isinstance(node, ast.Assign):
                    continue
                stores_self = any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets
                )
                if stores_self and self._unkeyable(node.value):
                    yield self.finding(
                        ctx,
                        node,
                        f"{cls.name} stores an unkeyable attribute; the "
                        f"generic cache_key() silently returns None — "
                        f"override cache_key() explicitly",
                    )

    @staticmethod
    def _unkeyable(value: ast.AST) -> bool:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp, ast.Lambda),
        ):
            return True
        if isinstance(value, ast.Call) and call_name(value) in UNKEYABLE_CONSTRUCTORS:
            return True
        return False


@register
class CopyStateCompletenessRule(Rule):
    """RPR203: ``copy_state`` must reproduce every state field."""

    code = "RPR203"
    name = "copy-state-completeness"
    summary = (
        "copy_state override constructs the state class but omits fields it "
        "declares; a branched configuration then silently resets the "
        "dropped field, corrupting trie snapshots and bounded exploration"
    )
    scope = None

    def check(self, ctx) -> Iterator[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            for stmt in cls.body:
                if (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "copy_state"
                ):
                    yield from self._check_copy_state(ctx, cls, stmt, classes)

    def _check_copy_state(
        self, ctx, cls: ast.ClassDef, method: ast.FunctionDef, classes
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if not (isinstance(node, ast.Return) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            target_name = call_name(call)
            target = classes.get(target_name) if target_name else None
            if target is None:
                continue
            if any(kw.arg is None for kw in call.keywords):
                continue  # **kwargs forwarding: assume complete
            fields = class_fields(target)
            if not fields:
                continue
            ordered = sorted(fields, key=fields.get)
            provided = set(ordered[: len(call.args)])
            provided.update(kw.arg for kw in call.keywords)
            missing = [name for name in ordered if name not in provided]
            if missing:
                yield self.finding(
                    ctx,
                    call,
                    f"{cls.name}.copy_state constructs {target_name} without "
                    f"field(s) {', '.join(missing)}; every field of the "
                    f"state must be copied",
                )
