"""Rule modules; importing this package populates the single-file registry.

The project-rule modules (``flow``, ``parallel_safety``,
``store_soundness``) are imported by ``registry._ensure_loaded`` instead:
they depend on :mod:`repro.lint.project`, which itself imports helpers
from this package — importing them here would close that cycle.
"""

from repro.lint.rules import determinism, fidelity, observability  # noqa: F401
