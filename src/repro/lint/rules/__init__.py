"""Rule modules; importing this package populates the registry."""

from repro.lint.rules import determinism, fidelity, observability  # noqa: F401
