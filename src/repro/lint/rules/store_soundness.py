"""RPR5xx — store-signature soundness rules.

``repro.store`` decides "this row need not re-run" by hashing the *static*
import closure of the task function's module
(:mod:`repro.store.signature`).  That is sound exactly as long as the code
a task executes is the code the AST can see.  Two constructs break it —
silently, as wrong cached answers rather than crashes:

* RPR501 — dynamic code loading (``importlib.import_module``,
  ``__import__``, ``exec``/``eval``, ``getattr(module, <computed>)``
  dispatch) reachable from a store-keyed entry point.  The loaded module's
  source is invisible to the signature: edit it and every dependent row
  still *hits*.  Each finding names the poisonable entry point and carries
  the call path to the dynamic site.
* RPR502 — runtime monkey-patching (``mod.attr = ...`` on an imported
  module) reachable from a store-keyed entry point or inside kernel scope.
  The patched module's signature never changes, so rows computed before
  and after the patch are indistinguishable in the store; results become
  execution-order-dependent.

The paired test in ``tests/lint/test_store_soundness.py`` demonstrates the
hole end-to-end: a dynamically-imported plugin is edited, the signature
stays identical, the store serves a stale hit — and RPR501 flags the
import site.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from repro.lint.findings import Finding
from repro.lint.project.dataflow import reachable_cone
from repro.lint.project.facts import MODULE_SCOPE
from repro.lint.project.graph import Project, in_packages
from repro.lint.registry import KERNEL_PACKAGES, ProjectRule, register_project

#: The store itself does controlled dynamic work (pickle), and the linter
#: imports rule modules; neither is store-keyed worker code.
EXEMPT_MODULES = ("repro.lint",)


def _cone_with_imports(project: Project):
    """The call cone of the store-keyed entry points, widened with the
    import-time (``<module>``) code of every module hosting cone functions
    — module bodies run on worker import, inside the same signature."""
    cone = reachable_cone(project, project.sweep_entry_points())
    modules = {fid.split(":", 1)[0] for fid in cone}
    for module in sorted(modules):
        fid = f"{module}:{MODULE_SCOPE}"
        if fid in project.functions and fid not in cone:
            cone[fid] = [
                {
                    "path": project.facts[module].path,
                    "module": module,
                    "function": MODULE_SCOPE,
                    "line": 1,
                    "snippet": "",
                    "note": f"import-time code of worker module {module}",
                }
            ]
    return cone


def _entry_name(chain: List[Dict[str, Any]]) -> str:
    first = chain[0]
    return first.get("note") or f"{first.get('module', '?')}:{first.get('line', '?')}"


@register_project
class DynamicImportInConeRule(ProjectRule):
    """RPR501: dynamic code loading inside a store-keyed dependency cone."""

    code = "RPR501"
    name = "dynamic-import-in-cone"
    summary = (
        "__import__/importlib/exec/eval/getattr-module-dispatch reachable "
        "from a store-keyed sweep entry point: the loaded code is outside "
        "repro.store.signature's static import closure, so editing it "
        "leaves every dependent row a (stale) cache hit"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        cone = _cone_with_imports(project)
        for fid in sorted(cone):
            module = fid.split(":", 1)[0]
            if in_packages(module, EXEMPT_MODULES):
                continue
            fn = project.functions.get(fid)
            if fn is None:
                continue
            chain = cone[fid]
            for site in fn.get("dynamic", []):
                yield project.make_finding(
                    self,
                    module,
                    site,
                    f"{site.get('detail', 'dynamic import')} is reachable "
                    f"from store-keyed entry point ({_entry_name(chain)}); "
                    f"the loaded code escapes the store's import-closure "
                    f"signature — import statically or key the store on "
                    f"the loaded source explicitly",
                    evidence=chain + [project.hop(fid, site)],
                )


@register_project
class ModuleMonkeyPatchRule(ProjectRule):
    """RPR502: runtime monkey-patching of imported modules."""

    code = "RPR502"
    name = "module-monkey-patch"
    summary = (
        "assignment to an attribute of an imported module reachable from a "
        "store-keyed entry point or inside kernel scope: the patched "
        "module's code signature never changes, so stored rows computed "
        "before and after the patch are indistinguishable"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        cone = _cone_with_imports(project)
        for fid in sorted(project.functions):
            module = fid.split(":", 1)[0]
            if in_packages(module, EXEMPT_MODULES):
                continue
            in_cone = fid in cone
            if not in_cone and not in_packages(module, KERNEL_PACKAGES):
                continue
            fn = project.functions[fid]
            chain = cone.get(fid, [])
            for site in fn.get("modpatch", []):
                where = (
                    f"reachable from store-keyed entry point "
                    f"({_entry_name(chain)})"
                    if in_cone
                    else "inside kernel scope"
                )
                yield project.make_finding(
                    self,
                    module,
                    site,
                    f"{site.get('detail', 'module attribute rebind')} "
                    f"({where}); monkey-patching changes behaviour without "
                    f"changing module '{site.get('target', '?')}'s code "
                    f"signature — results become patch-order-dependent",
                    evidence=(chain + [project.hop(fid, site)])
                    if chain
                    else [project.hop(fid, site)],
                )
