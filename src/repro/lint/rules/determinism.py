"""RPR1xx — determinism rules.

The step/schedule/run formalism (Section 2) makes a run a pure function of
(initial configuration, schedule, detector history, seed).  Prefix replay,
the LRU history cache, ``--jobs N`` parity and the traced/untraced oracle
all assume exactly that.  These rules catch the syntactic patterns that
break it: ambient randomness, wall-clock and environment reads, iteration
order leaking out of unordered containers, identity-based ordering, and
float equality in decision predicates.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.findings import Finding
from repro.lint.registry import KERNEL_PACKAGES, Rule, register
from repro.lint.rules._helpers import (
    ORDER_INSENSITIVE_CALLS,
    call_name,
    is_set_annotation,
    scope_walk,
    scopes,
)

#: Module-level ``random.*`` functions that consume the *global* RNG.
GLOBAL_RANDOM_FNS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gammavariate",
    "gauss",
    "getrandbits",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

#: Importable names from ``random`` that are fine to use anywhere.
SAFE_RANDOM_IMPORTS = {"Random", "SystemRandom"}

WALL_CLOCK_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}

OS_AMBIENT = {"environ", "getenv", "urandom", "getpid", "getrandom"}

DATETIME_AMBIENT = {"now", "utcnow", "today"}


@register
class GlobalRandomRule(Rule):
    """RPR101: the process-global ``random`` RNG is ambient state."""

    code = "RPR101"
    name = "global-random"
    summary = (
        "use of the module-global random RNG (random.random(), "
        "random.choice(), unseeded random.Random(), from-imports of its "
        "functions); draw from an explicitly seeded random.Random instead"
    )
    scope = None  # everywhere: tests and benchmarks must replay too

    def check(self, ctx) -> Iterator[Finding]:
        aliases = ctx.module_aliases("random")
        from_imports = ctx.imported_names("random")
        bad_from = {
            local: original
            for local, original in from_imports.items()
            if original not in SAFE_RANDOM_IMPORTS
        }

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for item in node.names:
                    if item.name not in SAFE_RANDOM_IMPORTS:
                        yield self.finding(
                            ctx,
                            node,
                            f"'from random import {item.name}' binds a "
                            f"global-RNG function; import random.Random and "
                            f"seed it explicitly",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                ):
                    if func.attr in GLOBAL_RANDOM_FNS:
                        yield self.finding(
                            ctx,
                            node,
                            f"random.{func.attr}() draws from the process-"
                            f"global RNG; use a seeded random.Random "
                            f"instance",
                        )
                    elif func.attr == "Random" and not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node,
                            "random.Random() without a seed falls back to "
                            "OS entropy; pass an explicit seed",
                        )
                elif isinstance(func, ast.Name) and func.id in bad_from:
                    yield self.finding(
                        ctx,
                        node,
                        f"{func.id}() is the global-RNG random."
                        f"{bad_from[func.id]}; use a seeded random.Random",
                    )


@register
class WallClockRule(Rule):
    """RPR102: wall clock / environment reads in replayed packages."""

    code = "RPR102"
    name = "wall-clock"
    summary = (
        "wall-clock, PID, or environment reads (time.time, datetime.now, "
        "os.environ, os.urandom, ...) inside the kernel-adjacent packages, "
        "whose runs must be pure functions of (config, schedule, seed)"
    )
    scope = KERNEL_PACKAGES

    def check(self, ctx) -> Iterator[Finding]:
        time_aliases = ctx.module_aliases("time")
        os_aliases = ctx.module_aliases("os")
        datetime_mod_aliases = ctx.module_aliases("datetime")
        datetime_classes = {
            local
            for local, original in ctx.imported_names("datetime").items()
            if original in ("datetime", "date")
        }
        time_from = {
            local: original
            for local, original in ctx.imported_names("time").items()
            if original in WALL_CLOCK_TIME_FNS
        }
        os_from = {
            local: original
            for local, original in ctx.imported_names("os").items()
            if original in OS_AMBIENT
        }

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id in time_aliases and node.attr in WALL_CLOCK_TIME_FNS:
                        yield self.finding(
                            ctx,
                            node,
                            f"time.{node.attr} reads the wall clock; kernel "
                            f"time is the logical step counter",
                        )
                    elif base.id in os_aliases and node.attr in OS_AMBIENT:
                        yield self.finding(
                            ctx,
                            node,
                            f"os.{node.attr} reads ambient process state; "
                            f"runs must not depend on the environment",
                        )
                    elif (
                        base.id in datetime_classes and node.attr in DATETIME_AMBIENT
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"datetime.{node.attr}() reads the wall clock",
                        )
                elif (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in datetime_mod_aliases
                    and base.attr in ("datetime", "date")
                    and node.attr in DATETIME_AMBIENT
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"datetime.{base.attr}.{node.attr}() reads the wall clock",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in time_from:
                    yield self.finding(
                        ctx,
                        node,
                        f"time.{time_from[node.id]} reads the wall clock",
                    )
                elif node.id in os_from:
                    yield self.finding(
                        ctx,
                        node,
                        f"os.{os_from[node.id]} reads ambient process state",
                    )


class _SetBindings:
    """Names evidently bound to set-typed values within one scope."""

    def __init__(self) -> None:
        self.set_like: Set[str] = set()
        self.tainted: Set[str] = set()  # also bound to something non-set

    def names(self) -> Set[str]:
        return self.set_like - self.tainted


def _is_evident_set(node: ast.AST, bound: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name):
        return node.id in bound
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_evident_set(node.left, bound) or _is_evident_set(
            node.right, bound
        )
    return False


def _scope_set_bindings(scope_node: ast.AST) -> Set[str]:
    bindings = _SetBindings()
    if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in (
            list(scope_node.args.posonlyargs)
            + list(scope_node.args.args)
            + list(scope_node.args.kwonlyargs)
        ):
            if is_set_annotation(arg.annotation):
                bindings.set_like.add(arg.arg)
    for node in scope_walk(scope_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if _is_evident_set(node.value, bindings.set_like):
                    bindings.set_like.add(target.id)
                else:
                    bindings.tainted.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if is_set_annotation(node.annotation):
                bindings.set_like.add(node.target.id)
    return bindings.names()


def _inside_order_insensitive_sink(ctx, comp: ast.AST) -> bool:
    """A generator expression fed straight into sum()/sorted()/... is safe."""
    parent = ctx.parent(comp)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in ORDER_INSENSITIVE_CALLS
        and parent.args
        and parent.args[0] is comp
    )


@register
class UnorderedIterationRule(Rule):
    """RPR103: iteration order must never leak out of a set."""

    code = "RPR103"
    name = "unordered-iteration"
    summary = (
        "order-sensitive iteration over a bare set/frozenset (or bare "
        ".keys()) without sorted(); set order varies with hash seeding and "
        "insertion history, breaking replay and --jobs parity"
    )
    scope = KERNEL_PACKAGES

    def check(self, ctx) -> Iterator[Finding]:
        for scope_node, _body in scopes(ctx.tree):
            bound = _scope_set_bindings(scope_node)
            for node in scope_walk(scope_node):
                yield from self._check_node(ctx, node, bound)

    def _check_node(self, ctx, node: ast.AST, bound: Set[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For) and _is_evident_set(node.iter, bound):
            yield self.finding(
                ctx,
                node.iter,
                "for-loop over a set; wrap the iterable in sorted() so the "
                "visit order is deterministic",
            )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            if isinstance(node, ast.GeneratorExp) and _inside_order_insensitive_sink(
                ctx, node
            ):
                return
            for gen in node.generators:
                if _is_evident_set(gen.iter, bound):
                    yield self.finding(
                        ctx,
                        gen.iter,
                        "comprehension over a set produces an order-"
                        "dependent result; iterate sorted(...) instead",
                    )
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if (
                name in ("list", "tuple")
                and len(node.args) == 1
                and _is_evident_set(node.args[0], bound)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() over a set fixes an arbitrary order; use "
                    f"sorted() instead",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and not node.args
                and _is_evident_set(node.func.value, bound)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "set.pop() removes an arbitrary element; use "
                    "min()/max() or next(iter(sorted(...)))",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "keys"
                and not node.args
            ):
                parent = ctx.parent(node)
                iterated = (
                    isinstance(parent, ast.For)
                    and parent.iter is node
                    or isinstance(parent, ast.comprehension)
                    and parent.iter is node
                )
                if iterated:
                    yield self.finding(
                        ctx,
                        node,
                        "iterating bare .keys() signals set-like intent; "
                        "iterate the dict directly (insertion-ordered) or "
                        "sorted(d)",
                    )


@register
class IdentityOrderingRule(Rule):
    """RPR104: ``id()`` values depend on the allocator, not the model."""

    code = "RPR104"
    name = "identity-ordering"
    summary = (
        "id()-based ordering, keys, or hashing; object addresses vary "
        "between runs and interpreters, so any order or key derived from "
        "them is unreplayable"
    )
    scope = KERNEL_PACKAGES

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and call_name(node) == "id":
                yield self.finding(
                    ctx,
                    node,
                    "id() exposes the allocator; derive ordering/keys from "
                    "model data (pids, times, payloads) instead",
                )


@register
class FloatEqualityRule(Rule):
    """RPR105: float equality in decision/quorum predicates."""

    code = "RPR105"
    name = "float-equality"
    summary = (
        "== / != against a float (literal, float() cast, or true-division "
        "result) inside the kernel-adjacent packages; decision and quorum "
        "predicates must use integer arithmetic or explicit tolerances"
    )
    scope = KERNEL_PACKAGES

    @staticmethod
    def _evidently_float(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call) and call_name(node) == "float":
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        return False

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._evidently_float(left) or self._evidently_float(right):
                    yield self.finding(
                        ctx,
                        node,
                        "float equality is representation-dependent; compare "
                        "integers (e.g. 2*count >= n) or use an explicit "
                        "tolerance",
                    )
                    break
