"""RPR3xx — observability hygiene.

PR 3's tracing layer is sound because every instrumentation site is guarded
by the ``obs._ENABLED`` module flag: with tracing off the hot paths execute
zero extra work, and the traced/untraced oracle tests prove bit-identical
runs.  An unguarded ``obs.metrics()`` / ``obs.tracer()`` write erodes both
properties one site at a time — this rule keeps the idiom mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules._helpers import guarded_by_enabled

#: ``repro.obs`` entry points whose call sites must be guarded.
OBS_ACCESSORS = {"metrics", "tracer"}


@register
class GuardedInstrumentationRule(Rule):
    """RPR301: obs writes must sit behind the ``_ENABLED`` flag."""

    code = "RPR301"
    name = "guarded-instrumentation"
    summary = (
        "obs.metrics()/obs.tracer() call not guarded by the _ENABLED module "
        "flag (enclosing `if <alias>._ENABLED:` or an early bail-out); "
        "unguarded sites tax the hot path and can skew traced-vs-untraced "
        "equivalence"
    )
    scope = None  # custom applies_to below

    def applies_to(self, module: str) -> bool:
        if not (module == "repro" or module.startswith("repro.")):
            return False
        # The obs package itself and the linter are not instrumented code.
        return not module.startswith(("repro.obs", "repro.lint"))

    def check(self, ctx) -> Iterator[Finding]:
        aliases = ctx.module_aliases("repro.obs")
        if not aliases:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr in OBS_ACCESSORS
            ):
                continue
            base = func.value
            is_obs = (
                isinstance(base, ast.Name) and base.id in aliases
            ) or (
                isinstance(base, ast.Attribute)
                and base.attr == "obs"
                and isinstance(base.value, ast.Name)
                and base.value.id == "repro"
            )
            if not is_obs:
                continue
            if guarded_by_enabled(ctx, node):
                continue
            alias = base.id if isinstance(base, ast.Name) else "repro.obs"
            yield self.finding(
                ctx,
                node,
                f"unguarded {alias}.{func.attr}() instrumentation; wrap the "
                f"site in `if {alias}._ENABLED:` (or bail out early) so "
                f"untraced runs pay zero overhead",
            )
