"""Flow-aware companions to RPR101/102/103/201.

These re-examine the *same contracts* as the single-file rules, but across
the project graph: taint entering kernel scope through calls, cross-module
aliases/bindings of global-RNG functions, evident sets whose iteration
order is fixed by a callee in another file, and automaton subclasses whose
ancestry (CHA) or impurity (transitive I/O) crosses module boundaries.

Noise discipline — one finding per defect, never a duplicate of a
single-file finding:

* every rule here *polices the kernel boundary*: it fires at a call site
  inside kernel scope whose resolved callee is outside kernel scope (the
  single-file rules already own everything visible within one file);
* a flow finding is dropped when the single-file pass already reported
  the same code at the taint's source site — the flow rules exist for
  what the old pass provably missed, not to restate it;
* :data:`EXEMPT_PREFIXES` (the observability layer and the linter itself)
  neither seed nor propagate taint: ``obs`` is the sanctioned, guarded,
  delta-merged exception to kernel purity.

Every finding carries an evidence chain of call hops down to the concrete
source line, so a report in ``kernel/`` stays actionable when the cause
lives three modules away.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project.dataflow import (
    Chain,
    order_sink_params,
    propagate_taint,
)
from repro.lint.project.graph import Project, in_packages
from repro.lint.registry import KERNEL_PACKAGES, ProjectRule, register_project
from repro.lint.rules.determinism import GLOBAL_RANDOM_FNS

#: Modules that never seed nor carry taint: the guarded observability layer
#: (its effects are delta-merged, not model state) and the linter itself.
EXEMPT_PREFIXES = ("repro.obs", "repro.lint")


def _exempt(module: str) -> bool:
    return in_packages(module, EXEMPT_PREFIXES)


def _kernel(module: str) -> bool:
    return in_packages(module, KERNEL_PACKAGES)


def _single_file_sites(project: Project, code: str) -> Set[Tuple[str, int]]:
    """(module, line) pairs the single-file pass already reported ``code`` at."""
    sites: Set[Tuple[str, int]] = set()
    for module, facts in project.facts.items():
        for finding in facts.findings:
            if finding.get("code") == code:
                sites.add((module, finding["line"]))
    return sites


def _resolved_external(project: Project, fid: str, call: Dict[str, Any]):
    module = fid.split(":", 1)[0]
    res = project.resolve(module, call["callee"])
    if res is not None and res[0] == "external":
        return res[1]
    return None


def _rng_external(dotted: str) -> Optional[str]:
    """The global-RNG function name if ``dotted`` resolves into one."""
    head, _, leaf = dotted.rpartition(".")
    if head == "random" and leaf in GLOBAL_RANDOM_FNS:
        return leaf
    return None


def _rng_taint(project: Project) -> Dict[str, Chain]:
    """RNG taint sources: facts ``rng`` sites plus call sites that *resolve*
    (through bindings/re-exports) into ``random.<global fn>``."""
    sources: Dict[str, Chain] = {}
    for fid in sorted(project.functions):
        if _exempt(fid.split(":", 1)[0]):
            continue
        fn = project.functions[fid]
        best: Optional[Dict[str, Any]] = None
        for site in fn.get("rng", []):
            best = site
            break
        if best is None:
            for call, target in project.call_edges.get(fid, []):
                if target is not None:
                    continue
                dotted = _resolved_external(project, fid, call)
                leaf = _rng_external(dotted) if dotted else None
                if leaf:
                    best = dict(call)
                    best["detail"] = (
                        f"{call['callee']}() resolves to the global-RNG "
                        f"random.{leaf}"
                    )
                    break
        if best is not None:
            sources[fid] = [project.hop(fid, best)]
    return propagate_taint(project, sources)


def _clock_taint(project: Project) -> Dict[str, Chain]:
    sources: Dict[str, Chain] = {}
    for fid in sorted(project.functions):
        if _exempt(fid.split(":", 1)[0]):
            continue
        clock = project.functions[fid].get("clock", [])
        if clock:
            sources[fid] = [project.hop(fid, clock[0])]
    return propagate_taint(project, sources)


def _io_taint(project: Project) -> Dict[str, Chain]:
    sources: Dict[str, Chain] = {}
    for fid in sorted(project.functions):
        if _exempt(fid.split(":", 1)[0]):
            continue
        io = project.functions[fid].get("io", [])
        if io:
            sources[fid] = [project.hop(fid, io[0])]
    return propagate_taint(project, sources)


def _source_site(chain: Chain) -> Tuple[str, int]:
    last = chain[-1]
    return (last.get("module", ""), last.get("line", 0))


@register_project
class GlobalRandomFlowRule(ProjectRule):
    """RPR101 (flow): global-RNG taint reaching kernel scope through calls,
    and cross-module bindings of ``random.*`` the syntactic pass cannot see."""

    code = "RPR101"
    name = "global-random-flow"
    summary = (
        "kernel-scope call whose callee resolves (through imports, "
        "re-exports, or value bindings like `pick = random.choice`) to the "
        "process-global RNG, or transitively draws from it in another "
        "module; evidence chain points at the concrete draw site"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        taint = _rng_taint(project)
        flagged = _single_file_sites(project, self.code)
        for fid in sorted(project.functions):
            module = fid.split(":", 1)[0]
            if not _kernel(module):
                continue
            for call, target in project.call_edges.get(fid, []):
                if target is None:
                    dotted = _resolved_external(project, fid, call)
                    leaf = _rng_external(dotted) if dotted else None
                    if leaf and (module, call["line"]) not in flagged:
                        yield project.make_finding(
                            self,
                            module,
                            call,
                            f"{call['callee']}() resolves to the global-RNG "
                            f"random.{leaf} through a cross-module binding; "
                            f"draw from an explicitly seeded random.Random",
                            evidence=[
                                project.hop(
                                    fid,
                                    call,
                                    note=f"resolves to random.{leaf}",
                                )
                            ],
                        )
                    continue
                callee_module = target.split(":", 1)[0]
                if _kernel(callee_module) or target not in taint:
                    continue
                chain = taint[target]
                if _source_site(chain) in flagged:
                    continue  # the draw itself is already reported
                yield project.make_finding(
                    self,
                    module,
                    call,
                    f"{call['callee']}() transitively draws from the process-"
                    f"global RNG (source: {chain[-1]['module']}:"
                    f"{chain[-1]['line']}); kernel runs must be pure "
                    f"functions of (config, schedule, seed)",
                    evidence=[project.hop(fid, call, note="kernel boundary")]
                    + chain,
                )


@register_project
class WallClockFlowRule(ProjectRule):
    """RPR102 (flow): wall-clock/env taint entering kernel scope via calls."""

    code = "RPR102"
    name = "wall-clock-flow"
    summary = (
        "kernel-scope call into a non-kernel function that transitively "
        "reads the wall clock, the environment, or process identity; the "
        "single-file rule only sees reads written inside kernel files"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        taint = _clock_taint(project)
        flagged = _single_file_sites(project, self.code)
        for fid in sorted(project.functions):
            module = fid.split(":", 1)[0]
            if not _kernel(module):
                continue
            for call, target in project.call_edges.get(fid, []):
                if target is None or target not in taint:
                    continue
                callee_module = target.split(":", 1)[0]
                if _kernel(callee_module):
                    continue
                chain = taint[target]
                if _source_site(chain) in flagged:
                    continue
                yield project.make_finding(
                    self,
                    module,
                    call,
                    f"{call['callee']}() transitively reads ambient state "
                    f"({chain[-1].get('note') or 'wall clock'}; source: "
                    f"{chain[-1]['module']}:{chain[-1]['line']}); kernel "
                    f"time is the logical step counter",
                    evidence=[project.hop(fid, call, note="kernel boundary")]
                    + chain,
                )


@register_project
class UnorderedIterationFlowRule(ProjectRule):
    """RPR103 (flow): a set's iteration order fixed by a callee elsewhere."""

    code = "RPR103"
    name = "unordered-iteration-flow"
    summary = (
        "kernel-scope call passing an evident set into a parameter whose "
        "iteration order is observed (for/comprehension/list()/.pop()) in "
        "the callee — possibly forwarded through further calls; invisible "
        "to the single-file pass when the sink parameter is unannotated"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        sinks = order_sink_params(project)
        flagged = _single_file_sites(project, self.code)
        for fid in sorted(project.functions):
            module = fid.split(":", 1)[0]
            if not _kernel(module):
                continue
            for call, target in project.call_edges.get(fid, []):
                if target is None or target not in sinks:
                    continue
                if _exempt(target.split(":", 1)[0]):
                    continue
                params = list(project.functions[target].get("params", []))
                target_qual = target.split(":", 1)[1]
                if "." in target_qual and params and params[0] in ("self", "cls"):
                    params = params[1:]
                pairs: List[Tuple[str, Dict[str, Any]]] = []
                for i, shape in enumerate(call.get("args", [])):
                    if shape.get("set") and i < len(params):
                        pairs.append((params[i], shape))
                for kw, shape in sorted(call.get("kwargs", {}).items()):
                    if shape.get("set") and kw in params:
                        pairs.append((kw, shape))
                for param, _shape in pairs:
                    chain = sinks[target].get(param)
                    if chain is None:
                        continue
                    if _source_site(chain) in flagged:
                        continue  # sink already evident in its own file
                    yield project.make_finding(
                        self,
                        module,
                        call,
                        f"set passed into {call['callee']}({param}=...) has "
                        f"its iteration order observed at "
                        f"{chain[-1]['module']}:{chain[-1]['line']}; sort "
                        f"before the call or inside the sink",
                        evidence=[
                            project.hop(
                                fid, call, note=f"evident set bound to '{param}'"
                            )
                        ]
                        + chain,
                    )


@register_project
class AutomatonPurityFlowRule(ProjectRule):
    """RPR201 (flow): CHA-discovered automaton subclasses and transitive I/O."""

    code = "RPR201"
    name = "automaton-purity-flow"
    summary = (
        "methods of Automaton/Process subclasses found only by cross-module "
        "class-hierarchy analysis performing I/O or global writes, and "
        "automaton methods whose callees transitively perform I/O in other "
        "modules; steps must stay pure functions of (state, observation)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        io_taint = _io_taint(project)
        flagged = _single_file_sites(project, self.code)
        automaton_methods: List[Tuple[str, str, str]] = []  # (cid, method, fid)
        for cid in sorted(project.automaton_classes):
            module, cls_name = cid.split(":", 1)
            for method in project.classes[cid].get("methods", []):
                automaton_methods.append(
                    (cid, method, f"{module}:{cls_name}.{method}")
                )

        for cid, method, fid in automaton_methods:
            module, cls_name = cid.split(":", 1)
            fn = project.functions.get(fid)
            if fn is None:
                continue
            in_file = cls_name in project.facts[module].infile_automata
            # (a) direct impurity in subclasses only CHA can see: the
            # single-file rule never ran on these classes at all.
            if not in_file:
                for site in fn.get("io", []):
                    if (module, site["line"]) in flagged:
                        continue
                    yield project.make_finding(
                        self,
                        module,
                        site,
                        f"{cls_name}.{method} {site.get('detail') or 'performs I/O'}; "
                        f"{cls_name} is an automaton by cross-module "
                        f"ancestry — steps must not perform I/O",
                        evidence=[project.hop(fid, site)],
                    )
                for site in fn.get("gwrites", []):
                    if (module, site["line"]) in flagged:
                        continue
                    yield project.make_finding(
                        self,
                        module,
                        site,
                        f"{cls_name}.{method} mutates module-level "
                        f"'{site.get('name', '?')}'; {cls_name} is an "
                        f"automaton by cross-module ancestry — state must "
                        f"live in the state object",
                        evidence=[project.hop(fid, site)],
                    )
            # (b) transitive I/O through calls, for every automaton class.
            for call, target in project.call_edges.get(fid, []):
                if target is None or target not in io_taint:
                    continue
                if target in {m[2] for m in automaton_methods}:
                    continue  # callee method gets its own direct finding
                chain = io_taint[target]
                if _source_site(chain) in flagged:
                    continue
                yield project.make_finding(
                    self,
                    module,
                    call,
                    f"{cls_name}.{method} calls {call['callee']}() which "
                    f"transitively performs I/O (source: "
                    f"{chain[-1]['module']}:{chain[-1]['line']}); automaton "
                    f"steps must not perform I/O",
                    evidence=[project.hop(fid, call, note="automaton method")]
                    + chain,
                )
