"""Shared AST pattern helpers used by several rules."""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

#: Annotation names that evidently denote unordered containers.
SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}

#: Builtins whose result does not depend on the argument's iteration order.
ORDER_INSENSITIVE_CALLS = {
    "sorted",
    "set",
    "frozenset",
    "sum",
    "len",
    "min",
    "max",
    "any",
    "all",
}


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The plain function name of a call, if the func is a bare Name."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def outer_annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The outermost constructor of an annotation (``List`` for
    ``List[FrozenSet[int]]``) — type parameters must not leak out."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        match = re.match(r"[A-Za-z_][A-Za-z0-9_.]*", node.value.strip())
        if match:
            return match.group(0).rpartition(".")[2]
    return None


def is_set_annotation(node: Optional[ast.AST]) -> bool:
    return outer_annotation_name(node) in SET_ANNOTATIONS


def scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, list]]:
    """Yield (scope_node, body) for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def scope_walk(scope_node: ast.AST) -> Iterator[ast.AST]:
    """Walk the nodes belonging to one scope.

    Like ``ast.walk`` but does not descend into nested function/lambda
    scopes (class bodies are traversed: methods surface as FunctionDef
    nodes for the caller to recurse into as separate scopes)."""
    todo = list(ast.iter_child_nodes(scope_node))
    while todo:
        node = todo.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(node))


def class_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Field names of a class, mapped to declaration order.

    Dataclass-style annotated fields come from class-body ``AnnAssign``;
    plain classes contribute their ``__init__`` parameters (minus ``self``)
    and ``self.X = ...`` assignments.
    """
    fields: Dict[str, int] = {}

    def add(name: str) -> None:
        if name not in fields:
            fields[name] = len(fields)

    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not isinstance(stmt.annotation, ast.Name) or stmt.annotation.id != "ClassVar":
                add(stmt.target.id)
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            args = stmt.args
            for arg in list(args.posonlyargs) + list(args.args)[1:] + list(args.kwonlyargs):
                add(arg.arg)
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            add(target.attr)
    return fields


def guarded_by_enabled(ctx, node: ast.AST) -> bool:
    """True when ``node`` is protected by an ``_ENABLED`` flag check.

    Accepts either a lexically enclosing ``if``/``while``/conditional whose
    test mentions ``_ENABLED``, or an earlier statement in the enclosing
    function of the form ``if not <alias>._ENABLED: return/raise`` (the
    early-bail idiom used by the instrumented hot paths).
    """

    def mentions_enabled(test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "_ENABLED":
                return True
            if isinstance(sub, ast.Name) and sub.id == "_ENABLED":
                return True
        return False

    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.If, ast.While, ast.IfExp)) and mentions_enabled(
            ancestor.test
        ):
            return True
        if isinstance(ancestor, ast.Assert) and mentions_enabled(ancestor.test):
            return True

    func = ctx.enclosing_function(node)
    if func is None:
        return False
    lineno = getattr(node, "lineno", 0)
    for stmt in func.body:
        if getattr(stmt, "lineno", 10**9) >= lineno:
            break
        if isinstance(stmt, ast.If) and mentions_enabled(stmt.test):
            bails = any(
                isinstance(inner, (ast.Return, ast.Raise, ast.Continue))
                for inner in stmt.body
            )
            if bails:
                return True
    return False
