"""``repro.lint`` — determinism & model-fidelity static analysis.

Every load-bearing feature of this reproduction — prefix replay in the
simulation trie, byte-identical ``--jobs N`` sweeps, the traced-vs-untraced
oracle tests, the LRU history cache — is sound only because the codebase
follows the determinism discipline of the paper's step/schedule/run
formalism: seeded RNGs only, no wall clock in the kernel, ordered iteration
over unordered containers, pure automata, guarded instrumentation.  This
package makes those unwritten rules *checkable*.

Rule codes
----------

``RPR1xx``
    Determinism: unseeded randomness, wall-clock/environment reads,
    unordered iteration, identity-based ordering, float equality.
``RPR2xx``
    Model fidelity: automaton purity, detector cacheability contracts,
    ``copy_state`` completeness.
``RPR3xx``
    Observability hygiene: instrumentation guarded by the ``_ENABLED``
    module flag.

Usage
-----

``python -m repro lint [PATHS] [--format json] [--baseline FILE] [--strict]``

or programmatically::

    from repro.lint import run_lint
    result = run_lint(["src"])
    for finding in result.findings:
        print(finding.render())

Inline suppressions use ``# repro: noqa RPR103 -- <reason>`` on the
offending line; grandfathered findings live in a committed baseline file
(see :mod:`repro.lint.baseline`).  The full rule catalog (with rationale)
is in ``docs/linting.md``.
"""

from __future__ import annotations

from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register
from repro.lint.engine import LintResult, lint_source, run_lint

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_source",
    "register",
    "run_lint",
]
