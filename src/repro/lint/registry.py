"""Rule base class and the global rule registry.

A rule is a class with a unique ``code`` (``RPRnnn``), a short ``name``
slug, a one-line ``summary`` (the catalog entry), an optional package
``scope`` (dotted-module prefixes the rule is confined to; ``None`` means
every linted file), and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.

Register with the :func:`register` decorator::

    @register
    class NoWallClock(Rule):
        code = "RPR102"
        name = "wall-clock"
        summary = "..."
        scope = KERNEL_PACKAGES

        def check(self, ctx):
            ...

Importing :mod:`repro.lint.rules` populates the registry.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.lint.findings import Finding

#: Packages where the step/schedule/run formalism demands full determinism:
#: anything here executes inside (or feeds) replayed, cached, or merged runs.
KERNEL_PACKAGES: Tuple[str, ...] = (
    "repro.kernel",
    "repro.core",
    "repro.detectors",
    "repro.consensus",
    # The batch lane planner builds LaneSpecs that must replay bit-identically,
    # so it lives under the same determinism contract as the kernel itself
    # (``repro.kernel.batch`` is already covered by the ``repro.kernel`` prefix).
    "repro.harness.batch",
)

#: Everything shipped under ``repro.`` except the observability layer itself
#: and this linter (neither executes on a replayed hot path).
REPRO_PACKAGES: Tuple[str, ...] = ("repro",)

_CODE_RE = re.compile(r"^RPR\d{3}$")


class Rule:
    """Base class for lint rules."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: dotted-module prefixes this rule applies to; ``None`` = everywhere
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: str) -> bool:
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, ctx) -> Iterator[Finding]:
        raise NotImplementedError

    # Helper: build a finding anchored at an AST node.
    def finding(self, ctx, node, message: str) -> Finding:
        return ctx.make_finding(self, node, message)


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"rule {rule_cls.__name__} has invalid code {rule_cls.code!r}"
        )
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def _ensure_loaded() -> None:
    # Importing the rules package runs every @register decorator.
    import repro.lint.rules  # noqa: F401  (import for side effect)


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[code]


def known_codes() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)
