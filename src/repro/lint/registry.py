"""Rule base class and the global rule registry.

A rule is a class with a unique ``code`` (``RPRnnn``), a short ``name``
slug, a one-line ``summary`` (the catalog entry), an optional package
``scope`` (dotted-module prefixes the rule is confined to; ``None`` means
every linted file), and a ``check(ctx)`` generator yielding
:class:`~repro.lint.findings.Finding` objects.

Register with the :func:`register` decorator::

    @register
    class NoWallClock(Rule):
        code = "RPR102"
        name = "wall-clock"
        summary = "..."
        scope = KERNEL_PACKAGES

        def check(self, ctx):
            ...

Importing :mod:`repro.lint.rules` populates the registry.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.lint.findings import Finding

#: Packages where the step/schedule/run formalism demands full determinism:
#: anything here executes inside (or feeds) replayed, cached, or merged runs.
KERNEL_PACKAGES: Tuple[str, ...] = (
    "repro.kernel",
    "repro.core",
    "repro.detectors",
    "repro.consensus",
    # The batch lane planner builds LaneSpecs that must replay bit-identically,
    # so it lives under the same determinism contract as the kernel itself
    # (``repro.kernel.batch`` is already covered by the ``repro.kernel`` prefix).
    "repro.harness.batch",
)

#: Everything shipped under ``repro.`` except the observability layer itself
#: and this linter (neither executes on a replayed hot path).
REPRO_PACKAGES: Tuple[str, ...] = ("repro",)

_CODE_RE = re.compile(r"^RPR\d{3}$")


class Rule:
    """Base class for lint rules."""

    code: str = ""
    name: str = ""
    summary: str = ""
    #: dotted-module prefixes this rule applies to; ``None`` = everywhere
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, module: str) -> bool:
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, ctx) -> Iterator[Finding]:
        raise NotImplementedError

    # Helper: build a finding anchored at an AST node.
    def finding(self, ctx, node, message: str) -> Finding:
        return ctx.make_finding(self, node, message)


class ProjectRule:
    """Base class for whole-program (flow-aware) rules.

    A project rule sees the :class:`~repro.lint.project.graph.Project`
    built from every linted file at once and yields findings with
    cross-file evidence chains.  Project rules may *share* a code with a
    single-file rule (the flow-aware RPR101/102/103/201 companions extend
    the same contract interprocedurally), so they live in a separate
    registry; :func:`known_codes` is the union.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}
_PROJECT_REGISTRY: Dict[str, ProjectRule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"rule {rule_cls.__name__} has invalid code {rule_cls.code!r}"
        )
    if rule_cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls()
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    if not _CODE_RE.match(rule_cls.code or ""):
        raise ValueError(
            f"project rule {rule_cls.__name__} has invalid code "
            f"{rule_cls.code!r}"
        )
    key = f"{rule_cls.code}/{rule_cls.name}"
    if key in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate project rule {key}")
    _PROJECT_REGISTRY[key] = rule_cls()
    return rule_cls


def _ensure_loaded() -> None:
    # Importing the rules package runs every single-file @register
    # decorator; the project-rule modules are imported separately because
    # they depend on repro.lint.project (which imports rule helpers — a
    # cycle if rules/__init__ pulled them in directly).
    import repro.lint.rules  # noqa: F401  (import for side effect)
    from repro.lint.rules import (  # noqa: F401
        flow,
        parallel_safety,
        store_soundness,
    )


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_project_rules() -> List[ProjectRule]:
    _ensure_loaded()
    return [_PROJECT_REGISTRY[key] for key in sorted(_PROJECT_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[code]


def known_codes() -> List[str]:
    """Every code either registry can emit (union, sorted)."""
    _ensure_loaded()
    codes = set(_REGISTRY)
    codes.update(rule.code for rule in _PROJECT_REGISTRY.values())
    return sorted(codes)
