"""Text and JSON reporters for lint results.

The JSON report carries a versioned ``schema`` marker (``repro-lint/1``)
like the trace exporter, so CI artifacts stay parseable as the tool grows.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import LintResult

JSON_SCHEMA = "repro-lint/1"


def summarize(result: LintResult) -> Dict[str, Any]:
    per_code: Dict[str, int] = {}
    for finding in result.findings:
        per_code[finding.code] = per_code.get(finding.code, 0) + 1
    return {
        "files_checked": result.files_checked,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": len(result.stale_baseline),
        "parse_errors": len(result.parse_errors),
        "by_code": dict(sorted(per_code.items())),
    }


def render_text(result: LintResult, verbose: bool = False) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for error in result.parse_errors:
        lines.append(f"PARSE ERROR: {error}")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.get('path', '?')} "
            f"{entry['code']} [{entry['fingerprint']}] — finding no longer "
            f"exists; remove it from the baseline"
        )
    for supp in result.unreasoned_noqa:
        lines.append(
            f"noqa without reason at line {supp.line}: suppressions must "
            f"say why (# repro: noqa RPRnnn -- reason)"
        )
    if verbose and result.suppressed:
        lines.append("")
        for finding, supp in result.suppressed:
            reason = supp.reason or "(no reason)"
            lines.append(
                f"suppressed {finding.code} at {finding.path}:{finding.line} "
                f"— {reason}"
            )
    summary = summarize(result)
    lines.append("")
    per_code = ", ".join(
        f"{code}={count}" for code, count in summary["by_code"].items()
    )
    lines.append(
        f"{summary['files_checked']} file(s) checked: "
        f"{summary['findings']} finding(s)"
        + (f" ({per_code})" if per_code else "")
        + (
            f", {summary['suppressed']} suppressed"
            if summary["suppressed"]
            else ""
        )
        + (
            f", {summary['baselined']} baselined"
            if summary["baselined"]
            else ""
        )
    )
    return "\n".join(lines)


def report_json(result: LintResult) -> Dict[str, Any]:
    return {
        "schema": JSON_SCHEMA,
        "summary": summarize(result),
        "findings": [f.to_json() for f in result.findings],
        "suppressed": [
            {
                "finding": finding.to_json(),
                "reason": supp.reason,
            }
            for finding, supp in result.suppressed
        ],
        "baselined": [f.to_json() for f in result.baselined],
        "stale_baseline": list(result.stale_baseline),
        "parse_errors": list(result.parse_errors),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_json(result), indent=2, sort_keys=True) + "\n"
