"""Text, JSON, and SARIF reporters for lint results.

The JSON report carries a versioned ``schema`` marker (``repro-lint/2``)
like the trace exporter, so CI artifacts stay parseable as the tool grows;
``/2`` adds the per-finding ``evidence`` chains and per-line occurrence
fingerprints of the whole-program rules.  The SARIF reporter emits
standard SARIF 2.1.0 so findings land in code-scanning UIs: evidence hops
become ``relatedLocations`` and the stable fingerprint becomes a
``partialFingerprints`` entry.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.lint.engine import LintResult
from repro.lint.findings import Finding
from repro.lint.registry import all_project_rules, all_rules

JSON_SCHEMA = "repro-lint/2"

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def summarize(result: LintResult) -> Dict[str, Any]:
    per_code: Dict[str, int] = {}
    for finding in result.findings:
        per_code[finding.code] = per_code.get(finding.code, 0) + 1
    return {
        "files_checked": result.files_checked,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": len(result.stale_baseline),
        "parse_errors": len(result.parse_errors),
        "by_code": dict(sorted(per_code.items())),
    }


def render_text(result: LintResult, verbose: bool = False) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for error in result.parse_errors:
        lines.append(f"PARSE ERROR: {error}")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.get('path', '?')} "
            f"{entry['code']} [{entry['fingerprint']}] — finding no longer "
            f"exists; remove it from the baseline"
        )
    for supp in result.unreasoned_noqa:
        lines.append(
            f"noqa without reason at line {supp.line}: suppressions must "
            f"say why (# repro: noqa RPRnnn -- reason)"
        )
    if verbose and result.suppressed:
        lines.append("")
        for finding, supp in result.suppressed:
            reason = supp.reason or "(no reason)"
            lines.append(
                f"suppressed {finding.code} at {finding.path}:{finding.line} "
                f"— {reason}"
            )
    summary = summarize(result)
    lines.append("")
    per_code = ", ".join(
        f"{code}={count}" for code, count in summary["by_code"].items()
    )
    lines.append(
        f"{summary['files_checked']} file(s) checked: "
        f"{summary['findings']} finding(s)"
        + (f" ({per_code})" if per_code else "")
        + (
            f", {summary['suppressed']} suppressed"
            if summary["suppressed"]
            else ""
        )
        + (
            f", {summary['baselined']} baselined"
            if summary["baselined"]
            else ""
        )
    )
    return "\n".join(lines)


def report_json(result: LintResult) -> Dict[str, Any]:
    return {
        "schema": JSON_SCHEMA,
        "summary": summarize(result),
        "findings": [f.to_json() for f in result.findings],
        "suppressed": [
            {
                "finding": finding.to_json(),
                "reason": supp.reason,
            }
            for finding, supp in result.suppressed
        ],
        "baselined": [f.to_json() for f in result.baselined],
        "stale_baseline": list(result.stale_baseline),
        "parse_errors": list(result.parse_errors),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(report_json(result), indent=2, sort_keys=True) + "\n"


def _sarif_uri(path: str) -> str:
    """A relative, forward-slash artifact URI for ``path``."""
    rel = os.path.relpath(path) if os.path.isabs(path) else path
    if rel.startswith(".."):
        rel = path  # outside the working tree: keep the absolute path
    return rel.replace(os.sep, "/")


def _sarif_rules() -> List[Dict[str, Any]]:
    """The SARIF rule catalog: one entry per code (codes shared between a
    single-file rule and its flow-aware companion collapse into one)."""
    by_code: Dict[str, Dict[str, Any]] = {}
    for rule in list(all_rules()) + list(all_project_rules()):
        if rule.code not in by_code:
            by_code[rule.code] = {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "help": {"text": "See docs/linting.md for the rule catalog."},
            }
    return [by_code[code] for code in sorted(by_code)]


def _sarif_result(
    finding: Finding, rule_index: Dict[str, int], suppressed: bool
) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _sarif_uri(finding.path)},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        "snippet": {"text": finding.snippet},
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLintFingerprint/v1": finding.fingerprint},
    }
    if finding.evidence:
        result["relatedLocations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _sarif_uri(hop.get("path", "?"))},
                    "region": {
                        "startLine": hop.get("line", 1),
                        "snippet": {"text": hop.get("snippet", "")},
                    },
                },
                "message": {"text": hop.get("note") or "call hop"},
            }
            for hop in finding.evidence
        ]
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def report_sarif(result: LintResult) -> Dict[str, Any]:
    """The result as a SARIF 2.1.0 log (one run)."""
    rules = _sarif_rules()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        _sarif_result(f, rule_index, suppressed=False) for f in result.findings
    ]
    results.extend(
        _sarif_result(f, rule_index, suppressed=True)
        for f, _ in result.suppressed
    )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": JSON_SCHEMA.rsplit("/", 1)[-1],
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(report_sarif(result), indent=2, sort_keys=True) + "\n"
