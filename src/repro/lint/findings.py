"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* intentionally excludes the line number: baselines must survive
unrelated edits that shift code up or down, so the fingerprint hashes the
module, the rule code, the normalized text of the offending line, and two
occurrence indices: ``occurrence`` (which distinct offending *line* this is
among identical (module, code, snippet) triples) and ``line_occurrence``
(which finding this is *on* that line — two identical findings on one line
must not collapse into a single baseline entry).

Flow-aware findings additionally carry an ``evidence`` chain: the call
hops from the reported site down to the concrete source line in another
file.  Evidence is reporting payload only — it never enters the
fingerprint, so refactoring an intermediate helper does not orphan a
baseline entry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Finding:
    """One rule violation at one source location."""

    code: str  # e.g. "RPR103"
    path: str  # file path as given to the engine
    module: str  # dotted module name ("repro.kernel.system")
    line: int  # 1-based line of the offending node
    col: int  # 0-based column of the offending node
    message: str  # human-readable description
    rule_name: str = ""  # short rule slug ("unordered-iteration")
    snippet: str = ""  # stripped source text of the offending line
    occurrence: int = 0  # distinct-line index among (module, code, snippet)
    line_occurrence: int = 0  # index among identical findings on one line
    suppressed: bool = False  # matched an inline ``# repro: noqa``
    baselined: bool = False  # matched a baseline entry
    #: cross-file call hops from this site to the taint source (flow rules)
    evidence: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by baseline matching."""
        basis = "\x1f".join(
            (
                self.module,
                self.code,
                self.snippet,
                str(self.occurrence),
                str(self.line_occurrence),
            )
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        for hop in self.evidence:
            note = f" ({hop['note']})" if hop.get("note") else ""
            text += (
                f"\n    via {hop.get('path', '?')}:{hop.get('line', '?')}"
                f"{note}: {hop.get('snippet', '')}"
            )
        return text

    def to_json(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "rule": self.rule_name,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "evidence": list(self.evidence),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_json` output (cache replay).

        Occurrence indices are *not* persisted — the engine reassigns them
        over the full merged finding list, so cached and fresh findings
        fingerprint identically.
        """
        return cls(
            code=data["code"],
            path=data["path"],
            module=data["module"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            rule_name=data.get("rule", ""),
            snippet=data.get("snippet", ""),
            evidence=list(data.get("evidence", [])),
        )


def assign_occurrences(findings) -> None:
    """Number findings that share (module, code, snippet) so their
    fingerprints stay distinct and stable under reordering.

    ``occurrence`` counts *distinct lines* (in first-seen order — the
    engine feeds findings sorted by file and line, so this is stable);
    ``line_occurrence`` separates several identical findings on one line.
    """
    line_index: Dict[Any, Dict[int, int]] = {}
    on_line: Dict[Any, int] = {}
    for finding in findings:
        key = (finding.module, finding.code, finding.snippet)
        lines = line_index.setdefault(key, {})
        if finding.line not in lines:
            lines[finding.line] = len(lines)
        finding.occurrence = lines[finding.line]
        line_key = key + (finding.line,)
        finding.line_occurrence = on_line.get(line_key, 0)
        on_line[line_key] = finding.line_occurrence + 1


def reset_occurrences(findings) -> None:
    """Zero occurrence indices before a fresh :func:`assign_occurrences`."""
    for finding in findings:
        finding.occurrence = 0
        finding.line_occurrence = 0
