"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* intentionally excludes the line number: baselines must survive
unrelated edits that shift code up or down, so the fingerprint hashes the
module, the rule code, the normalized text of the offending line, and an
occurrence index (for several identical lines in one module).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class Finding:
    """One rule violation at one source location."""

    code: str  # e.g. "RPR103"
    path: str  # file path as given to the engine
    module: str  # dotted module name ("repro.kernel.system")
    line: int  # 1-based line of the offending node
    col: int  # 0-based column of the offending node
    message: str  # human-readable description
    rule_name: str = ""  # short rule slug ("unordered-iteration")
    snippet: str = ""  # stripped source text of the offending line
    occurrence: int = 0  # index among identical (module, code, snippet)
    suppressed: bool = False  # matched an inline ``# repro: noqa``
    baselined: bool = False  # matched a baseline entry

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by baseline matching."""
        basis = "\x1f".join(
            (self.module, self.code, self.snippet, str(self.occurrence))
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text

    def to_json(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "rule": self.rule_name,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }


def assign_occurrences(findings) -> None:
    """Number findings that share (module, code, snippet) so their
    fingerprints stay distinct and stable under reordering."""
    seen: Dict[Any, int] = {}
    for finding in findings:
        key = (finding.module, finding.code, finding.snippet)
        finding.occurrence = seen.get(key, 0)
        seen[key] = finding.occurrence + 1
