"""Inline suppressions: ``# repro: noqa RPRnnn[, RPRmmm] -- reason``.

A suppression lives on the physical line of the finding it silences.  A
bare ``# repro: noqa`` (no codes) silences every rule on that line; listing
codes silences only those.  Everything after ``--`` (or an em dash) is a
free-form reason — the suppression policy in ``docs/linting.md`` asks for
one on every exemption, and ``--strict`` enforces it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"  # marker
    r"(?P<codes>(?:\s+RPR\d{3}(?:\s*,\s*RPR\d{3})*)?)"  # optional code list
    r"(?:\s*(?:--|—|–)\s*(?P<reason>.*))?"  # optional reason
    r"\s*$"
)

_CODE_RE = re.compile(r"RPR\d{3}")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    line: int
    codes: FrozenSet[str]  # empty frozenset = suppress all codes
    reason: str

    def covers(self, code: str) -> bool:
        return not self.codes or code in self.codes


def parse_suppressions(lines: List[str]) -> Dict[int, Suppression]:
    """Map 1-based line numbers to the suppression declared on them."""
    out: Dict[int, Suppression] = {}
    for i, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOQA_RE.search(text)
        if not match:
            continue
        codes = frozenset(_CODE_RE.findall(match.group("codes") or ""))
        reason = (match.group("reason") or "").strip()
        out[i] = Suppression(line=i, codes=codes, reason=reason)
    return out


def suppression_for(
    suppressions: Dict[int, Suppression], line: int, code: str
) -> Optional[Suppression]:
    found = suppressions.get(line)
    if found is not None and found.covers(code):
        return found
    return None
