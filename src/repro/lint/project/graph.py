"""The project graph: symbols, module graph, call graph, class hierarchy.

Built purely from :class:`~repro.lint.project.facts.FileFacts` records —
no AST survives to this layer, which is what makes warm runs possible:
cached facts replay into an identical :class:`Project`.

Identifiers
-----------
* a *module* is its dotted name (``repro.kernel.system``),
* a *function id* (fid) is ``module:qualname`` (``repro.kernel.system:step``,
  ``repro.consensus.nonuniform:Proposer.on_deliver``, ``mod:<module>`` for
  import-time code),
* a *class id* (cid) is ``module:ClassName``.

Resolution follows from-imports, module imports, top-level value bindings
(``pick = random.choice``) and re-export chains (``__init__`` forwarding),
with a visited set so import cycles terminate.  Anything leaving the linted
file set resolves to ``("external", dotted)`` — precise enough to recognize
``repro.kernel.automaton.Automaton`` ancestry even when only a subtree is
being linted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project.facts import MODULE_SCOPE, FileFacts
from repro.lint.rules.fidelity import AUTOMATON_HOME_MODULES

#: Where the harness's store-keyed / forked entry points live.
SWEEP_TASK_CLASS = "repro.harness.parallel:SweepTask"
RUN_SWEEP_FN = "repro.harness.parallel:run_sweep"


def is_sweep_task_ctor(res: Optional["Resolution"]) -> bool:
    """Does a resolution name the SweepTask constructor?  Accepts the
    external form too — a subtree lint may not include the harness files."""
    return res in (
        ("class", SWEEP_TASK_CLASS),
        ("external", "repro.harness.parallel.SweepTask"),
    )


def is_run_sweep(res: Optional["Resolution"]) -> bool:
    return res in (
        ("function", RUN_SWEEP_FN),
        ("external", "repro.harness.parallel.run_sweep"),
    )

#: Class roots whose subclass trees carry the model-fidelity contract.
_CHA_ROOT_NAMES = ("Automaton", "Process", "FailureDetector")
_CHA_HOME_PREFIXES = AUTOMATON_HOME_MODULES + (
    "repro.kernel",
    "repro.detectors",
)

Resolution = Tuple[str, str]  # (kind, identifier)


class Project:
    """The whole-program view the flow-aware rules query."""

    def __init__(self, facts_by_module: Dict[str, FileFacts]):
        self.facts = facts_by_module
        #: fid -> function facts dict (same shape as FileFacts.functions values)
        self.functions: Dict[str, Dict[str, Any]] = {}
        #: cid -> class record with ``resolved_bases`` added
        self.classes: Dict[str, Dict[str, Any]] = {}
        for module, facts in facts_by_module.items():
            for qual, fn in facts.functions.items():
                self.functions[f"{module}:{qual}"] = fn
            for name, cls in facts.classes.items():
                self.classes[f"{module}:{name}"] = dict(cls)
        self._resolve_bases()
        #: cid -> names of the contract roots its ancestry reaches
        self.class_roots: Dict[str, Set[str]] = self._root_closure()
        self.automaton_classes: Set[str] = {
            cid
            for cid, roots in self.class_roots.items()
            if roots & {"Automaton", "Process"}
        }
        #: fid -> [(call_fact, target_fid or None)]
        self.call_edges: Dict[str, List[Tuple[Dict[str, Any], Optional[str]]]] = {}
        #: target fid -> sorted caller fids
        self.callers: Dict[str, List[str]] = {}
        self._build_call_graph()

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def resolve(
        self,
        module: str,
        dotted: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Resolution]:
        """What ``dotted`` names inside ``module``.

        Returns ``("function", fid)``, ``("class", cid)``,
        ``("module", modname)``, ``("external", dotted)`` for names leaving
        the linted file set, or ``None`` for unresolvable locals/builtins.
        """
        facts = self.facts.get(module)
        if facts is None:
            return ("external", dotted)
        if _seen is None:
            _seen = set()
        if (module, dotted) in _seen:
            return None  # import cycle: give up on this chain
        _seen.add((module, dotted))

        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]

        if not rest:
            if head in facts.functions and head != MODULE_SCOPE:
                return ("function", f"{module}:{head}")
            if head in facts.classes:
                return ("class", f"{module}:{head}")
        elif head in facts.classes and len(rest) == 1:
            qual = f"{head}.{rest[0]}"
            if qual in facts.functions:
                return ("function", f"{module}:{qual}")
            # Inherited method: look up the hierarchy.
            hit = self.mro_lookup(f"{module}:{head}", rest[0])
            if hit is not None:
                return ("function", hit)

        if head in facts.from_imports:
            src_mod, orig = facts.from_imports[head]
            target = ".".join([src_mod, orig] + rest)
            return self.resolve_qualified(target, _seen)
        if head in facts.module_imports:
            target = ".".join([facts.module_imports[head]] + rest)
            return self.resolve_qualified(target, _seen)
        if head in facts.bindings:
            target = ".".join([facts.bindings[head]] + rest)
            return self.resolve(module, target, _seen)
        return None

    def resolve_qualified(
        self,
        full: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Resolution]:
        """Resolve an absolute dotted path against the linted module set."""
        parts = full.split(".")
        for i in range(len(parts), 0, -1):
            modname = ".".join(parts[:i])
            if modname in self.facts:
                rest = parts[i:]
                if not rest:
                    return ("module", modname)
                res = self.resolve(modname, ".".join(rest), _seen)
                if res is not None:
                    return res
                # The anchor module doesn't define the name — typically a
                # package __init__ linted without the submodule that does.
                # Keep shortening; the rooted name is still meaningful as
                # an external (SweepTask/CHA-root recognition needs it).
        return ("external", full)

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------

    def _resolve_bases(self) -> None:
        for cid in sorted(self.classes):
            module = cid.split(":", 1)[0]
            resolved: List[Resolution] = []
            for base in self.classes[cid]["bases"]:
                res = self.resolve(module, base)
                if res is not None:
                    resolved.append(res)
            self.classes[cid]["resolved_bases"] = resolved

    def _is_root_external(self, dotted: str) -> bool:
        """Does an unresolved base evidently name a known contract root?"""
        head, _, leaf = dotted.rpartition(".")
        if leaf not in _CHA_ROOT_NAMES:
            return False
        if not head:
            return False
        return any(
            head == prefix or head.startswith(prefix + ".")
            for prefix in _CHA_HOME_PREFIXES
        )

    def _root_closure(self) -> Dict[str, Set[str]]:
        """For every class id: which Automaton/Process/FailureDetector
        contract roots its ancestry reaches, across module boundaries."""
        root_name: Dict[str, str] = {}
        for cid in self.classes:
            module, name = cid.split(":", 1)
            if name in _CHA_ROOT_NAMES and any(
                module == prefix or module.startswith(prefix + ".")
                for prefix in _CHA_HOME_PREFIXES
            ):
                root_name[cid] = name

        memo: Dict[str, Set[str]] = {}

        def reaches(cid: str, stack: Set[str]) -> Set[str]:
            if cid in memo:
                return memo[cid]
            if cid in stack:
                return set()  # inheritance cycle in broken input
            stack.add(cid)
            found: Set[str] = set()
            if cid in root_name:
                found.add(root_name[cid])
            for kind, ident in self.classes[cid].get("resolved_bases", []):
                if kind == "class":
                    found |= reaches(ident, stack)
                elif kind == "external" and self._is_root_external(ident):
                    found.add(ident.rpartition(".")[2])
            stack.discard(cid)
            memo[cid] = found
            return found

        return {cid: reaches(cid, set()) for cid in sorted(self.classes)}

    def mro_lookup(self, cid: str, method: str, _seen: Optional[Set[str]] = None) -> Optional[str]:
        """The fid implementing ``method`` for class ``cid`` (DFS over bases)."""
        if _seen is None:
            _seen = set()
        if cid in _seen or cid not in self.classes:
            return None
        _seen.add(cid)
        module, name = cid.split(":", 1)
        fid = f"{module}:{name}.{method}"
        if fid in self.functions:
            return fid
        for kind, ident in self.classes[cid].get("resolved_bases", []):
            if kind == "class":
                hit = self.mro_lookup(ident, method, _seen)
                if hit is not None:
                    return hit
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def _target_for_call(self, fid: str, callee: str) -> Optional[str]:
        module, qual = fid.split(":", 1)
        if callee.startswith("self.") or callee.startswith("cls."):
            if "." not in qual:
                return None
            cls_name = qual.split(".", 1)[0]
            method = callee.split(".", 1)[1]
            if "." in method:
                return None  # self.attr.m(): untyped, give up
            return self.mro_lookup(f"{module}:{cls_name}", method)
        res = self.resolve(module, callee)
        if res is None:
            return None
        kind, ident = res
        if kind == "function":
            return ident
        if kind == "class":
            return self.mro_lookup(ident, "__init__")
        return None

    def _build_call_graph(self) -> None:
        callers: Dict[str, Set[str]] = {}
        for fid in sorted(self.functions):
            edges: List[Tuple[Dict[str, Any], Optional[str]]] = []
            for call in self.functions[fid].get("calls", []):
                target = self._target_for_call(fid, call["callee"])
                edges.append((call, target))
                if target is not None:
                    callers.setdefault(target, set()).add(fid)
            self.call_edges[fid] = edges
        self.callers = {fid: sorted(srcs) for fid, srcs in callers.items()}

    # ------------------------------------------------------------------
    # Harness entry points
    # ------------------------------------------------------------------

    def sweep_entry_points(self) -> Dict[str, Dict[str, Any]]:
        """Store-keyed / forked worker roots: ``{fid: registration site}``.

        A root is (a) the ``fn`` argument of any ``SweepTask(...)``
        construction, or (b) an ``exp<N>*`` experiment runner in
        ``repro.harness.experiments`` (the CLI dispatches to those by name,
        and each one feeds ``SweepTask``/``run_sweep``).
        """
        roots: Dict[str, Dict[str, Any]] = {}
        for fid in sorted(self.functions):
            module = fid.split(":", 1)[0]
            for call, _target in self.call_edges.get(fid, []):
                res = self.resolve(module, call["callee"])
                if not is_sweep_task_ctor(res):
                    continue
                shapes = list(call.get("args", []))
                kwargs = call.get("kwargs", {})
                fn_shape = kwargs.get("fn") or (shapes[0] if shapes else None)
                if not fn_shape or "name" not in fn_shape:
                    continue
                fn_res = self.resolve(module, fn_shape["name"])
                if fn_res and fn_res[0] == "function":
                    roots.setdefault(
                        fn_res[1],
                        self.hop(
                            f"{module}:{MODULE_SCOPE}",
                            call,
                            note=f"registered as a SweepTask fn in {module}",
                        ),
                    )
        for module in sorted(self.facts):
            if module != "repro.harness.experiments":
                continue
            for qual in sorted(self.facts[module].functions):
                leaf = qual.rsplit(".", 1)[-1]
                if leaf.startswith("exp") and len(leaf) > 3 and leaf[3].isdigit():
                    fn = self.facts[module].functions[qual]
                    roots.setdefault(
                        f"{module}:{qual}",
                        self.hop(
                            f"{module}:{qual}",
                            {"line": fn.get("line", 1), "snippet": ""},
                            note=f"experiment entry point {module}.{qual}",
                        ),
                    )
        return roots

    # ------------------------------------------------------------------
    # Finding construction
    # ------------------------------------------------------------------

    def make_finding(
        self,
        rule,
        module: str,
        site: Dict[str, Any],
        message: str,
        evidence: Optional[List[Dict[str, Any]]] = None,
    ) -> Finding:
        facts = self.facts[module]
        return Finding(
            code=rule.code,
            path=facts.path,
            module=module,
            line=site.get("line", 1),
            col=site.get("col", 0),
            message=message,
            rule_name=rule.name,
            snippet=site.get("snippet", ""),
            evidence=list(evidence or []),
        )

    def hop(self, fid: str, site: Dict[str, Any], note: str = "") -> Dict[str, Any]:
        """One evidence-chain hop anchored in ``fid``'s file."""
        module = fid.split(":", 1)[0]
        facts = self.facts.get(module)
        return {
            "path": facts.path if facts else module,
            "module": module,
            "function": fid.split(":", 1)[1],
            "line": site.get("line", 1),
            "snippet": site.get("snippet", ""),
            "note": note or site.get("detail", ""),
        }


def build_project(facts: Iterable[FileFacts]) -> Project:
    """Index facts by module and build the project graph.

    When two files map to the same dotted module (possible with unpacked
    fixtures), the lexically-first path wins — deterministic, and the
    engine never feeds duplicates for real trees.
    """
    by_module: Dict[str, FileFacts] = {}
    for record in sorted(facts, key=lambda f: (f.module, f.path)):
        by_module.setdefault(record.module, record)
    return Project(by_module)


def in_packages(module: str, prefixes: Sequence[str]) -> bool:
    """Shared scope predicate (same semantics as ``Rule.applies_to``)."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )
