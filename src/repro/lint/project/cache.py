"""Incremental lint cache: per-file facts content-addressed in the store.

One cached record holds everything the engine needs from a file — its
single-file findings, its ``# repro: noqa`` table, and its
:class:`~repro.lint.project.facts.FileFacts` — so a warm
``repro lint --changed`` run never parses an unchanged file.  The project
phase always re-runs (it is cross-file by construction), but it replays
from facts, which is where the >=3x warm speedup comes from.

Addressing reuses :class:`repro.store.store.ResultStore` verbatim:

* ``digest`` — SHA-256 over ``(module, source sha)``: the *row* is the
  file's content, so the same content at a moved path still hits;
* ``signature`` — the import-closure signature of :mod:`repro.lint`
  itself (:func:`ruleset_signature`): editing any rule, the engine, or
  this package invalidates every cached record, exactly like editing a
  sweep task's code invalidates its rows.  ``repro store gc`` therefore
  collects stale lint records with no special casing — the record's
  ``fn`` field is ``repro.lint:facts`` and gc recomputes the module
  signature from that name;
* cache state never reaches reports: a warm run's findings are
  byte-identical to a cold run's by construction, and the hit/miss stats
  live only on this object (surfaced on stderr, never in ``--output``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional

from repro.lint.project.facts import FACTS_SCHEMA
from repro.store.signature import ModuleSignatureIndex, default_index
from repro.store.store import ResultStore, TaskKey, default_store_root

#: The pseudo task identity of a cached lint-facts record; the module part
#: ("repro.lint") is what ``repro store gc`` re-signatures stale records by.
CACHE_FN = "repro.lint:facts"

CACHE_SCHEMA = "repro-lint-cache/1"


def ruleset_signature(index: Optional[ModuleSignatureIndex] = None) -> Optional[str]:
    """The import-closure signature of the linter itself.

    ``None`` outside a source checkout (no registered root) — the engine
    then simply runs cold.
    """
    return (index or default_index()).signature("repro.lint")


class FactsCache:
    """Content-addressed per-file lint records over the result store."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        index: Optional[ModuleSignatureIndex] = None,
    ):
        self.store = store or ResultStore(default_store_root(), index=index)
        self.signature = ruleset_signature(index or self.store.index)
        self.hits = 0
        self.misses = 0

    @property
    def usable(self) -> bool:
        return self.signature is not None

    @staticmethod
    def source_sha(source_bytes: bytes) -> str:
        return hashlib.sha256(source_bytes).hexdigest()

    def key(self, module: str, source_sha: str) -> TaskKey:
        digest = hashlib.sha256(
            f"{CACHE_SCHEMA}\x00{module}\x00{source_sha}".encode("utf-8")
        ).hexdigest()
        return TaskKey(digest=digest, signature=self.signature, fn=CACHE_FN)

    def load(self, module: str, source_sha: str) -> Optional[Dict[str, Any]]:
        """The cached record for this exact (content, rule-set), or None."""
        if not self.usable:
            return None
        status, value = self.store.load(self.key(module, source_sha))
        if (
            status == "hit"
            and isinstance(value, dict)
            and value.get("schema") == CACHE_SCHEMA
            and value.get("facts", {}).get("schema") == FACTS_SCHEMA
        ):
            self.hits += 1
            return value
        self.misses += 1
        return None

    def save(self, module: str, source_sha: str, record: Dict[str, Any]) -> None:
        if not self.usable:
            return
        payload = dict(record)
        payload["schema"] = CACHE_SCHEMA
        self.store.store(self.key(module, source_sha), payload)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
