"""Forward dataflow over the call graph: taint, cones, order-sink params.

Three fixpoints, all deterministic (BFS by rounds, sorted iteration, first
assignment wins) so cold and warm runs — and serial and any future parallel
drivers — report byte-identical evidence chains:

* :func:`propagate_taint` — the caller-directed taint lattice.  A function
  is tainted when it contains a source site (global-RNG draw, wall-clock
  read, I/O, ...) or calls a tainted function.  Each tainted function
  carries an evidence chain of call hops down to the concrete source line.
* :func:`reachable_cone` — the callee-directed dependency cone of a set of
  entry points (sweep-task fns, experiment runners), with a call-hop path
  back to the registering root.
* :func:`order_sink_params` — a parameter-level summary: which parameters
  of which functions flow into order-fixing operations (for-loops,
  comprehensions, ``list()``/``tuple()``, ``.pop()``), directly or by being
  forwarded positionally/by-keyword into another function's order-sink
  parameter.

Chains are lists of hops (``Project.hop`` dicts); the first hop is nearest
the reporting site, the last is the concrete source.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.lint.project.graph import Project

Hop = Dict[str, Any]
Chain = List[Hop]


def propagate_taint(
    project: Project, sources: Dict[str, Chain], max_rounds: int = 64
) -> Dict[str, Chain]:
    """Spread taint from ``sources`` (fid -> evidence chain) to callers.

    Returns ``{fid: chain}`` for every function that can reach a source
    through calls; chains grow one call hop per propagation round, so the
    chain kept for each function is a shortest one (ties broken by sorted
    fid order and call-site order, both deterministic).
    """
    taint: Dict[str, Chain] = {fid: list(chain) for fid, chain in sources.items()}
    round_of: Dict[str, int] = {fid: 0 for fid in taint}
    for current_round in range(1, max_rounds + 1):
        changed = False
        for fid in sorted(project.functions):
            if fid in taint:
                continue
            for call, target in project.call_edges.get(fid, []):
                if target is None or target == fid:
                    continue
                if round_of.get(target, max_rounds + 1) < current_round:
                    hop = project.hop(
                        fid, call, note=f"calls {call['callee']} (tainted)"
                    )
                    taint[fid] = [hop] + taint[target]
                    round_of[fid] = current_round
                    changed = True
                    break
        if not changed:
            break
    return taint


def reachable_cone(
    project: Project, roots: Dict[str, Hop], max_rounds: int = 64
) -> Dict[str, Chain]:
    """The callee closure of ``roots`` (fid -> registration-site hop).

    Returns ``{fid: chain}`` where the chain walks from the root's
    registration site through call hops down to ``fid``.  Roots map to a
    single-hop chain (their registration site).
    """
    cone: Dict[str, Chain] = {fid: [hop] for fid, hop in sorted(roots.items())}
    round_of: Dict[str, int] = {fid: 0 for fid in cone}
    for current_round in range(1, max_rounds + 1):
        changed = False
        for fid in sorted(round_of):
            if round_of[fid] != current_round - 1:
                continue
            for call, target in project.call_edges.get(fid, []):
                if target is None or target in cone:
                    continue
                hop = project.hop(fid, call, note=f"calls {call['callee']}")
                cone[target] = cone[fid] + [hop]
                round_of[target] = current_round
                changed = True
        if not changed:
            break
    return cone


def _callee_param_index(
    project: Project, target: str, call: Dict[str, Any]
) -> List[Tuple[str, Dict[str, Any]]]:
    """``[(callee_param_name, arg_shape)]`` pairs for one resolved call."""
    params = list(project.functions[target].get("params", []))
    target_qual = target.split(":", 1)[1]
    if "." in target_qual and params and params[0] in ("self", "cls"):
        params = params[1:]
    out: List[Tuple[str, Dict[str, Any]]] = []
    for i, shape in enumerate(call.get("args", [])):
        if shape and i < len(params):
            out.append((params[i], shape))
    for kw, shape in sorted(call.get("kwargs", {}).items()):
        if shape and kw in params:
            out.append((kw, shape))
    return out


def order_sink_params(
    project: Project, max_rounds: int = 64
) -> Dict[str, Dict[str, Chain]]:
    """Which parameters eventually have their iteration order observed?

    Returns ``{fid: {param: chain}}``.  Directly order-fixing parameters
    (recorded per-file in ``order_params`` facts) seed the fixpoint; a
    parameter forwarded by name into an order-sink parameter of a resolved
    callee becomes a sink itself, with the forwarding call prepended to the
    chain.
    """
    sinks: Dict[str, Dict[str, Chain]] = {}
    for fid in sorted(project.functions):
        direct = project.functions[fid].get("order_params", {})
        if direct:
            sinks[fid] = {
                param: [project.hop(fid, site)]
                for param, site in sorted(direct.items())
            }
    for _ in range(max_rounds):
        changed = False
        for fid in sorted(project.functions):
            params = set(project.functions[fid].get("params", []))
            if not params:
                continue
            own = sinks.setdefault(fid, {})
            for call, target in project.call_edges.get(fid, []):
                if target is None or target not in sinks or target == fid:
                    continue
                for callee_param, shape in _callee_param_index(
                    project, target, call
                ):
                    name = shape.get("name")
                    if (
                        name in params
                        and name not in own
                        and callee_param in sinks[target]
                    ):
                        hop = project.hop(
                            fid,
                            call,
                            note=(
                                f"forwards '{name}' into "
                                f"{call['callee']}({callee_param}=...)"
                            ),
                        )
                        own[name] = [hop] + sinks[target][callee_param]
                        changed = True
            if not own:
                sinks.pop(fid, None)
        if not changed:
            break
    return sinks
