"""Whole-program analysis layer for :mod:`repro.lint`.

The single-file rules (PR 4) see one :class:`~repro.lint.context.FileContext`
at a time; everything here sees the *project*: a symbol table and module
graph built from per-file facts, a call graph with class-hierarchy
resolution for ``Automaton``/``Process``/``FailureDetector`` subclass
trees, and a small forward dataflow engine (a taint lattice over RNG
streams, wall-clock/env reads, and evident-set order) that flow-aware
rules plug into.

The split matters for incrementality: :mod:`repro.lint.project.facts`
extracts everything the project phase needs from one parsed file into a
plain-dict record, so warm runs (``repro lint --changed``) never re-parse
unchanged files — cached facts are content-addressed in the result store
(:mod:`repro.lint.project.cache`) keyed by file digest + rule-set
signature, and the project phase replays from facts alone.
"""

from repro.lint.project.cache import FactsCache, ruleset_signature
from repro.lint.project.facts import FACTS_SCHEMA, FileFacts, extract_facts
from repro.lint.project.graph import Project, build_project

__all__ = [
    "FACTS_SCHEMA",
    "FactsCache",
    "FileFacts",
    "Project",
    "build_project",
    "extract_facts",
    "ruleset_signature",
]
