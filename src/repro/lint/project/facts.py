"""Per-file analysis facts: everything the project phase needs, no AST.

One :class:`FileFacts` record distills a parsed file into plain dicts:
symbols (functions, classes, module-level bindings), import tables, call
sites with argument shape, taint sources (global-RNG draws, wall-clock/env
reads), purity observations (I/O, module-global mutation), evident-set
order facts, dynamic-import sites, and obs-registry accesses — plus the
file's single-file rule findings and its ``# repro: noqa`` table.

Facts are the unit of incrementality: they serialize into the result
store keyed by (file digest, rule-set signature), so a warm
``repro lint --changed`` run rebuilds the whole-program phase from cached
facts without re-parsing unchanged files.  Everything here must therefore
be a pure function of the file's source text, and the record must be
complete enough that cold and warm runs produce byte-identical findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.context import FileContext, top_level_names
from repro.lint.noqa import parse_suppressions
from repro.lint.rules._helpers import (
    ORDER_INSENSITIVE_CALLS,
    call_name,
    guarded_by_enabled,
    root_name,
)
from repro.lint.rules.determinism import (
    DATETIME_AMBIENT,
    GLOBAL_RANDOM_FNS,
    OS_AMBIENT,
    SAFE_RANDOM_IMPORTS,
    WALL_CLOCK_TIME_FNS,
    _is_evident_set,
    _scope_set_bindings,
)
from repro.lint.rules.fidelity import (
    AUTOMATON_HOME_MODULES,
    IO_CALLS,
    MUTATOR_METHODS,
    _classes_matching,
)

FACTS_SCHEMA = "repro-lint-facts/1"

#: Constructor calls whose result is evidently a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}

#: The sentinel function name for module-level (import-time) code.
MODULE_SCOPE = "<module>"


def dotted_text(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FileFacts:
    """The serializable whole-program facts of one source file."""

    path: str
    module: str
    sha: str
    #: raw single-file rule findings (pre-suppression), as ``Finding.to_json``
    findings: List[Dict[str, Any]] = field(default_factory=list)
    #: ``# repro: noqa`` table: {line, codes, reason}
    suppressions: List[Dict[str, Any]] = field(default_factory=list)
    #: local alias -> module for plain ``import`` statements
    module_imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original) for ``from module import name``
    from_imports: Dict[str, List[str]] = field(default_factory=dict)
    #: top-level ``name = dotted.expr`` value bindings
    bindings: Dict[str, str] = field(default_factory=dict)
    #: qualname ("f" / "Cls.m" / "<module>") -> function facts dict
    functions: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: class name -> {"bases": [...], "line": int, "methods": [...]}
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: names assigned at module level
    top_globals: List[str] = field(default_factory=list)
    #: subset of top_globals bound to evidently mutable containers
    mutable_globals: List[str] = field(default_factory=list)
    #: class names the single-file RPR201 pass already recognizes
    infile_automata: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FACTS_SCHEMA,
            "path": self.path,
            "module": self.module,
            "sha": self.sha,
            "findings": self.findings,
            "suppressions": self.suppressions,
            "module_imports": self.module_imports,
            "from_imports": self.from_imports,
            "bindings": self.bindings,
            "functions": self.functions,
            "classes": self.classes,
            "top_globals": self.top_globals,
            "mutable_globals": self.mutable_globals,
            "infile_automata": self.infile_automata,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileFacts":
        if data.get("schema") != FACTS_SCHEMA:
            raise ValueError(f"unsupported facts schema {data.get('schema')!r}")
        return cls(**{k: v for k, v in data.items() if k != "schema"})


def _site(node: ast.AST, ctx: FileContext, detail: str = "") -> Dict[str, Any]:
    lineno = getattr(node, "lineno", 1)
    return {
        "line": lineno,
        "col": getattr(node, "col_offset", 0),
        "snippet": ctx.line_text(lineno),
        "detail": detail,
    }


class _FunctionScanner:
    """Extracts one function's facts (calls, taints, purity, order)."""

    def __init__(
        self,
        ctx: FileContext,
        extractor: "FactsExtractor",
        qualname: str,
        scope_node: ast.AST,
        nodes: List[ast.AST],
    ):
        self.ctx = ctx
        self.ex = extractor
        self.qualname = qualname
        self.nodes = nodes
        self.params: List[str] = []
        if isinstance(scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope_node.args
            self.params = [
                a.arg
                for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ]
            self.set_bound = _scope_set_bindings(scope_node)
            self.lineno = scope_node.lineno
        else:
            self.set_bound = _scope_set_bindings(scope_node)
            self.lineno = 1
        self.local_funcs: Set[str] = set()
        self.local_names: Set[str] = set()
        self.global_decls: Set[str] = set()
        self.registry_vars: Set[str] = set()
        self.facts: Dict[str, Any] = {
            "line": self.lineno,
            "params": self.params,
            "calls": [],
            "rng": [],
            "clock": [],
            "io": [],
            "gwrites": [],
            "order_params": {},
            "dynamic": [],
            "modpatch": [],
            "obs_oob": [],
        }

    def scan(self) -> Dict[str, Any]:
        # Pass 1: local binding structure (shadowing, nested defs, registry
        # variables) so pass 2 can classify sites correctly.
        for node in self.nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name != self.qualname.rsplit(".", 1)[-1]:
                    self.local_funcs.add(node.name)
            elif isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_names.add(target.id)
                        if self._is_metrics_call(node.value):
                            self.registry_vars.add(target.id)
        for node in self.nodes:
            self._scan_node(node)
        for key in (
            "calls",
            "rng",
            "clock",
            "io",
            "gwrites",
            "dynamic",
            "modpatch",
            "obs_oob",
        ):
            self.facts[key].sort(key=lambda s: (s.get("line", 0), s.get("col", 0)))
        return self.facts

    # -- classification helpers -------------------------------------------

    def _is_metrics_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id == "metrics":
            return "metrics" in self.ex.obs_metric_names
        return isinstance(func, ast.Attribute) and func.attr == "metrics"

    def _arg_shape(self, node: ast.AST) -> Dict[str, Any]:
        shape: Dict[str, Any] = {}
        if _is_evident_set(node, self.set_bound):
            shape["set"] = True
        if isinstance(node, ast.Lambda):
            shape["closure"] = "<lambda>"
        text = dotted_text(node)
        if text is not None:
            shape["name"] = text
            if text in self.local_funcs:
                shape["closure"] = text
        return shape

    # -- node dispatch -----------------------------------------------------

    def _scan_node(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._scan_call(node)
        elif isinstance(node, ast.Attribute):
            self._scan_attribute(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._scan_name_load(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            self._scan_assign(node)

    def _scan_call(self, node: ast.Call) -> None:
        ex = self.ex
        ctx = self.ctx
        name = call_name(node)
        func = node.func

        # Call-graph edge (pure Name/Attribute chains only).
        callee = dotted_text(func)
        if callee is not None:
            call_fact = _site(node, ctx)
            call_fact["callee"] = callee
            args = [self._arg_shape(a) for a in node.args]
            kwargs = {
                kw.arg: self._arg_shape(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            }
            if any(args) or any(kwargs.values()):
                call_fact["args"] = args
                call_fact["kwargs"] = {k: v for k, v in kwargs.items() if v}
            self.facts["calls"].append(call_fact)

        # RNG sources (mirrors RPR101, recorded regardless of findings).
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ex.random_aliases
        ):
            if func.attr in GLOBAL_RANDOM_FNS:
                self.facts["rng"].append(
                    _site(node, ctx, f"random.{func.attr}() draws the global RNG")
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                self.facts["rng"].append(
                    _site(node, ctx, "unseeded random.Random() uses OS entropy")
                )
        elif name in ex.random_bad_from:
            self.facts["rng"].append(
                _site(
                    node,
                    ctx,
                    f"{name}() is the global-RNG random.{ex.random_bad_from[name]}",
                )
            )

        # I/O (mirrors RPR201's call leg).
        if name in IO_CALLS:
            self.facts["io"].append(_site(node, ctx, f"calls {name}()"))

        # Mutator method on a module-level global.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and self._names_global(func.value.id)
            and not guarded_by_enabled(ctx, node)
        ):
            self.facts["gwrites"].append(
                _site(node, ctx, f"{func.value.id}.{func.attr}(...)")
                | {"name": func.value.id}
            )

        # Dynamic-import / opaque-dispatch sites.
        self._scan_dynamic(node, name)

        # Out-of-band obs-registry writes.
        self._scan_obs_oob(node, func)

    def _scan_dynamic(self, node: ast.Call, name: Optional[str]) -> None:
        ctx = self.ctx
        func = node.func
        if name == "__import__":
            self.facts["dynamic"].append(_site(node, ctx, "__import__(...)"))
        elif name in ("exec", "eval"):
            self.facts["dynamic"].append(_site(node, ctx, f"{name}(...)"))
        elif name in self.ex.importlib_from:
            self.facts["dynamic"].append(
                _site(node, ctx, f"importlib.{self.ex.importlib_from[name]}(...)")
            )
        elif isinstance(func, ast.Attribute):
            base = dotted_text(func.value)
            if base is not None and (
                self.ex.module_imports.get(base.split(".")[0]) == "importlib"
                or base == "importlib"
                or base.startswith("importlib.")
            ):
                if func.attr in ("import_module", "reload", "exec_module"):
                    self.facts["dynamic"].append(
                        _site(node, ctx, f"{base}.{func.attr}(...)")
                    )
        if name == "getattr" and len(node.args) >= 2:
            target, attr = node.args[0], node.args[1]
            is_constant = isinstance(attr, ast.Constant)
            target_text = dotted_text(target)
            if (
                not is_constant
                and target_text is not None
                and self.ex.names_module(target_text)
            ):
                self.facts["dynamic"].append(
                    _site(
                        node,
                        self.ctx,
                        f"getattr({target_text}, <dynamic>) module dispatch",
                    )
                )

    def _scan_obs_oob(self, node: ast.Call, func: ast.AST) -> None:
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("merge", "reset"):
            return
        base = func.value
        from_registry = (
            isinstance(base, ast.Name) and base.id in self.registry_vars
        ) or self._is_metrics_call(base)
        if from_registry:
            self.facts["obs_oob"].append(
                _site(node, self.ctx, f"registry.{func.attr}(...)")
            )

    def _scan_attribute(self, node: ast.Attribute) -> None:
        ctx = self.ctx
        ex = self.ex
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in ex.time_aliases and node.attr in WALL_CLOCK_TIME_FNS:
                self.facts["clock"].append(
                    _site(node, ctx, f"time.{node.attr} reads the wall clock")
                )
            elif base.id in ex.os_aliases and node.attr in OS_AMBIENT:
                self.facts["clock"].append(
                    _site(node, ctx, f"os.{node.attr} reads ambient process state")
                )
            elif base.id in ex.datetime_classes and node.attr in DATETIME_AMBIENT:
                self.facts["clock"].append(
                    _site(node, ctx, f"datetime.{node.attr}() reads the wall clock")
                )
            elif base.id == "sys" and node.attr in ("stdout", "stderr", "stdin"):
                self.facts["io"].append(_site(node, ctx, f"touches sys.{node.attr}"))
            elif base.id in self.registry_vars and node.attr in (
                "_counters",
                "_gauges",
                "_timers",
            ):
                self.facts["obs_oob"].append(
                    _site(node, ctx, f"touches registry.{node.attr}")
                )
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in ex.datetime_mod_aliases
            and base.attr in ("datetime", "date")
            and node.attr in DATETIME_AMBIENT
        ):
            self.facts["clock"].append(
                _site(
                    node, ctx, f"datetime.{base.attr}.{node.attr}() reads the wall clock"
                )
            )

    def _scan_name_load(self, node: ast.Name) -> None:
        ex = self.ex
        if node.id in ex.time_from:
            self.facts["clock"].append(
                _site(node, self.ctx, f"time.{ex.time_from[node.id]} reads the wall clock")
            )
        elif node.id in ex.os_from:
            self.facts["clock"].append(
                _site(
                    node,
                    self.ctx,
                    f"os.{ex.os_from[node.id]} reads ambient process state",
                )
            )

    def _names_global(self, name: str) -> bool:
        """Does ``name`` refer to a module-level global in this scope?"""
        if name not in self.ex.top_globals:
            return False
        if name in self.global_decls:
            return True
        return name not in self.local_names and name not in {
            p for p in self.params
        }

    def _scan_assign(self, node: ast.AST) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self.global_decls and not guarded_by_enabled(
                    self.ctx, node
                ):
                    self.facts["gwrites"].append(
                        _site(self.ctx_node(node), self.ctx, f"rebinds global {target.id}")
                        | {"name": target.id}
                    )
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                root = root_name(target)
                if root is None or guarded_by_enabled(self.ctx, node):
                    continue
                if self._names_global(root):
                    self.facts["gwrites"].append(
                        _site(self.ctx_node(node), self.ctx, f"writes through {root}")
                        | {"name": root}
                    )
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self.ex.module_imports
                    and target.value.id not in self.local_names
                ):
                    self.facts["modpatch"].append(
                        _site(
                            self.ctx_node(node),
                            self.ctx,
                            f"rebinds {target.value.id}.{target.attr} at runtime",
                        )
                        | {"target": self.ex.module_imports[target.value.id]}
                    )

    @staticmethod
    def ctx_node(node: ast.AST) -> ast.AST:
        return node

    def scan_order_params(self, scope_node: ast.AST) -> None:
        """Which parameters flow into order-fixing operations?"""
        if not self.params:
            return
        params = set(self.params)
        order: Dict[str, Dict[str, Any]] = {}

        def note(param: str, node: ast.AST, op: str) -> None:
            if param not in order:
                order[param] = _site(node, self.ctx, op)

        for node in self.nodes:
            if isinstance(node, ast.For):
                if isinstance(node.iter, ast.Name) and node.iter.id in params:
                    note(node.iter.id, node.iter, "iterated by a for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if isinstance(node, ast.GeneratorExp):
                    parent = self.ctx.parent(node)
                    if (
                        isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Name)
                        and parent.func.id in ORDER_INSENSITIVE_CALLS
                        and parent.args
                        and parent.args[0] is node
                    ):
                        continue
                for gen in node.generators:
                    if isinstance(gen.iter, ast.Name) and gen.iter.id in params:
                        note(gen.iter.id, gen.iter, "iterated by a comprehension")
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (
                    name in ("list", "tuple")
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params
                ):
                    note(node.args[0].id, node, f"fixed into a {name}()")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in params
                ):
                    note(node.func.value.id, node, "popped arbitrarily (.pop())")
        self.facts["order_params"] = order


class FactsExtractor:
    """Builds a :class:`FileFacts` from one :class:`FileContext`."""

    def __init__(self, ctx: FileContext, sha: str):
        self.ctx = ctx
        self.sha = sha
        tree = ctx.tree
        self.random_aliases = ctx.module_aliases("random")
        self.random_bad_from = {
            local: original
            for local, original in ctx.imported_names("random").items()
            if original not in SAFE_RANDOM_IMPORTS
        }
        self.time_aliases = ctx.module_aliases("time")
        self.os_aliases = ctx.module_aliases("os")
        self.datetime_mod_aliases = ctx.module_aliases("datetime")
        self.datetime_classes = {
            local
            for local, original in ctx.imported_names("datetime").items()
            if original in ("datetime", "date")
        }
        self.time_from = {
            local: original
            for local, original in ctx.imported_names("time").items()
            if original in WALL_CLOCK_TIME_FNS
        }
        self.os_from = {
            local: original
            for local, original in ctx.imported_names("os").items()
            if original in OS_AMBIENT
        }
        self.importlib_from = {
            local: original
            for local, original in ctx.imported_names("importlib").items()
        }
        self.obs_metric_names = set(ctx.imported_names("repro.obs"))
        self.top_globals = top_level_names(tree)
        self.module_imports: Dict[str, str] = {}
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    self.module_imports[local] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
                    if item.asname is None and "." in item.name:
                        # ``import a.b`` binds ``a`` but makes a.b reachable.
                        self.module_imports.setdefault(item.name, item.name)
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for item in node.names:
                    if item.name != "*":
                        self.from_imports[item.asname or item.name] = (
                            node.module,
                            item.name,
                        )

    def names_module(self, dotted: str) -> bool:
        head = dotted.split(".")[0]
        if head in self.module_imports:
            return True
        target = self.from_imports.get(head)
        # ``from repro.harness import experiments`` style: heuristically a
        # module when the imported name is lowercase and not called often —
        # resolved precisely at the project level; here only used to gate
        # the getattr-dispatch fact.
        return target is not None and head == head.lower() and "." not in head

    def extract(self) -> FileFacts:
        ctx = self.ctx
        tree = ctx.tree
        facts = FileFacts(path=ctx.path, module=ctx.module, sha=self.sha)
        facts.module_imports = dict(sorted(self.module_imports.items()))
        facts.from_imports = {
            k: list(v) for k, v in sorted(self.from_imports.items())
        }
        facts.top_globals = sorted(self.top_globals)
        facts.suppressions = [
            {"line": s.line, "codes": sorted(s.codes), "reason": s.reason}
            for _, s in sorted(parse_suppressions(ctx.lines).items())
        ]

        # Top-level value bindings and mutable globals.
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    text = dotted_text(stmt.value)
                    if text is not None and "." in text:
                        facts.bindings[target.id] = text
                    if self._is_mutable_value(stmt.value):
                        facts.mutable_globals.append(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.value is not None and self._is_mutable_value(stmt.value):
                    facts.mutable_globals.append(stmt.target.id)
        facts.mutable_globals.sort()

        # Classes and their methods.
        scope_defs: Dict[str, ast.AST] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope_defs[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                methods = []
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.append(sub.name)
                        scope_defs[f"{stmt.name}.{sub.name}"] = sub
                bases = [
                    text
                    for text in (dotted_text(b) for b in stmt.bases)
                    if text is not None
                ]
                facts.classes[stmt.name] = {
                    "bases": bases,
                    "line": stmt.lineno,
                    "methods": sorted(methods),
                }
        facts.infile_automata = sorted(
            _classes_matching(ctx, {"Automaton", "Process"}, AUTOMATON_HOME_MODULES)
        )

        # Function scopes (nested defs attribute to their outermost owner).
        owned: Set[int] = set()
        for qualname, node in sorted(scope_defs.items()):
            nodes = [n for n in ast.walk(node) if n is not node]
            owned.update(id(n) for n in nodes)
            owned.add(id(node))
            scanner = _FunctionScanner(ctx, self, qualname, node, nodes)
            scanner.scan()
            scanner.scan_order_params(node)
            facts.functions[qualname] = scanner.facts

        module_nodes = [
            n for n in ast.walk(tree) if n is not tree and id(n) not in owned
        ]
        scanner = _FunctionScanner(ctx, self, MODULE_SCOPE, tree, module_nodes)
        scanner.scan()
        facts.functions[MODULE_SCOPE] = scanner.facts
        return facts

    @staticmethod
    def _is_mutable_value(value: ast.AST) -> bool:
        if isinstance(
            value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        return (
            isinstance(value, ast.Call)
            and call_name(value) in _MUTABLE_CONSTRUCTORS
        )


def extract_facts(ctx: FileContext, sha: str) -> FileFacts:
    """Extract the whole-program facts of one parsed file."""
    return FactsExtractor(ctx, sha).extract()
