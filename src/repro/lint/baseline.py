"""Committed baselines for grandfathered findings.

A baseline is a JSON file listing findings that existed when the linter was
introduced (or when a rule was added) and are temporarily tolerated.  Each
entry carries the line-number-free fingerprint of one finding, so the
baseline survives unrelated edits; a fixed finding leaves a *stale* entry
behind, which ``--strict`` turns into an error so baselines only shrink.

The policy (docs/linting.md): new code never gets baselined — intentional
exemptions use an inline ``# repro: noqa`` with a reason.  The repository
ships an empty ``lint-baseline.json`` to keep the mechanism exercised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.lint.findings import Finding

#: /2 added the per-line occurrence index to the fingerprint basis, so two
#: identical findings on one line no longer collapse into a single entry.
SCHEMA = "repro-lint-baseline/2"


@dataclass
class Baseline:
    """An in-memory baseline: fingerprints of tolerated findings."""

    entries: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def fingerprints(self) -> Set[str]:
        return {entry["fingerprint"] for entry in self.entries}

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path) as fh:
            data = json.load(fh)
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unsupported baseline schema {data.get('schema')!r} "
                f"(expected {SCHEMA!r})"
            )
        entries = data.get("entries", [])
        for entry in entries:
            if "fingerprint" not in entry or "code" not in entry:
                raise ValueError(
                    f"{path}: baseline entries need 'fingerprint' and 'code'"
                )
        return cls(entries=list(entries))

    def save(self, path: str) -> None:
        payload = {"schema": SCHEMA, "entries": self.entries}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries = [
            {
                "code": f.code,
                "path": f.path,
                "module": f.module,
                "snippet": f.snippet,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ]
        entries.sort(key=lambda e: (e["path"], e["code"], e["fingerprint"]))
        return cls(entries=entries)

    # -- matching ----------------------------------------------------------

    def apply(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Dict[str, Any]]]:
        """Mark baselined findings; return (fresh_findings, stale_entries)."""
        matched: Set[str] = set()
        fresh: List[Finding] = []
        known = self.fingerprints
        for finding in findings:
            if finding.fingerprint in known:
                finding.baselined = True
                matched.add(finding.fingerprint)
            else:
                fresh.append(finding)
        stale = [
            entry
            for entry in self.entries
            if entry["fingerprint"] not in matched
        ]
        return fresh, stale
