"""Lint engine: file collection, rule execution, suppression & baseline.

The engine parses each file once, hands the shared :class:`FileContext` to
every rule whose scope covers the file's module, then applies inline
``# repro: noqa`` suppressions and the optional baseline.  Everything is
pure and deterministic: files are visited in sorted order and findings are
sorted by (path, line, col, code).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext
from repro.lint.findings import Finding, assign_occurrences
from repro.lint.noqa import Suppression, parse_suppressions, suppression_for
from repro.lint.registry import all_rules

#: Directory names never descended into.
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "results", ".github"}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    unreasoned_noqa: List[Suppression] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def exit_code(self, strict: bool = False) -> int:
        if self.findings or self.parse_errors:
            return 1
        if strict and (self.stale_baseline or self.unreasoned_noqa):
            return 1
        return 0

    @property
    def all_findings(self) -> List[Finding]:
        """Every finding including suppressed/baselined (for reporting)."""
        out = list(self.findings)
        out.extend(f for f, _ in self.suppressed)
        out.extend(self.baselined)
        out.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return out


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


def _raw_findings(ctx: FileContext) -> List[Finding]:
    found: List[Finding] = []
    for rule in all_rules():
        if rule.applies_to(ctx.module):
            found.extend(rule.check(ctx))
    found.sort(key=lambda f: (f.line, f.col, f.code))
    return found


def lint_source(
    source: str, path: str = "<string>", module: Optional[str] = None
) -> List[Finding]:
    """Lint one source string; returns post-suppression findings.

    The fixture-driven rule tests build on this: no filesystem involved.
    """
    ctx = FileContext(path, source, module=module)
    findings = _raw_findings(ctx)
    suppressions = parse_suppressions(ctx.lines)
    kept = []
    for finding in findings:
        hit = suppression_for(suppressions, finding.line, finding.code)
        if hit is None:
            kept.append(finding)
        else:
            finding.suppressed = True
    return kept


def run_lint(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint files/directories and fold in suppressions and the baseline."""
    result = LintResult()
    kept: List[Finding] = []
    for path in collect_files(paths):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            ctx = FileContext(path, source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.parse_errors.append(f"{path}: {exc}")
            continue
        result.files_checked += 1
        findings = _raw_findings(ctx)
        suppressions = parse_suppressions(ctx.lines)
        used_lines = set()
        for finding in findings:
            hit = suppression_for(suppressions, finding.line, finding.code)
            if hit is None:
                kept.append(finding)
            else:
                finding.suppressed = True
                used_lines.add(hit.line)
                result.suppressed.append((finding, hit))
        for line in sorted(used_lines):
            if not suppressions[line].reason:
                result.unreasoned_noqa.append(suppressions[line])

    assign_occurrences(kept)
    if baseline is not None:
        fresh, stale = baseline.apply(kept)
        result.baselined = [f for f in kept if f.baselined]
        result.stale_baseline = stale
        kept = fresh
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.findings = kept
    return result
