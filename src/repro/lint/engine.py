"""Lint engine: file collection, rule execution, suppression & baseline.

Two phases, both pure and deterministic:

1. **Per-file** — parse once into a :class:`FileContext`, run every
   single-file rule whose scope covers the module, and extract the file's
   :class:`~repro.lint.project.facts.FileFacts`.  With a
   :class:`~repro.lint.project.cache.FactsCache` attached
   (``repro lint --changed``), this whole phase is skipped for files whose
   (content, rule-set) pair is already in the result store — findings and
   facts replay from the cached record.
2. **Project** — build the :class:`~repro.lint.project.graph.Project` from
   all facts and run the flow-aware rules over it.  This phase always
   runs (it is cross-file by construction) but needs no ASTs, which is why
   warm runs are fast *and* byte-identical to cold runs.

Files are visited in sorted order and findings are sorted by
(path, line, col, code); inline ``# repro: noqa`` suppressions and the
optional baseline apply uniformly to both phases.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext, module_name_for_path
from repro.lint.findings import Finding, assign_occurrences
from repro.lint.noqa import Suppression, parse_suppressions, suppression_for
from repro.lint.project.cache import FactsCache
from repro.lint.project.facts import FileFacts, extract_facts
from repro.lint.project.graph import build_project
from repro.lint.registry import all_project_rules, all_rules

#: Directory names never descended into.  ``fixtures`` holds committed
#: multi-file lint fixtures (intentionally violating rules); tests copy
#: them into temp trees before linting them.
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "results", ".github", "fixtures"}


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)  # actionable
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    unreasoned_noqa: List[Suppression] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: cache accounting for ``--changed`` runs; never serialized into
    #: reports (warm and cold reports must stay byte-identical)
    cache_stats: Optional[Dict[str, int]] = None

    def exit_code(self, strict: bool = False) -> int:
        if self.findings or self.parse_errors:
            return 1
        if strict and (self.stale_baseline or self.unreasoned_noqa):
            return 1
        return 0

    @property
    def all_findings(self) -> List[Finding]:
        """Every finding including suppressed/baselined (for reporting)."""
        out = list(self.findings)
        out.extend(f for f, _ in self.suppressed)
        out.extend(self.baselined)
        out.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return out


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


def _raw_findings(ctx: FileContext) -> List[Finding]:
    found: List[Finding] = []
    for rule in all_rules():
        if rule.applies_to(ctx.module):
            found.extend(rule.check(ctx))
    found.sort(key=lambda f: (f.line, f.col, f.code))
    return found


@dataclass
class _FileRecord:
    """One analyzed file: findings, suppression table, project facts."""

    path: str
    module: str
    findings: List[Finding]
    suppressions: Dict[int, Suppression]
    facts: FileFacts


def _suppressions_from_facts(facts: FileFacts) -> Dict[int, Suppression]:
    return {
        entry["line"]: Suppression(
            line=entry["line"],
            codes=frozenset(entry["codes"]),
            reason=entry["reason"],
        )
        for entry in facts.suppressions
    }


def _analyze_file(
    path: str, source: str, source_sha: str
) -> Tuple[_FileRecord, Dict]:
    """Parse + single-file rules + facts; returns the record and its
    cache payload."""
    ctx = FileContext(path, source)
    findings = _raw_findings(ctx)
    facts = extract_facts(ctx, source_sha)
    # Raw (pre-suppression) single-file findings ride inside the facts:
    # the flow rules consult them to avoid duplicating in-file reports.
    facts.findings = [f.to_json() for f in findings]
    payload = {"facts": facts.to_dict()}
    record = _FileRecord(
        path=path,
        module=ctx.module,
        findings=findings,
        suppressions=parse_suppressions(ctx.lines),
        facts=facts,
    )
    return record, payload


def _record_from_cache(path: str, module: str, cached: Dict) -> _FileRecord:
    facts = FileFacts.from_dict(cached["facts"])
    facts.path = path  # same content may have moved since it was cached
    findings = [Finding.from_json(d) for d in facts.findings]
    for finding in findings:
        finding.path = path
    return _FileRecord(
        path=path,
        module=module,
        findings=findings,
        suppressions=_suppressions_from_facts(facts),
        facts=facts,
    )


def _project_findings(records: Sequence[_FileRecord]) -> List[Finding]:
    project = build_project([r.facts for r in records])
    found: List[Finding] = []
    for rule in all_project_rules():
        found.extend(rule.check(project))
    found.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    return found


def _assemble(
    records: Sequence[_FileRecord],
    result: "LintResult",
    baseline: Optional[Baseline],
) -> None:
    """Suppressions + project phase + occurrences + baseline, in order."""
    by_module: Dict[str, _FileRecord] = {}
    for record in records:
        by_module.setdefault(record.module, record)

    kept: List[Finding] = []
    used: Dict[Tuple[str, int], Suppression] = {}

    def fold(finding: Finding, record: _FileRecord) -> None:
        hit = suppression_for(record.suppressions, finding.line, finding.code)
        if hit is None:
            kept.append(finding)
        else:
            finding.suppressed = True
            used[(record.module, hit.line)] = hit
            result.suppressed.append((finding, hit))

    for record in records:
        for finding in record.findings:
            fold(finding, record)
    for finding in _project_findings(records):
        record = by_module.get(finding.module)
        if record is None:  # pragma: no cover - module always indexed
            kept.append(finding)
            continue
        fold(finding, record)

    for key in sorted(used):
        if not used[key].reason:
            result.unreasoned_noqa.append(used[key])

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    assign_occurrences(kept)
    if baseline is not None:
        fresh, stale = baseline.apply(kept)
        result.baselined = [f for f in kept if f.baselined]
        result.stale_baseline = stale
        kept = fresh
    result.findings = kept


def lint_source(
    source: str, path: str = "<string>", module: Optional[str] = None
) -> List[Finding]:
    """Lint one source string; returns post-suppression findings.

    The fixture-driven rule tests build on this: no filesystem involved.
    Runs both phases — the project phase sees a single-file project, so
    flow rules needing cross-module context simply find none.
    """
    ctx = FileContext(path, source, module=module)
    findings = _raw_findings(ctx)
    facts = extract_facts(ctx, FactsCache.source_sha(source.encode("utf-8")))
    facts.findings = [f.to_json() for f in findings]
    record = _FileRecord(
        path=path,
        module=ctx.module,
        findings=findings,
        suppressions=parse_suppressions(ctx.lines),
        facts=facts,
    )
    result = LintResult()
    _assemble([record], result, baseline=None)
    return result.findings


def run_lint(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    cache: Optional[FactsCache] = None,
) -> LintResult:
    """Lint files/directories and fold in suppressions and the baseline.

    With ``cache``, per-file analysis is served from the result store for
    files whose (content, rule-set signature) is unchanged; only moved
    files are re-parsed.  Findings are byte-identical either way.
    """
    result = LintResult()
    records: List[_FileRecord] = []
    for path in collect_files(paths):
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
            source_sha = FactsCache.source_sha(raw)
            module = module_name_for_path(path)
            cached = cache.load(module, source_sha) if cache is not None else None
            if cached is not None:
                record = _record_from_cache(path, module, cached)
            else:
                record, payload = _analyze_file(
                    path, raw.decode("utf-8"), source_sha
                )
                if cache is not None:
                    cache.save(module, source_sha, payload)
        except (SyntaxError, UnicodeDecodeError) as exc:
            result.parse_errors.append(f"{path}: {exc}")
            continue
        result.files_checked += 1
        records.append(record)

    _assemble(records, result, baseline)
    if cache is not None:
        result.cache_stats = cache.stats()
    return result
