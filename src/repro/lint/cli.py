"""The ``python -m repro lint`` subcommand.

Exit codes: 0 clean, 1 findings (plus, under ``--strict``, stale baseline
entries or reason-less suppressions), 2 usage errors.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.registry import all_project_rules, all_rules
from repro.lint.reporters import render_json, render_sarif, render_text


def add_arguments(parser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="stdout report format (default: text)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="serve per-file analysis from the content-addressed result "
        "store (REPRO_STORE_DIR or benchmarks/results/store); only files "
        "whose (content, rule-set) moved are re-parsed — findings are "
        "byte-identical to a cold run",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered findings (repro-lint-baseline/1)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="additionally fail on stale baseline entries and "
        "reason-less noqa comments",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="list suppressed findings and their reasons",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def cmd_lint(args) -> int:
    if args.list_rules:
        for rule in all_rules():
            scope = (
                "everywhere"
                if rule.scope is None
                else ", ".join(rule.scope)
            )
            print(f"{rule.code} {rule.name} [{scope}]")
            print(f"    {rule.summary}")
        for rule in all_project_rules():
            print(f"{rule.code} {rule.name} [whole-program]")
            print(f"    {rule.summary}")
        return 0

    baseline: Optional[Baseline] = None
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    cache = None
    if args.changed:
        from repro.lint.project.cache import FactsCache

        cache = FactsCache()
        if not cache.usable:
            print(
                "warning: repro.lint has no code signature here; "
                "running cold",
                file=sys.stderr,
            )
            cache = None

    try:
        result = run_lint(args.paths, baseline=baseline, cache=cache)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if result.cache_stats is not None:
        # stderr only: warm and cold stdout/artifacts stay byte-identical.
        print(
            f"lint cache: {result.cache_stats['hits']} hit(s), "
            f"{result.cache_stats['misses']} miss(es)",
            file=sys.stderr,
        )

    if args.write_baseline:
        new_baseline = Baseline.from_findings(result.findings)
        new_baseline.save(args.write_baseline)
        print(
            f"wrote {len(new_baseline.entries)} entries to "
            f"{args.write_baseline}"
        )
        return 0

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(render_json(result))

    if args.format == "json":
        sys.stdout.write(render_json(result))
    elif args.format == "sarif":
        sys.stdout.write(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))

    return result.exit_code(strict=args.strict)
