"""A replicated log: one A_nuc instance per slot.

Each process runs consensus instances sequentially; slot ``i``'s instance
starts once slot ``i-1`` is decided locally.  Messages are tagged with
their slot; messages for future slots are stashed and replayed when the
slot opens.  Because a replica that finishes a slot stops serving that
instance, deciders broadcast a ``DECIDED`` notice that lets laggards
short-circuit the slot — safe for *nonuniform* consensus: adopting a value
decided by (in particular) the eventual correct leader preserves agreement
among correct replicas, and the notice carries a proposed value, so
validity is preserved too.

Proposals: each replica proposes its oldest own command not yet in its log
(or ``("noop", -1)`` when exhausted).  Commands are tagged with their
origin, so distinct replicas never contend with equal commands and a chosen
command is never re-proposed.

Being leader-based, the chosen values track the eventual leader's
proposals.  Commands submitted at other replicas become live through
*client-to-leader forwarding*: a replica holding pending commands sends
each one to its current Omega leader hint in a ``FWD`` message (once per
``(command, leader)`` pair, so leader changes trigger re-forwarding and a
stable leadership costs one message per command).  The leader pools
forwarded commands and proposes them once its own are exhausted, so a
laggard no longer pads the log with noop proposals while its commands
starve — the liveness gap the pre-forwarding layer documented.

The log also serves as the consensus core of :mod:`repro.service`: slots
may be unbounded (``slots=None``), commands can be fed in while the system
runs (:meth:`ReplicatedLogProcess.feed`), and *batch* commands —
``("batch", origin, seq, (cmd, ...))`` — are proposed strictly in ``seq``
order per origin, which pins the applied command order regardless of how
many replicas race to propose the same batches.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.nuc import AnucProcess
from repro.kernel.automaton import (
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
)

SLOT = "S"  # (S, slot, inner_payload): one consensus instance's traffic
DECIDED = "DEC"  # (DEC, slot, value): decider's short-circuit notice
FWD = "FWD"  # (FWD, command): client-to-leader command forwarding

BATCH = "batch"  # ("batch", origin, seq, (command, ...)): a service batch

Command = Tuple  # e.g. ("append", pid, k) or ("noop", pid)

NOOP: Command = ("noop", -1)


def is_batch(command: Any) -> bool:
    """Whether ``command`` is a service batch (proposed in seq order)."""
    return (
        isinstance(command, tuple)
        and len(command) == 4
        and command[0] == BATCH
    )


class ReplicatedLogProcess(Process):
    """One replica: sequential A_nuc instances building a shared log.

    ``slots=None`` runs an unbounded log (the long-running service mode);
    a finite ``slots`` reproduces the bounded layer, ending in a serve
    loop that answers laggards' slot traffic with ``DECIDED`` notices.

    ``forward`` enables client-to-leader forwarding (default on).  With it
    off the layer degrades to the historical behaviour: commands pending
    at a non-leader replica are never chosen and the leader pads slots
    with noops — kept only as the regression baseline.
    """

    def __init__(
        self,
        commands: Sequence[Command],
        slots: Optional[int],
        forward: bool = True,
    ):
        self.commands = list(commands)
        self.slots = slots
        self.forward = forward
        self.log: List[Optional[Command]] = []
        self.applied: List[Command] = []  # the state machine history
        self._foreign_batches: List[Command] = []
        self._foreign_plain: List[Command] = []
        self._forwarded: set = set()  # (command, leader) pairs already sent

    # -- dynamic command intake (the service feeds a running replica) ----

    def feed(self, command: Command) -> bool:
        """Queue ``command`` for proposal; ``False`` if already known."""
        if (
            command in self.commands
            or command in self._foreign_batches
            or command in self._foreign_plain
            or command in self.log
        ):
            return False
        self.commands.append(command)
        return True

    def pending_commands(self) -> List[Command]:
        """Commands known here but not yet in the local log."""
        logged = set(self.log)
        pools = (self.commands, self._foreign_batches, self._foreign_plain)
        return [c for pool in pools for c in pool if c not in logged]

    # ------------------------------------------------------------------

    def program(self, ctx: ProcessContext) -> Generator:
        stashed: Dict[int, List[DeliveredMessage]] = {}
        decided_notices: Dict[int, Any] = {}

        def outer_handler(message: DeliveredMessage) -> bool:
            payload = message.payload
            if payload[0] == DECIDED:
                _, slot, value = payload
                decided_notices.setdefault(slot, value)
                return True
            if payload[0] == FWD:
                self._accept_foreign(payload[1])
                return True
            return False

        ctx.add_handler(outer_handler)

        slot_range = (
            itertools.count() if self.slots is None else range(self.slots)
        )
        for slot in slot_range:
            proposal = self._next_proposal()
            inner_ctx = ProcessContext(ctx.pid, ctx.n)
            inner = AnucProcess(proposal)
            runtime = CoroutineRuntime(inner, inner_ctx)
            replay = list(stashed.pop(slot, ()))

            while True:
                if slot in decided_notices:
                    value = decided_notices[slot]
                    break
                if replay:
                    message: Optional[DeliveredMessage] = replay.pop(0)
                    obs_time = ctx.time
                    d = ctx.detector_value
                    if d is None:
                        # No real step taken yet: take one to get a value.
                        obs = yield from ctx.take_step()
                        d = obs.detector_value
                        obs_time = obs.time
                        if obs.message is not None:
                            self._route(obs.message, slot, replay, stashed)
                else:
                    obs = yield from ctx.take_step()
                    d = obs.detector_value
                    obs_time = obs.time
                    message = None
                    if obs.message is not None:
                        message = self._route(obs.message, slot, replay, stashed)
                if slot in decided_notices:
                    value = decided_notices[slot]
                    break
                self._maybe_forward(ctx, d)
                sends = runtime.step(
                    Observation(message=message, detector_value=d, time=obs_time)
                )
                for dest, payload in sends:
                    ctx.send(dest, (SLOT, slot, payload))
                if inner_ctx.decision is not None:
                    value = inner_ctx.decision
                    ctx.send_to_all((DECIDED, slot, value))
                    break

            decided_notices.setdefault(slot, value)
            self.log.append(value)
            self._purge_chosen(value)
            if value is not None and value[0] != "noop":
                self.applied.append(value)

        while True:  # all slots decided; stay alive, serving DECIDED notices
            obs = yield from ctx.take_step()
            self._maybe_forward(ctx, obs.detector_value)
            if obs.message is not None and obs.message.payload[0] == SLOT:
                _, slot, _inner = obs.message.payload
                if slot in decided_notices:
                    ctx.send(
                        obs.message.sender, (DECIDED, slot, decided_notices[slot])
                    )

    # ------------------------------------------------------------------

    def _next_proposal(self) -> Command:
        chosen = set(self.log)
        batch_counts: Dict[Any, int] = {}
        for entry in self.log:
            if is_batch(entry):
                batch_counts[entry[1]] = batch_counts.get(entry[1], 0) + 1

        def eligible(command: Command) -> bool:
            if command in chosen:
                return False
            if is_batch(command):
                # Batches are proposed strictly in seq order per origin, so
                # every racing proposer names the same next batch and the
                # decided log can never reorder a session's commands.
                return command[2] == batch_counts.get(command[1], 0)
            return True

        for command in self.commands:
            if eligible(command):
                return command
        for command in sorted(
            self._foreign_batches, key=lambda c: (c[1], c[2])
        ):
            if eligible(command):
                return command
        for command in self._foreign_plain:
            if eligible(command):
                return command
        return NOOP

    def _leader_hint(self, d: Any) -> Optional[int]:
        """The Omega component of a paired detector value, if recognizable."""
        if isinstance(d, tuple) and d and isinstance(d[0], int):
            return d[0]
        return None

    def _maybe_forward(self, ctx: ProcessContext, d: Any) -> None:
        """Send pending own commands to the current leader hint (once per
        ``(command, leader)`` pair; a leader change re-forwards)."""
        if not self.forward or not self.commands:
            return
        leader = self._leader_hint(d)
        if leader is None or leader == ctx.pid:
            return
        logged = set(self.log)
        for command in self.commands:
            if command in logged:
                continue
            key = (command, leader)
            if key in self._forwarded:
                continue
            ctx.send(leader, (FWD, command))
            self._forwarded.add(key)

    def _accept_foreign(self, command: Command) -> None:
        if (
            command in self.commands
            or command in self._foreign_batches
            or command in self._foreign_plain
            or command in self.log
        ):
            return
        if is_batch(command):
            self._foreign_batches.append(command)
        else:
            self._foreign_plain.append(command)

    def _purge_chosen(self, value: Optional[Command]) -> None:
        """Drop a freshly decided command from the pending pools."""
        if value is None:
            return
        for pool in (self.commands, self._foreign_batches, self._foreign_plain):
            if value in pool:
                pool.remove(value)

    def _route(
        self,
        message: DeliveredMessage,
        current_slot: int,
        replay: List[DeliveredMessage],
        stashed: Dict[int, List[DeliveredMessage]],
    ) -> Optional[DeliveredMessage]:
        """Unwrap a SLOT message for the current instance or stash it."""
        payload = message.payload
        if payload[0] != SLOT:
            return None
        _, slot, inner = payload
        unwrapped = DeliveredMessage(message.sender, inner)
        if slot == current_slot:
            return unwrapped
        if slot > current_slot:
            stashed.setdefault(slot, []).append(unwrapped)
        # Past-slot traffic: answered by the post-loop server (or dropped
        # here — the DECIDED notice is the catch-all for laggards).
        return None


def run_replicated_log(
    pattern,
    commands_per_process: Dict[int, Sequence[Command]],
    slots: int,
    seed: int = 0,
    max_steps: int = 120000,
    detector=None,
    forward: bool = True,
):
    """Run a full replicated-log system; returns (result, processes)."""
    import random as _random

    from repro.detectors import Omega, PairedDetector, SigmaNuPlus
    from repro.kernel.system import System

    if detector is None:
        detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, _random.Random(seed + 777))
    processes = {
        p: ReplicatedLogProcess(
            commands_per_process.get(p, ()), slots, forward=forward
        )
        for p in range(pattern.n)
    }
    system = System(processes, pattern, history, seed=seed)

    def all_logs_full(sys) -> bool:
        return all(
            len(processes[p].log) >= slots for p in pattern.correct
        )

    result = system.run(max_steps=max_steps, stop_when=all_logs_full)
    return result, processes
