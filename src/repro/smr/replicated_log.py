"""A replicated log: one A_nuc instance per slot.

Each process runs consensus instances sequentially; slot ``i``'s instance
starts once slot ``i-1`` is decided locally.  Messages are tagged with
their slot; messages for future slots are stashed and replayed when the
slot opens.  Because a replica that finishes a slot stops serving that
instance, deciders broadcast a ``DECIDED`` notice that lets laggards
short-circuit the slot — safe for *nonuniform* consensus: adopting a value
decided by (in particular) the eventual correct leader preserves agreement
among correct replicas, and the notice carries a proposed value, so
validity is preserved too.

Proposals: each replica proposes its oldest own command not yet in its log
(or ``("noop", pid)`` when exhausted).  Commands are tagged with their
origin, so distinct replicas never contend with equal commands and a chosen
command is never re-proposed.

Being leader-based, the chosen values track the eventual leader's
proposals; commands submitted at other replicas need client-to-leader
forwarding to be *live*, which this minimal layer deliberately omits — its
claims are the safety ones (`repro.smr.properties`): log agreement among
correct replicas, validity, no duplication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.nuc import AnucProcess
from repro.kernel.automaton import (
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
)

SLOT = "S"  # (S, slot, inner_payload): one consensus instance's traffic
DECIDED = "DEC"  # (DEC, slot, value): decider's short-circuit notice

Command = Tuple  # e.g. ("append", pid, k) or ("noop", pid)


class ReplicatedLogProcess(Process):
    """One replica: sequential A_nuc instances building a shared log."""

    def __init__(self, commands: Sequence[Command], slots: int):
        self.commands = list(commands)
        self.slots = slots
        self.log: List[Optional[Command]] = []
        self.applied: List[Command] = []  # the state machine history

    def program(self, ctx: ProcessContext) -> Generator:
        stashed: Dict[int, List[DeliveredMessage]] = {}
        decided_notices: Dict[int, Any] = {}

        def outer_handler(message: DeliveredMessage) -> bool:
            payload = message.payload
            if payload[0] == DECIDED:
                _, slot, value = payload
                decided_notices.setdefault(slot, value)
                return True
            return False

        ctx.add_handler(outer_handler)

        for slot in range(self.slots):
            proposal = self._next_proposal()
            inner_ctx = ProcessContext(ctx.pid, ctx.n)
            inner = AnucProcess(proposal)
            runtime = CoroutineRuntime(inner, inner_ctx)
            replay = list(stashed.pop(slot, ()))

            while True:
                if slot in decided_notices:
                    value = decided_notices[slot]
                    break
                if replay:
                    message: Optional[DeliveredMessage] = replay.pop(0)
                    obs_time = ctx.time
                    d = ctx.detector_value
                    if d is None:
                        # No real step taken yet: take one to get a value.
                        obs = yield from ctx.take_step()
                        d = obs.detector_value
                        obs_time = obs.time
                        if obs.message is not None:
                            self._route(obs.message, slot, replay, stashed)
                else:
                    obs = yield from ctx.take_step()
                    d = obs.detector_value
                    obs_time = obs.time
                    message = None
                    if obs.message is not None:
                        message = self._route(obs.message, slot, replay, stashed)
                if slot in decided_notices:
                    value = decided_notices[slot]
                    break
                sends = runtime.step(
                    Observation(message=message, detector_value=d, time=obs_time)
                )
                for dest, payload in sends:
                    ctx.send(dest, (SLOT, slot, payload))
                if inner_ctx.decision is not None:
                    value = inner_ctx.decision
                    ctx.send_to_all((DECIDED, slot, value))
                    break

            decided_notices.setdefault(slot, value)
            self.log.append(value)
            if value is not None and value[0] != "noop":
                self.applied.append(value)

        while True:  # all slots decided; stay alive, serving DECIDED notices
            obs = yield from ctx.take_step()
            if obs.message is not None and obs.message.payload[0] == SLOT:
                _, slot, _inner = obs.message.payload
                if slot in decided_notices:
                    ctx.send(
                        obs.message.sender, (DECIDED, slot, decided_notices[slot])
                    )

    # ------------------------------------------------------------------

    def _next_proposal(self) -> Command:
        chosen = set(self.log)
        for command in self.commands:
            if command not in chosen:
                return command
        return ("noop", -1)

    def _route(
        self,
        message: DeliveredMessage,
        current_slot: int,
        replay: List[DeliveredMessage],
        stashed: Dict[int, List[DeliveredMessage]],
    ) -> Optional[DeliveredMessage]:
        """Unwrap a SLOT message for the current instance or stash it."""
        payload = message.payload
        if payload[0] != SLOT:
            return None
        _, slot, inner = payload
        unwrapped = DeliveredMessage(message.sender, inner)
        if slot == current_slot:
            return unwrapped
        if slot > current_slot:
            stashed.setdefault(slot, []).append(unwrapped)
        # Past-slot traffic: answered by the post-loop server (or dropped
        # here — the DECIDED notice is the catch-all for laggards).
        return None


def run_replicated_log(
    pattern,
    commands_per_process: Dict[int, Sequence[Command]],
    slots: int,
    seed: int = 0,
    max_steps: int = 120000,
    detector=None,
):
    """Run a full replicated-log system; returns (result, processes)."""
    import random as _random

    from repro.detectors import Omega, PairedDetector, SigmaNuPlus
    from repro.kernel.system import System

    if detector is None:
        detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, _random.Random(seed + 777))
    processes = {
        p: ReplicatedLogProcess(commands_per_process.get(p, ()), slots)
        for p in range(pattern.n)
    }
    system = System(processes, pattern, history, seed=seed)

    def all_logs_full(sys) -> bool:
        return all(
            len(processes[p].log) >= slots for p in pattern.correct
        )

    result = system.run(max_steps=max_steps, stop_when=all_logs_full)
    return result, processes
