"""State-machine replication on top of the paper's consensus.

The downstream payoff of a consensus building block: a replicated log.
Each slot of the log is decided by one instance of A_nuc (driven by an
ambient (Omega, Sigma^nu+) module — or the full (Omega, Sigma^nu) stack's
booster output); correct replicas apply the decided commands in slot order
and therefore execute identical state-machine histories, with any number of
crash failures.

Nonuniform consensus is exactly strong enough for this *among correct
replicas*: a faulty replica may apply a divergent command before crashing,
which is harmless to the survivors — the same weakening the paper
characterizes.
"""

from repro.smr.replicated_log import (
    ReplicatedLogProcess,
    is_batch,
    run_replicated_log,
)
from repro.smr.properties import (
    ServiceInvariants,
    SmrReport,
    certified_log,
    certified_prefix_length,
    check_certified_reads,
    check_service_log,
    check_smr,
    flatten_batches,
)

__all__ = [
    "ReplicatedLogProcess",
    "ServiceInvariants",
    "SmrReport",
    "certified_log",
    "certified_prefix_length",
    "check_certified_reads",
    "check_service_log",
    "check_smr",
    "flatten_batches",
    "is_batch",
    "run_replicated_log",
]
