"""Correctness of replicated-log and consensus-service runs.

Among *correct* replicas the log must be one shared sequence (per-slot
nonuniform agreement lifts to log equality), every logged command must have
been submitted by someone (validity), and no command may occupy two slots.

The service-level checkers extend this to client-visible semantics: decided
batches flatten to a duplicate-free command sequence, each session's
commands apply in strictly increasing ``seq`` order (FIFO), and certified
prefixes really are backed by a majority of matching replica logs.
:class:`ServiceInvariants` is the *online* form, wired into the service
apply loop so every applied command is checked as it happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass
class SmrReport:
    """Outcome of checking one replicated-log run."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    log_length: int = 0
    commands_chosen: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAIL: " + "; ".join(self.violations[:2])
        return f"SmrReport(len={self.log_length}, {status})"


def check_smr(pattern, processes, submitted: Dict[int, Sequence]) -> SmrReport:
    """Check log agreement, validity and no-duplication for a finished run."""
    report = SmrReport(ok=True)
    correct = sorted(pattern.correct)
    logs = {p: list(processes[p].log) for p in correct}
    if not logs:
        return report

    # Agreement: all correct logs equal (prefix equality for stragglers).
    reference_pid = max(logs, key=lambda p: len(logs[p]))
    reference = logs[reference_pid]
    report.log_length = len(reference)
    for p, log in logs.items():
        if log != reference[: len(log)]:
            report.ok = False
            report.violations.append(
                f"agreement: log of p{p} {log} is not a prefix of "
                f"p{reference_pid}'s {reference}"
            )

    # Validity: every non-noop entry was submitted by its tagged origin.
    allowed = {c for cmds in submitted.values() for c in cmds}
    for i, entry in enumerate(reference):
        if entry is None or entry[0] == "noop":
            continue
        if entry not in allowed:
            report.ok = False
            report.violations.append(
                f"validity: slot {i} holds unsubmitted command {entry!r}"
            )

    # No duplication: each command at most once.
    non_noop = [e for e in reference if e is not None and e[0] != "noop"]
    report.commands_chosen = len(non_noop)
    if len(set(non_noop)) != len(non_noop):
        report.ok = False
        report.violations.append("duplication: a command occupies two slots")

    # Applied state machines mirror the logs.
    for p in correct:
        expected = [e for e in logs[p] if e is not None and e[0] != "noop"]
        if processes[p].applied != expected:
            report.ok = False
            report.violations.append(
                f"application: p{p} applied {processes[p].applied} but "
                f"logged {expected}"
            )
    return report


# ----------------------------------------------------------------------
# Service-level (client-visible) invariants
# ----------------------------------------------------------------------

#: A client command as the service shapes it: (session_id, client_seq, op).
ClientCommand = Tuple


def flatten_batches(decided: Sequence) -> List[ClientCommand]:
    """Client commands of a decided log, in slot-then-batch order.

    Skips noops and non-batch entries; a ``("batch", origin, seq, cmds)``
    entry contributes ``cmds`` in order.
    """
    flat: List[ClientCommand] = []
    for entry in decided:
        if entry is None or entry[0] != "batch":
            continue
        flat.extend(entry[3])
    return flat


class ServiceInvariants:
    """Online checker wired into the service apply loop.

    For each command the loop calls :meth:`observe`, which answers whether
    the command is *fresh* (should be applied) or a duplicate (must be
    skipped), and records a violation when a fresh command would apply out
    of session FIFO order.  Gaps are legal — a command that never commits
    (client crashed before its batch was proposed) leaves a hole, but the
    committed subsequence of every session must be strictly increasing.
    """

    def __init__(self) -> None:
        self._seen: set = set()  # (session, seq) pairs applied
        self._last_seq: Dict[object, int] = {}
        self.violations: List[str] = []
        self.applied_count = 0
        self.duplicate_count = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def observe(self, session, seq: int, op, slot: Optional[int] = None) -> bool:
        """True when (session, seq) is fresh and FIFO-consistent to apply."""
        key = (session, seq)
        if key in self._seen:
            self.duplicate_count += 1
            return False
        last = self._last_seq.get(session)
        if last is not None and seq <= last:
            where = "" if slot is None else f" (slot {slot})"
            self.violations.append(
                f"fifo: session {session!r} applied seq {seq} after "
                f"{last}{where}"
            )
        self._seen.add(key)
        self._last_seq[session] = max(self._last_seq.get(session, -1), seq)
        self.applied_count += 1
        return True

    def report(self) -> SmrReport:
        return SmrReport(
            ok=self.ok,
            violations=list(self.violations),
            commands_chosen=self.applied_count,
        )


def check_service_log(decided: Sequence) -> SmrReport:
    """Offline form: batch seq order + client no-dup/FIFO of one log."""
    report = SmrReport(ok=True, log_length=len(decided))
    next_seq: Dict[object, int] = {}
    for i, entry in enumerate(decided):
        if entry is None or entry[0] != "batch":
            continue
        _, origin, seq, _cmds = entry
        expected = next_seq.get(origin, 0)
        if seq != expected:
            report.ok = False
            report.violations.append(
                f"batch-order: slot {i} holds {origin!r}#{seq}, "
                f"expected #{expected}"
            )
        next_seq[origin] = max(next_seq.get(origin, 0), seq) + 1

    invariants = ServiceInvariants()
    for session, seq, op in flatten_batches(decided):
        if not invariants.observe(session, seq, op):
            report.ok = False
            report.violations.append(
                f"duplication: ({session!r}, {seq}) committed twice"
            )
    report.commands_chosen = invariants.applied_count
    if not invariants.ok:
        report.ok = False
        report.violations.extend(invariants.violations)
    return report


def certified_log(logs: Mapping[int, Sequence], quorum: int) -> List:
    """Per-slot quorum-majority entries of the certified prefix.

    Slot ``i``'s certified entry is the value held at slot ``i`` by at
    least ``quorum`` replica logs; since quorum is a majority, that value
    is unique when it exists.  The prefix ends at the first slot with no
    such value.  Certified state must always be read from this log, never
    from any single replica — under the nonuniform model a faulty replica
    may hold a divergent value inside the certified range, and its log
    (even the longest one) is not a safe reference.
    """
    prefix: List = []
    while True:
        slot = len(prefix)
        votes: Dict[object, int] = {}
        for log in logs.values():
            if len(log) > slot:
                entry = log[slot]
                votes[entry] = votes.get(entry, 0) + 1
        winner = None
        for entry, count in votes.items():
            if count >= quorum:
                winner = entry
                break
        if winner is None:
            return prefix
        prefix.append(winner)


def certified_prefix_length(
    logs: Mapping[int, Sequence], quorum: int
) -> int:
    """Longest prefix on which at least ``quorum`` replica logs agree.

    This is the *certification* rule the service reads from: a slot's
    value is client-exposable only once a majority of replicas hold it —
    the uniform-safe subset of a nonuniform log (a faulty minority may
    have applied a divergent value, but never a certified one).
    """
    return len(certified_log(logs, quorum))


def check_certified_reads(
    read_log: Iterable[Tuple[int, Sequence]],
    logs: Mapping[int, Sequence],
    quorum: int,
) -> SmrReport:
    """Every served read must be a certified prefix of the final logs.

    ``read_log`` holds ``(prefix_len, applied_commands)`` audit entries
    recorded by the service at reply time; ``logs`` the final per-replica
    decided logs.  A read is safe when its prefix is within the final
    certified length and its commands match the flattened certified log.
    """
    report = SmrReport(ok=True)
    reference = certified_log(logs, quorum)
    certified = len(reference)
    certified_flat = flatten_batches(reference)
    for prefix_len, commands in read_log:
        if prefix_len > certified:
            report.ok = False
            report.violations.append(
                f"read: served prefix {prefix_len} beyond certified "
                f"{certified}"
            )
            continue
        served = list(commands)
        if served != certified_flat[: len(served)]:
            report.ok = False
            report.violations.append(
                f"read: served commands diverge from the certified log "
                f"at prefix {prefix_len}"
            )
    return report
