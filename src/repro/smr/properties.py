"""Correctness of replicated-log runs.

Among *correct* replicas the log must be one shared sequence (per-slot
nonuniform agreement lifts to log equality), every logged command must have
been submitted by someone (validity), and no command may occupy two slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass
class SmrReport:
    """Outcome of checking one replicated-log run."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    log_length: int = 0
    commands_chosen: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAIL: " + "; ".join(self.violations[:2])
        return f"SmrReport(len={self.log_length}, {status})"


def check_smr(pattern, processes, submitted: Dict[int, Sequence]) -> SmrReport:
    """Check log agreement, validity and no-duplication for a finished run."""
    report = SmrReport(ok=True)
    correct = sorted(pattern.correct)
    logs = {p: list(processes[p].log) for p in correct}
    if not logs:
        return report

    # Agreement: all correct logs equal (prefix equality for stragglers).
    reference_pid = max(logs, key=lambda p: len(logs[p]))
    reference = logs[reference_pid]
    report.log_length = len(reference)
    for p, log in logs.items():
        if log != reference[: len(log)]:
            report.ok = False
            report.violations.append(
                f"agreement: log of p{p} {log} is not a prefix of "
                f"p{reference_pid}'s {reference}"
            )

    # Validity: every non-noop entry was submitted by its tagged origin.
    allowed = {c for cmds in submitted.values() for c in cmds}
    for i, entry in enumerate(reference):
        if entry is None or entry[0] == "noop":
            continue
        if entry not in allowed:
            report.ok = False
            report.violations.append(
                f"validity: slot {i} holds unsubmitted command {entry!r}"
            )

    # No duplication: each command at most once.
    non_noop = [e for e in reference if e is not None and e[0] != "noop"]
    report.commands_chosen = len(non_noop)
    if len(set(non_noop)) != len(non_noop):
        report.ok = False
        report.violations.append("duplication: a command occupies two slots")

    # Applied state machines mirror the logs.
    for p in correct:
        expected = [e for e in logs[p] if e is not None and e[0] != "noop"]
        if processes[p].applied != expected:
            report.ok = False
            report.violations.append(
                f"application: p{p} applied {processes[p].applied} but "
                f"logged {expected}"
            )
    return report
