"""``repro.obs`` — unified tracing & telemetry.

One subsystem serves every observability need of the reproduction:

* :class:`~repro.obs.tracer.Tracer` — nested spans + typed events, clocked
  by logical ticks (simulation step count, search tick), wall-clock only as
  span metadata;
* :class:`~repro.obs.registry.MetricsRegistry` — named counters / gauges /
  timers, with cross-process merge for parallel sweeps;
* :mod:`repro.obs.export` — versioned JSONL trace files
  (``repro-trace/1``, see ``docs/observability.md``);
* :mod:`repro.obs.inspect` — the ``repro trace`` renderer (ASCII timeline
  + per-span aggregates).

Instrumentation contract (zero overhead when off)
-------------------------------------------------

Tracing is **off** by default.  Instrumented hot paths guard every
observability action on the module flag::

    from repro import obs
    ...
    if obs._ENABLED:
        obs.metrics().inc("kernel.runs")

so a disabled run pays one module-attribute read per *instrumentation
site visit* (never per kernel step — the step loop itself is untouched)
and executes bit-identically to an uninstrumented build; the oracle tests
in ``tests/obs/test_equivalence.py`` pin this.  :func:`tracer` returns a
shared :class:`~repro.obs.tracer.NullTracer` while disabled, so unguarded
call sites degrade to cheap no-ops instead of breaking.

Enable with :func:`enable`/:func:`disable` or the :func:`tracing` context
manager::

    with obs.tracing(label="exp3") as tr:
        run_extraction(...)
    write_trace("trace.jsonl", tr, registry=obs.metrics())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "merge_snapshots",
    "metrics",
    "reset_metrics",
    "tracer",
    "tracing",
]

#: Fast guard read by instrumented hot paths.  Treat as read-only outside
#: this module; flip it only through :func:`enable` / :func:`disable`.
_ENABLED = False

_TRACER: Tracer = NULL_TRACER  # type: ignore[assignment]
_METRICS = MetricsRegistry()


def enabled() -> bool:
    """Whether tracing/telemetry collection is currently on."""
    return _ENABLED


def tracer() -> Tracer:
    """The active tracer (a shared no-op tracer while disabled)."""
    return _TRACER


def metrics() -> MetricsRegistry:
    """The process-global metrics registry.

    Always real (never a null object): deterministic counters are cheap and
    their tests want them addressable even while tracing is off.  Hot paths
    still guard writes on ``obs._ENABLED``.
    """
    return _METRICS


def reset_metrics() -> None:
    """Clear the process-global registry (start of a fresh measurement)."""
    _METRICS.clear()


def enable(
    label: str = "trace",
    tracer_obj: Optional[Tracer] = None,
    meta: Optional[Dict[str, Any]] = None,
    fresh_metrics: bool = True,
) -> Tracer:
    """Turn instrumentation on; returns the (new) active tracer.

    ``fresh_metrics`` clears the global registry so the collected metrics
    describe exactly the traced activity.
    """
    global _ENABLED, _TRACER
    _TRACER = tracer_obj if tracer_obj is not None else Tracer(label, meta=meta)
    if fresh_metrics:
        _METRICS.clear()
    _ENABLED = True
    return _TRACER


def disable() -> Tracer:
    """Turn instrumentation off; returns the tracer that was active."""
    global _ENABLED, _TRACER
    was = _TRACER
    _TRACER = NULL_TRACER  # type: ignore[assignment]
    _ENABLED = False
    return was


@contextmanager
def tracing(
    label: str = "trace",
    meta: Optional[Dict[str, Any]] = None,
    fresh_metrics: bool = True,
) -> Iterator[Tracer]:
    """Enable tracing for a block; always disables on exit."""
    tr = enable(label, meta=meta, fresh_metrics=fresh_metrics)
    try:
        yield tr
    finally:
        disable()
