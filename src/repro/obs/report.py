"""``repro obs report`` — one self-contained HTML run observatory.

The report combines, in a single offline file with zero runtime
dependencies beyond the standard library:

* **Traces** — for each supplied JSONL trace (``repro-trace/1`` or
  ``/2``): the ASCII flamegraph and timeline from
  :mod:`repro.obs.analyze` / :mod:`repro.obs.inspect`, the top span-path
  aggregates as an HTML table, and the trace's counter totals;
* **Perf trajectory** — the committed ``BENCH_kernel.json`` /
  ``BENCH_extraction.json`` plus every report shelved in the result
  store's bench shelf (``repro.store``), charted per section as inline
  SVG sparklines across commits (kernel steps/sec, batch speedup,
  extraction scratch-vs-trie seconds, tracing overhead).

Everything is inlined — styles, SVG, data — so the artifact can be
archived from CI and opened anywhere with no network.  All text passes
through :func:`html.escape`; the generator never executes anything from
the inputs.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.analyze import aggregate_paths, render_flame, trace_counters
from repro.obs.inspect import render_timeline

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem auto; max-width: 72rem; color: #1a212b;
       background: #fbfbf8; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a212b; }
h2 { font-size: 1.1rem; margin-top: 2.2rem; }
h3 { font-size: 0.95rem; margin-bottom: 0.3rem; }
pre { background: #10151c; color: #d8e0ea; padding: 0.8rem;
      overflow-x: auto; font-size: 0.72rem; line-height: 1.25; }
table { border-collapse: collapse; font-size: 0.78rem; margin: 0.5rem 0; }
th, td { border: 1px solid #c5c9ce; padding: 0.15rem 0.55rem;
         text-align: left; }
th { background: #e8eaec; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.spark { vertical-align: middle; }
.muted { color: #6b7482; font-size: 0.75rem; }
.section { margin-bottom: 1.5rem; }
"""


# ----------------------------------------------------------------------
# SVG sparklines
# ----------------------------------------------------------------------


def svg_sparkline(
    values: Sequence[float],
    width: int = 220,
    height: int = 36,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """An inline SVG sparkline over ``values`` (last point emphasized)."""
    points = [float(v) for v in values]
    if not points:
        return '<span class="muted">(no data)</span>'
    if len(points) == 1:
        points = points * 2  # a single sample still draws a flat line
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    pad = 3
    xs = [
        pad + i * (width - 2 * pad) / (len(points) - 1)
        for i in range(len(points))
    ]
    ys = [height - pad - (v - lo) / span * (height - 2 * pad) for v in points]
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    title = ""
    if labels:
        title = "<title>{}</title>".format(
            html.escape(
                " | ".join(
                    f"{label}: {value:g}"
                    for label, value in zip(labels, values)
                )
            )
        )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">{title}'
        f'<polyline points="{polyline}" fill="none" stroke="#2563eb" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="2.5" '
        f'fill="#dc2626"/></svg>'
    )


# ----------------------------------------------------------------------
# Trace sections
# ----------------------------------------------------------------------


def _paths_table(records: Sequence[Mapping[str, Any]], top: int = 14) -> str:
    aggs = aggregate_paths(records)
    ranked = sorted(
        aggs.items(), key=lambda kv: (-kv[1]["self_ticks"], kv[0])
    )[:top]
    if not ranked:
        return '<p class="muted">no spans</p>'
    rows = "".join(
        "<tr><td>{}</td><td class=num>{}</td><td class=num>{}</td>"
        "<td class=num>{}</td><td class=num>{:.3f}</td></tr>".format(
            html.escape(path),
            agg["count"],
            agg["total_ticks"],
            agg["self_ticks"],
            agg["wall_ms"],
        )
        for path, agg in ranked
    )
    return (
        "<table><tr><th>span path</th><th>count</th><th>ticks</th>"
        "<th>self</th><th>wall ms</th></tr>" + rows + "</table>"
    )


def _counters_table(counters: Mapping[str, int], top: int = 18) -> str:
    ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    if not ranked:
        return ""
    rows = "".join(
        f"<tr><td>{html.escape(name)}</td><td class=num>{value}</td></tr>"
        for name, value in ranked
    )
    return (
        "<h3>counters</h3><table><tr><th>counter</th><th>total</th></tr>"
        + rows
        + "</table>"
    )


def _trace_section(path: str, records: List[Dict[str, Any]]) -> str:
    head = records[0] if records and records[0].get("type") == "meta" else {}
    label = html.escape(str(head.get("label", os.path.basename(path))))
    schema = html.escape(str(head.get("schema", "?")))
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    parts = [
        '<div class="section">',
        f"<h2>trace: {label}</h2>",
        f'<p class="muted">{html.escape(os.path.basename(path))} '
        f"&middot; {schema} &middot; {len(spans)} spans, "
        f"{len(events)} events</p>",
        "<h3>flamegraph (logical ticks)</h3>",
        f"<pre>{html.escape(render_flame(records, width=48))}</pre>",
        "<h3>timeline</h3>",
        "<pre>{}</pre>".format(
            html.escape(render_timeline(records, width=56, max_rows=28))
        ),
        "<h3>top span paths (by self ticks)</h3>",
        _paths_table(records),
        _counters_table(trace_counters(records)),
        "</div>",
    ]
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Perf trajectory
# ----------------------------------------------------------------------

#: (section title, unit, extractor) — one sparkline row per entry.
_KERNEL_SERIES: List[Tuple[str, str, Any]] = [
    (
        "kernel full trace",
        "steps/s",
        lambda r: (r.get("kernel") or {}).get("full", {}).get("steps_per_sec"),
    ),
    (
        "kernel metrics trace",
        "steps/s",
        lambda r: (r.get("kernel") or {})
        .get("metrics", {})
        .get("steps_per_sec"),
    ),
    (
        "batched kernel",
        "steps/s",
        lambda r: _batch_primary(r).get("steps_per_sec"),
    ),
    (
        "batch speedup vs serial",
        "x",
        lambda r: (r.get("batch") or {}).get("speedup"),
    ),
    (
        "tracing-off micro-bench",
        "steps/s",
        lambda r: (r.get("obs") or {}).get("off", {}).get("steps_per_sec"),
    ),
    (
        "tracing overhead",
        "%",
        lambda r: (r.get("obs") or {}).get("overhead_pct"),
    ),
]


def _batch_primary(report: Mapping[str, Any]) -> Dict[str, Any]:
    batch = report.get("batch") or {}
    mode = batch.get("primary_mode")
    primary = batch.get(mode) if mode else None
    return primary if isinstance(primary, dict) else {}


def _report_stamp(report: Mapping[str, Any]) -> str:
    sha = ((report.get("environment") or {}).get("git_sha") or "local")[:8]
    when = (report.get("generated_at") or "?")[:10]
    return f"{when} {sha}"


def load_kernel_history(
    committed: Optional[Dict[str, Any]],
    store_dir: Optional[str],
) -> List[Dict[str, Any]]:
    """Shelved bench-kernel reports (oldest first), committed one last.

    The shelf is scanned across *all* environment digests — a trajectory
    over commits tolerates machine changes better than it tolerates
    missing history — and ordered by ``generated_at``.  The committed
    report is appended unless the shelf already holds the same stamp.
    """
    reports: List[Dict[str, Any]] = []
    if store_dir:
        shelf = os.path.join(store_dir, "bench", "kernel")
        paths: List[str] = []
        for dirpath, _dirnames, filenames in os.walk(shelf):
            paths.extend(
                os.path.join(dirpath, n)
                for n in filenames
                if n.endswith(".json")
            )
        for path in paths:
            try:
                with open(path) as fh:
                    report = json.load(fh)
            except (OSError, ValueError):
                continue
            if isinstance(report, dict):
                reports.append(report)
    if committed is not None:
        stamps = {_report_stamp(r) for r in reports}
        if _report_stamp(committed) not in stamps:
            reports.append(committed)
    reports.sort(key=lambda r: r.get("generated_at") or "")
    return reports


def _trajectory_section(
    kernel_history: List[Dict[str, Any]],
    extraction: Optional[Dict[str, Any]],
) -> str:
    parts = ['<div class="section">', "<h2>perf trajectory</h2>"]
    if kernel_history:
        labels = [_report_stamp(r) for r in kernel_history]
        parts.append(
            '<p class="muted">bench-kernel reports: '
            + html.escape(" &rarr; ".join(labels)).replace(
                "&amp;rarr;", "&rarr;"
            )
            + "</p>"
        )
        rows = []
        for title, unit, extract in _KERNEL_SERIES:
            series = [
                (label, value)
                for label, value in (
                    (label, extract(r))
                    for label, r in zip(labels, kernel_history)
                )
                if isinstance(value, (int, float))
            ]
            if not series:
                continue
            values = [v for _, v in series]
            rows.append(
                "<tr><td>{}</td><td>{}</td><td class=num>{:g} {}</td>"
                "</tr>".format(
                    html.escape(title),
                    svg_sparkline(values, labels=[l for l, _ in series]),
                    values[-1],
                    html.escape(unit),
                )
            )
        if rows:
            parts.append(
                "<table><tr><th>series</th><th>across commits</th>"
                "<th>latest</th></tr>" + "".join(rows) + "</table>"
            )
    else:
        parts.append('<p class="muted">no bench-kernel reports found</p>')
    if extraction is not None:
        totals = extraction.get("totals") or {}
        scratch = totals.get("scratch_s")
        trie = totals.get("trie_s")
        parts.append("<h3>extraction backends (committed)</h3>")
        if isinstance(scratch, (int, float)) and isinstance(
            trie, (int, float)
        ):
            parts.append(
                "<table><tr><th>backend</th><th>seconds</th></tr>"
                f"<tr><td>from scratch</td><td class=num>{scratch:g}</td></tr>"
                f"<tr><td>incremental trie</td><td class=num>{trie:g}</td></tr>"
                "<tr><td>speedup</td><td class=num>{}&times;</td></tr>"
                "</table>".format(totals.get("speedup", "?"))
            )
        stamp = html.escape(_report_stamp(extraction))
        parts.append(f'<p class="muted">from BENCH_extraction.json ({stamp})</p>')
    parts.append("</div>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------


def build_report(
    traces: Optional[Sequence[str]] = None,
    bench_kernel: Optional[str] = None,
    bench_extraction: Optional[str] = None,
    store_dir: Optional[str] = None,
    title: str = "repro run observatory",
) -> str:
    """Assemble the full HTML document; file paths may each be absent."""
    from repro.obs.export import read_trace, validate_trace

    body: List[str] = []
    for path in traces or []:
        try:
            records = read_trace(path)
        except (OSError, ValueError) as exc:
            body.append(
                '<div class="section"><h2>trace: {}</h2>'
                '<p class="muted">skipped: unreadable ({})</p></div>'.format(
                    html.escape(os.path.basename(path)), html.escape(str(exc))
                )
            )
            continue
        errors = validate_trace(records)
        if errors:
            body.append(
                '<div class="section"><h2>trace: {}</h2>'
                '<p class="muted">skipped: {} schema error(s); first: {}'
                "</p></div>".format(
                    html.escape(os.path.basename(path)),
                    len(errors),
                    html.escape(errors[0]),
                )
            )
            continue
        body.append(_trace_section(path, records))
    committed = _load_json(bench_kernel)
    extraction = _load_json(bench_extraction)
    history = load_kernel_history(committed, store_dir)
    body.append(_trajectory_section(history, extraction))
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        + "\n".join(body)
        + "</body></html>\n"
    )


def write_report(
    path: str,
    traces: Optional[Sequence[str]] = None,
    bench_kernel: Optional[str] = None,
    bench_extraction: Optional[str] = None,
    store_dir: Optional[str] = None,
    title: str = "repro run observatory",
) -> str:
    """Build and write the report; returns ``path``."""
    document = build_report(
        traces=traces,
        bench_kernel=bench_kernel,
        bench_extraction=bench_extraction,
        store_dir=store_dir,
        title=title,
    )
    with open(path, "w") as fh:
        fh.write(document)
    return path


def _load_json(path: Optional[str]) -> Optional[Dict[str, Any]]:
    if not path:
        return None
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None
