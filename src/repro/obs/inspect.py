"""Render a trace as an ASCII timeline + per-span aggregates.

Backs the ``repro trace`` CLI subcommand.  Everything here is
presentation-only; the input is the parsed record list of a
``repro-trace/1`` JSONL file (:func:`repro.obs.export.read_trace`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import Table


def aggregate_spans(records: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-span-name aggregates: count, total/self ticks, wall time.

    *Self* ticks are a span's total ticks minus the total ticks of its
    direct children — the time the phase spent in its own work rather than
    in instrumented sub-phases.  (Clamped at zero: sibling children may
    overlap on coarse logical clocks.)
    """
    spans = [r for r in records if r.get("type") == "span"]
    child_ticks: Dict[int, int] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_ticks[parent] = child_ticks.get(parent, 0) + (
                span["tick_out"] - span["tick_in"]
            )
    out: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        total = span["tick_out"] - span["tick_in"]
        self_ticks = max(0, total - child_ticks.get(span["sid"], 0))
        agg = out.setdefault(
            span["name"],
            {"count": 0, "total_ticks": 0, "self_ticks": 0, "wall_ms": 0.0},
        )
        agg["count"] += 1
        agg["total_ticks"] += total
        agg["self_ticks"] += self_ticks
        agg["wall_ms"] += span.get("wall_ms", 0.0)
    for agg in out.values():
        agg["wall_ms"] = round(agg["wall_ms"], 3)
    return out


def _depth_of(span: Dict[str, Any], by_sid: Dict[int, Dict[str, Any]]) -> int:
    depth = 0
    parent = span.get("parent")
    while parent is not None and depth < 32:
        depth += 1
        parent = by_sid.get(parent, {}).get("parent")
    return depth


def render_timeline(
    records: Sequence[Dict[str, Any]],
    width: int = 64,
    max_rows: int = 40,
) -> str:
    """An ASCII timeline of spans over the logical tick axis.

    One row per span in opening (sid) order, indented by nesting depth,
    with its interval drawn on a tick axis scaled to ``width`` columns.
    Zero-length spans render as a single ``|`` marker.
    """
    spans = sorted(
        (r for r in records if r.get("type") == "span"),
        key=lambda r: r["sid"],
    )
    if not spans:
        return "(no spans)"
    by_sid = {s["sid"]: s for s in spans}
    lo = min(s["tick_in"] for s in spans)
    hi = max(s["tick_out"] for s in spans)
    extent = max(1, hi - lo)
    name_width = min(
        36, max(len(s["name"]) + 2 * _depth_of(s, by_sid) for s in spans)
    )
    lines = [f"ticks {lo}..{hi}  ({len(spans)} spans)"]
    shown = spans[:max_rows]
    for span in shown:
        depth = _depth_of(span, by_sid)
        label = ("  " * depth + span["name"])[:name_width].ljust(name_width)
        a = round((span["tick_in"] - lo) / extent * (width - 1))
        b = round((span["tick_out"] - lo) / extent * (width - 1))
        bar = [" "] * width
        if b > a:
            bar[a] = "["
            for i in range(a + 1, b):
                bar[i] = "="
            bar[b] = "]"
        else:
            bar[a] = "|"
        lines.append(
            f"{label} {''.join(bar)} {span['tick_in']}..{span['tick_out']}"
        )
    if len(spans) > max_rows:
        lines.append(f"... ({len(spans) - max_rows} more spans)")
    return "\n".join(lines)


def render_trace(
    records: Sequence[Dict[str, Any]],
    top: int = 12,
    width: int = 64,
    max_rows: int = 40,
    timeline: bool = True,
) -> str:
    """The full ``repro trace`` report for one parsed trace."""
    head = records[0] if records and records[0].get("type") == "meta" else {}
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    metrics: Optional[Dict[str, Any]] = next(
        (r for r in records if r.get("type") == "metrics"), None
    )
    sections: List[str] = []

    label = head.get("label", "?")
    sections.append(
        f"trace     : {label}  (schema {head.get('schema', '?')})\n"
        f"records   : {len(spans)} spans, {len(events)} events"
        + (", metrics snapshot" if metrics is not None else "")
    )
    if head.get("meta"):
        meta = head["meta"]
        pairs = ", ".join(f"{k}={meta[k]!r}" for k in sorted(meta))
        sections.append(f"meta      : {pairs}")

    if timeline:
        sections.append("\n" + render_timeline(records, width=width, max_rows=max_rows))

    aggregates = aggregate_spans(records)
    if aggregates:
        table = Table(
            f"span aggregates (top {min(top, len(aggregates))} by self ticks)",
            ["span", "count", "total_ticks", "self_ticks", "wall_ms"],
        )
        ranked = sorted(
            aggregates.items(),
            key=lambda kv: (-kv[1]["self_ticks"], -kv[1]["total_ticks"], kv[0]),
        )
        for name, agg in ranked[:top]:
            table.add_row(
                name, agg["count"], agg["total_ticks"], agg["self_ticks"],
                agg["wall_ms"],
            )
        sections.append("\n" + table.render())

    if events:
        by_name: Dict[str, int] = {}
        for event in events:
            by_name[event["name"]] = by_name.get(event["name"], 0) + 1
        table = Table("events", ["event", "count"])
        for name in sorted(by_name, key=lambda k: (-by_name[k], k)):
            table.add_row(name, by_name[name])
        sections.append("\n" + table.render())

    if metrics is not None:
        counters = metrics.get("counters", {})
        if counters:
            table = Table("counter totals", ["counter", "value"])
            for name in sorted(counters):
                table.add_row(name, counters[name])
            sections.append("\n" + table.render())
        gauges = metrics.get("gauges", {})
        if gauges:
            table = Table("gauges (high-water)", ["gauge", "value"])
            for name in sorted(gauges):
                table.add_row(name, gauges[name])
            sections.append("\n" + table.render())
        timers = metrics.get("timers", {})
        if timers:
            table = Table("timers (wall-clock metadata)", ["timer", "count", "total_s"])
            for name in sorted(timers):
                count, total = timers[name]
                table.add_row(name, count, round(total, 4))
            sections.append("\n" + table.render())

    return "\n".join(sections)
