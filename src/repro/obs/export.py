"""Versioned JSONL trace export: schemas ``repro-trace/1`` and ``/2``.

One record per line.  A file is:

1. exactly one ``meta`` header line (first line):
   ``{"type":"meta","schema":"repro-trace/2","label":...,"generated_at":...,
   "meta":{...}}``;
2. any number of ``span`` / ``event`` lines (see
   :mod:`repro.obs.tracer` for field meaning) in record order — spans
   appear at *close* time, so a parent span follows its children;
3. (``/2`` only) optionally one ``paths`` line holding the precomputed
   span-path aggregates (:func:`repro.obs.analyze.aggregate_paths`), so
   path-level consumers — the result store's row telemetry, ``repro
   trace diff`` on stored summaries — need not re-walk the span tree;
4. optionally one trailing ``metrics`` line holding a
   :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.

``/2`` is a strict superset of ``/1``: the only addition is the optional
``paths`` record, so every ``/1`` reader concern applies unchanged and
:func:`read_trace` / :func:`validate_trace` accept both versions (a
``paths`` record inside a file claiming ``/1`` is a schema error).
The writer emits ``/2``.

Everything except ``generated_at``, ``wall_ms`` and timer totals is a
deterministic function of the traced run.  The full schema is documented
in ``docs/observability.md``; ``benchmarks/check_trace_schema.py`` is the
standalone validator CI runs against emitted traces.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

SCHEMA = "repro-trace/1"
SCHEMA_V2 = "repro-trace/2"

#: Schemas validate_trace accepts, oldest first.
SCHEMAS = (SCHEMA, SCHEMA_V2)

_RECORD_TYPES = ("meta", "span", "event", "paths", "metrics")


def _jsonable(value: Any) -> Any:
    """Fallback serializer: sets sort (determinism), everything else reprs."""
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return repr(value)


def trace_records(
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    schema: str = SCHEMA_V2,
    include_paths: bool = True,
) -> List[Dict[str, Any]]:
    """The full record list of a trace file (header + body + metrics).

    ``schema`` picks the emitted version (``SCHEMA_V2`` by default;
    passing ``SCHEMA`` writes a ``/1`` file for compatibility tests).
    ``include_paths`` controls the ``/2`` span-path aggregate record;
    it is never written into a ``/1`` file.
    """
    if schema not in SCHEMAS:
        raise ValueError(f"unknown trace schema {schema!r}")
    header: Dict[str, Any] = {
        "type": "meta",
        "schema": schema,
        "label": tracer.label,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "meta": {**tracer.meta, **(meta or {})},
    }
    records: List[Dict[str, Any]] = [header]
    records.extend(tracer.records)
    if schema == SCHEMA_V2 and include_paths:
        from repro.obs.analyze import aggregate_paths

        paths = aggregate_paths(tracer.records)
        if paths:
            records.append({"type": "paths", "paths": paths})
    if registry is not None:
        records.append({"type": "metrics", **registry.snapshot()})
    return records


def write_trace(
    path: str,
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    schema: str = SCHEMA_V2,
) -> int:
    """Write the trace as JSONL; returns the number of records written."""
    records = trace_records(tracer, registry=registry, meta=meta, schema=schema)
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True, default=_jsonable))
            fh.write("\n")
    return len(records)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into its record list."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_trace(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check parsed records; returns human-readable errors ([] = ok).

    Accepts both ``repro-trace/1`` and ``/2`` and validates the shared
    invariants: header first, known record types, required fields with the
    right types, unique sids, parent/span references that resolve, and
    ``tick_out >= tick_in``.  The ``paths`` record is ``/2``-only (at most
    one; its presence in a ``/1`` file is an error).
    """
    errors: List[str] = []
    if not records:
        return ["empty trace: missing meta header"]
    head = records[0]
    schema = head.get("schema")
    if head.get("type") != "meta":
        errors.append(f"first record must be meta, got {head.get('type')!r}")
    elif schema not in SCHEMAS:
        errors.append(
            f"unsupported schema {schema!r} "
            f"(expected one of {', '.join(repr(s) for s in SCHEMAS)})"
        )
    span_sids = {
        r.get("sid") for r in records if r.get("type") == "span"
    }
    seen_sids: set = set()
    metrics_lines = 0
    paths_lines = 0
    for i, record in enumerate(records[1:], start=2):
        kind = record.get("type")
        where = f"line {i}"
        if kind not in _RECORD_TYPES:
            errors.append(f"{where}: unknown record type {kind!r}")
            continue
        if kind == "meta":
            errors.append(f"{where}: duplicate meta header")
        elif kind == "metrics":
            metrics_lines += 1
            for section in ("counters", "gauges", "timers"):
                if not isinstance(record.get(section), dict):
                    errors.append(f"{where}: metrics.{section} must be a dict")
        elif kind == "paths":
            paths_lines += 1
            if schema == SCHEMA:
                errors.append(
                    f"{where}: paths records need schema {SCHEMA_V2!r} "
                    f"(file claims {SCHEMA!r})"
                )
            if not isinstance(record.get("paths"), dict):
                errors.append(f"{where}: paths.paths must be a dict")
            else:
                for path, agg in record["paths"].items():
                    if not isinstance(agg, dict) or not {
                        "count",
                        "total_ticks",
                        "self_ticks",
                        "wall_ms",
                    } <= set(agg):
                        errors.append(
                            f"{where}: path {path!r} aggregate must carry "
                            f"count/total_ticks/self_ticks/wall_ms"
                        )
        elif kind == "span":
            errors.extend(_check_span(record, where, span_sids, seen_sids))
        elif kind == "event":
            errors.extend(_check_event(record, where, span_sids, seen_sids))
    if metrics_lines > 1:
        errors.append(f"{metrics_lines} metrics records (at most 1 allowed)")
    if paths_lines > 1:
        errors.append(f"{paths_lines} paths records (at most 1 allowed)")
    return errors


def _check_span(record, where, span_sids, seen_sids) -> List[str]:
    errors = []
    sid = record.get("sid")
    if not isinstance(sid, int) or sid < 1:
        errors.append(f"{where}: span sid must be a positive int")
    elif sid in seen_sids:
        errors.append(f"{where}: duplicate sid {sid}")
    else:
        seen_sids.add(sid)
    parent = record.get("parent")
    if parent is not None and parent not in span_sids:
        errors.append(f"{where}: parent {parent!r} is not a span sid")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append(f"{where}: span name must be a non-empty string")
    tick_in, tick_out = record.get("tick_in"), record.get("tick_out")
    if not isinstance(tick_in, int) or not isinstance(tick_out, int):
        errors.append(f"{where}: tick_in/tick_out must be ints")
    elif tick_out < tick_in:
        errors.append(f"{where}: tick_out {tick_out} < tick_in {tick_in}")
    if not isinstance(record.get("attrs"), dict):
        errors.append(f"{where}: span attrs must be a dict")
    if not isinstance(record.get("wall_ms"), (int, float)):
        errors.append(f"{where}: span wall_ms must be a number")
    return errors


def _check_event(record, where, span_sids, seen_sids) -> List[str]:
    errors = []
    sid = record.get("sid")
    if not isinstance(sid, int) or sid < 1:
        errors.append(f"{where}: event sid must be a positive int")
    elif sid in seen_sids:
        errors.append(f"{where}: duplicate sid {sid}")
    else:
        seen_sids.add(sid)
    span = record.get("span")
    if span is not None and span not in span_sids:
        errors.append(f"{where}: event span {span!r} is not a span sid")
    if not isinstance(record.get("name"), str) or not record.get("name"):
        errors.append(f"{where}: event name must be a non-empty string")
    if not isinstance(record.get("tick"), int):
        errors.append(f"{where}: event tick must be an int")
    if not isinstance(record.get("attrs"), dict):
        errors.append(f"{where}: event attrs must be a dict")
    return errors


def environment_stamp(repo_root: Optional[str] = None) -> Dict[str, Any]:
    """Attribution metadata for benchmark/trace files.

    Moved to :func:`repro.harness.envinfo.environment_stamp` (the store,
    the benchmarks and this module share one format); this wrapper stays
    for existing import sites.  Imported lazily to keep ``repro.obs``
    import-light — pulling the harness package in eagerly would drag the
    whole experiment layer into every traced run.
    """
    from repro.harness.envinfo import environment_stamp as _stamp

    return _stamp(repo_root)
