"""Named counters / gauges / timers with cross-process merge.

One :class:`MetricsRegistry` collects all telemetry of a process:

* **counters** — monotonically increasing integers (``inc``); merged by
  summation.  All deterministic search-work accounting (the simulation
  trie's :class:`~repro.core.simtrie.TrieCounters`, the boosting memo, the
  model checker) flows in here via :meth:`absorb`.
* **gauges** — high-water marks (``gauge`` keeps the max ever seen); merged
  by max.  High-water semantics, not last-write, so that per-worker
  snapshots merge to the same value regardless of how a sweep's tasks were
  distributed over processes.
* **timers** — wall-clock accumulators ``(count, total_s)``; merged by
  elementwise sum.  Wall-clock is *metadata*: timers never feed back into
  any semantics and are the only nondeterministic values here.

The merge contract (used by :mod:`repro.harness.parallel`): per-task deltas
(:meth:`delta_since`) merged into a parent registry in task order produce
the same counters and gauges as running every task inline in that parent —
counter sums and gauge maxes commute, so ``--jobs 1`` and ``--jobs N``
sweeps report identical deterministic metrics.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

Snapshot = Dict[str, Dict[str, Any]]


class MetricsRegistry:
    """A process-wide bag of named counters, gauges and timers."""

    __slots__ = ("_counters", "_gauges", "_timers")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, List[float]] = {}  # name -> [count, total_s]

    # -- writing --------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if higher (high-water mark)."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into timer ``name`` (wall-clock; metadata only)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            cell = self._timers.get(name)
            if cell is None:
                cell = self._timers[name] = [0, 0.0]
            cell[0] += 1
            cell[1] += time.perf_counter() - start

    def absorb(self, counters: Optional[Mapping[str, int]], prefix: str = "") -> None:
        """Sum a plain counter dict (e.g. ``search_counters()``) into us."""
        if not counters:
            return
        for key, value in counters.items():
            self.inc(prefix + key, int(value))

    # -- reading --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def snapshot(self) -> Snapshot:
        """A picklable copy of everything recorded so far."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "timers": {k: list(v) for k, v in self._timers.items()},
        }

    def delta_since(self, before: Snapshot) -> Snapshot:
        """What was recorded since ``before`` (an earlier :meth:`snapshot`).

        Counters and timer cells subtract; gauges pass through current
        values (high-water marks merge by max, so no subtraction applies).
        """
        counters_then = before.get("counters", {})
        timers_then = before.get("timers", {})
        counters = {
            k: v - counters_then.get(k, 0)
            for k, v in self._counters.items()
            if v != counters_then.get(k, 0)
        }
        timers = {}
        for k, (count, total) in self._timers.items():
            then = timers_then.get(k, (0, 0.0))
            if count != then[0]:
                timers[k] = [count - then[0], total - then[1]]
        return {
            "counters": counters,
            "gauges": dict(self._gauges),
            "timers": timers,
        }

    # -- merging --------------------------------------------------------

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a snapshot/delta (e.g. from a sweep worker) into us."""
        for k, v in snapshot.get("counters", {}).items():
            self.inc(k, v)
        for k, v in snapshot.get("gauges", {}).items():
            self.gauge(k, v)
        for k, (count, total) in snapshot.get("timers", {}).items():
            cell = self._timers.get(k)
            if cell is None:
                cell = self._timers[k] = [0, 0.0]
            cell[0] += count
            cell[1] += total

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._timers)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )


def merge_snapshots(snapshots: List[Snapshot]) -> Snapshot:
    """Merge snapshots into one (fresh registry, same merge rules)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()
