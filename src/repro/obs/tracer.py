"""Deterministic span/event tracer.

A :class:`Tracer` records a tree of *spans* (named, nested intervals) and
typed *events*, clocked by whatever logical tick the instrumented layer
owns — the live system's step counter, the extraction search's tick, a
sweep's task index — never by wall-clock.  Wall-clock duration is recorded
on spans as *metadata* (``wall_ms``), so two traces of the same seeded run
are identical in every field except that one.

Spans are emitted into the record list when they **close** (their ticks are
only known then); ``sid`` is assigned at open in strictly increasing order,
so the open order is always reconstructible.  Events are emitted
immediately and also consume a ``sid``, giving one total order over all
records.

The module-level pattern for zero-overhead instrumentation lives in
:mod:`repro.obs` (``obs._ENABLED`` flag + :data:`NULL_TRACER`): hot paths
guard on the flag and never construct spans when tracing is off.  The
:class:`NullTracer` exists so unguarded call sites still cost only a no-op
method call.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One open (then closed) named interval.

    ``attrs`` may be amended while the span is open via :meth:`set`; the
    record is written at close time.  ``tick_in``/``tick_out`` come from an
    explicit ``tick=`` argument, the span's own ``clock`` callable, or the
    tracer's ambient clock (innermost enclosing span with a clock), in that
    order of preference.
    """

    __slots__ = ("sid", "parent", "name", "tick_in", "tick_out", "attrs",
                 "_wall0", "_hwm")

    def __init__(self, sid: int, parent: Optional[int], name: str,
                 tick_in: int, attrs: Dict[str, Any]):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.tick_in = tick_in
        self.tick_out = tick_in
        self.attrs = attrs
        self._wall0 = time.perf_counter()
        # High-water tick seen by closed children/events; clock-less spans
        # close at this tick so they span their instrumented contents.
        self._hwm = tick_in

    def set(self, **attrs: Any) -> None:
        """Amend the span's attributes before it closes."""
        self.attrs.update(attrs)


class _SpanContext:
    """Context manager pairing one :class:`Span` with its tracer."""

    __slots__ = ("_tracer", "_span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span,
                 clock: Optional[Callable[[], int]]):
        self._tracer = tracer
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        self._tracer._open(self._span, self._clock)
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._close(self._span, self._clock)
        return False


class Tracer:
    """Collects span/event records for one traced activity.

    ``label`` names the trace as a whole (shown by ``repro trace``);
    ``meta`` is free-form metadata carried into the export header.
    """

    def __init__(self, label: str = "trace", meta: Optional[Dict[str, Any]] = None):
        self.label = label
        self.meta: Dict[str, Any] = dict(meta or {})
        self.records: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._clocks: List[Callable[[], int]] = []
        self._next_sid = 1

    # -- clock ----------------------------------------------------------

    def now(self) -> int:
        """The ambient logical tick (0 when no enclosing span has a clock)."""
        if self._clocks:
            return self._clocks[-1]()
        return 0

    # -- spans ----------------------------------------------------------

    def span(self, name: str, tick: Optional[int] = None,
             clock: Optional[Callable[[], int]] = None,
             **attrs: Any) -> _SpanContext:
        """Open a span as a context manager.

        ``clock`` installs a tick source for the span's duration (and for
        everything nested in it that doesn't bring its own); ``tick`` pins
        the opening tick explicitly.
        """
        sid = self._next_sid
        self._next_sid += 1
        parent = self._stack[-1].sid if self._stack else None
        if tick is None:
            tick = clock() if clock is not None else self.now()
        return _SpanContext(self, Span(sid, parent, name, tick, attrs), clock)

    def _open(self, span: Span, clock: Optional[Callable[[], int]]) -> None:
        self._stack.append(span)
        if clock is not None:
            self._clocks.append(clock)

    def _close(self, span: Span, clock: Optional[Callable[[], int]]) -> None:
        if clock is not None:
            tick_out = clock()
            self._clocks.pop()
        elif self._clocks:
            tick_out = self._clocks[-1]()
        else:
            tick_out = span._hwm
        self._stack.pop()
        span.tick_out = max(span.tick_in, tick_out, span._hwm)
        if self._stack:
            parent = self._stack[-1]
            if span.tick_out > parent._hwm:
                parent._hwm = span.tick_out
        self.records.append({
            "type": "span",
            "sid": span.sid,
            "parent": span.parent,
            "name": span.name,
            "tick_in": span.tick_in,
            "tick_out": span.tick_out,
            "attrs": span.attrs,
            # metadata only: the one nondeterministic field of a trace
            "wall_ms": round((time.perf_counter() - span._wall0) * 1e3, 3),
        })

    # -- events ---------------------------------------------------------

    def event(self, name: str, tick: Optional[int] = None, **attrs: Any) -> None:
        """Record one point event, attached to the innermost open span."""
        sid = self._next_sid
        self._next_sid += 1
        at = tick if tick is not None else self.now()
        if self._stack and at > self._stack[-1]._hwm:
            self._stack[-1]._hwm = at
        self.records.append({
            "type": "event",
            "sid": sid,
            "span": self._stack[-1].sid if self._stack else None,
            "name": name,
            "tick": at,
            "attrs": attrs,
        })

    # -- introspection --------------------------------------------------

    def spans(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["type"] == "span"]

    def events(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["type"] == "event"]


class _NullSpan:
    """Shared no-op stand-in for :class:`Span`; also its own context."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: every operation is a no-op.

    Installed while tracing is disabled so unguarded ``obs.tracer()`` call
    sites stay safe; hot paths should still guard on ``obs._ENABLED`` and
    skip the call entirely.
    """

    label = "null"
    meta: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []

    def now(self) -> int:
        return 0

    def span(self, name: str, tick: Optional[int] = None,
             clock: Optional[Callable[[], int]] = None,
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, tick: Optional[int] = None, **attrs: Any) -> None:
        return None

    def spans(self) -> List[Dict[str, Any]]:
        return []

    def events(self) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()
