"""Trace analytics: span paths, aggregation, diffing, flamegraphs.

:mod:`repro.obs.inspect` renders one trace; this module *answers
questions* about one or two of them.  The unit of analysis is the
**span path** — a span's name prefixed by every ancestor's name,
joined with ``/``::

    exp.exp3/store.execute/runner.extraction/kernel.run

Two traces of the same seeded run have identical paths with identical
tick totals (ticks are logical and deterministic); comparing a pair of
traces per path therefore attributes *exactly* where the work moved.
Wall-clock milliseconds ride along as metadata and are only flagged
when they move beyond a noise tolerance.

Entry points
------------

* :func:`aggregate_paths` — per-path count / tick / wall aggregates;
* :func:`diff_traces` / :func:`render_diff` — noise-aware two-trace
  comparison (logical ticks exact, ``wall_ms`` tolerant), including
  counter deltas from the traces' metrics records;
* :func:`render_flame` — an ASCII flamegraph over the path tree;
* :func:`top_regressions` — the top-N suspect paths of a diff, used by
  ``check_regression.py --attribute`` to name the stage a CI failure
  lives in.

Everything operates on parsed record lists
(:func:`repro.obs.export.read_trace`) and accepts both the
``repro-trace/1`` and ``repro-trace/2`` schemas — paths are recomputed
from the span records, so a ``/1`` file without a precomputed ``paths``
record analyzes identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.tables import Table

#: Default absolute wall-clock tolerance (milliseconds) under which a
#: wall delta is treated as noise.
WALL_TOL_MS = 5.0

#: Default relative wall-clock tolerance: deltas within this fraction of
#: the larger side are noise.  Machine timers jitter far more than 1%,
#: and CI boxes more than dev boxes; 25% keeps the signal honest.
WALL_REL_TOL = 0.25


# ----------------------------------------------------------------------
# Span paths
# ----------------------------------------------------------------------


def span_paths(records: Sequence[Mapping[str, Any]]) -> List[Tuple[str, Mapping[str, Any]]]:
    """``(path, span_record)`` for every span, in record order.

    A span whose parent is missing from the record list (e.g. the parent
    was still open when the trace was sliced) roots its own path.
    """
    spans = [r for r in records if r.get("type") == "span"]
    by_sid = {s["sid"]: s for s in spans}
    cache: Dict[int, str] = {}

    def path_of(span: Mapping[str, Any]) -> str:
        sid = span["sid"]
        known = cache.get(sid)
        if known is not None:
            return known
        parent = span.get("parent")
        parent_span = by_sid.get(parent) if parent is not None else None
        path = (
            f"{path_of(parent_span)}/{span['name']}"
            if parent_span is not None
            else span["name"]
        )
        cache[sid] = path
        return path

    return [(path_of(s), s) for s in spans]


def aggregate_paths(records: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-path aggregates: count, total/self ticks, wall time.

    Self ticks subtract the direct children's totals (clamped at zero —
    siblings may overlap on coarse logical clocks), exactly as
    :func:`repro.obs.inspect.aggregate_spans` does per *name*; here the
    key is the full ancestor path, so the same span name in two sweep
    phases aggregates separately.
    """
    pairs = span_paths(records)
    child_ticks: Dict[int, int] = {}
    for _, span in pairs:
        parent = span.get("parent")
        if parent is not None:
            child_ticks[parent] = child_ticks.get(parent, 0) + (
                span["tick_out"] - span["tick_in"]
            )
    out: Dict[str, Dict[str, Any]] = {}
    for path, span in pairs:
        total = span["tick_out"] - span["tick_in"]
        agg = out.setdefault(
            path,
            {"count": 0, "total_ticks": 0, "self_ticks": 0, "wall_ms": 0.0},
        )
        agg["count"] += 1
        agg["total_ticks"] += total
        agg["self_ticks"] += max(0, total - child_ticks.get(span["sid"], 0))
        agg["wall_ms"] += span.get("wall_ms", 0.0)
    for agg in out.values():
        agg["wall_ms"] = round(agg["wall_ms"], 3)
    return out


def trace_counters(records: Sequence[Mapping[str, Any]]) -> Dict[str, int]:
    """The counter totals of a trace's metrics record ({} if absent)."""
    for record in records:
        if record.get("type") == "metrics":
            counters = record.get("counters", {})
            return dict(counters) if isinstance(counters, dict) else {}
    return {}


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------


@dataclass
class PathDelta:
    """One span path compared across two traces."""

    path: str
    count_a: int
    count_b: int
    ticks_a: int
    ticks_b: int
    self_a: int
    self_b: int
    wall_a: float
    wall_b: float

    @property
    def tick_delta(self) -> int:
        return self.ticks_b - self.ticks_a

    @property
    def self_delta(self) -> int:
        return self.self_b - self.self_a

    @property
    def wall_delta(self) -> float:
        return round(self.wall_b - self.wall_a, 3)

    def wall_significant(
        self, tol_ms: float = WALL_TOL_MS, rel_tol: float = WALL_REL_TOL
    ) -> bool:
        delta = abs(self.wall_b - self.wall_a)
        return delta > max(tol_ms, rel_tol * max(self.wall_a, self.wall_b))

    @property
    def tick_significant(self) -> bool:
        """Logical ticks are exact: any difference is real."""
        return (
            self.tick_delta != 0
            or self.self_delta != 0
            or self.count_a != self.count_b
        )


@dataclass
class TraceDiff:
    """Everything :func:`diff_traces` learned about a pair of traces."""

    label_a: str
    label_b: str
    paths: List[PathDelta] = field(default_factory=list)
    counter_deltas: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    wall_tol_ms: float = WALL_TOL_MS
    wall_rel_tol: float = WALL_REL_TOL

    @property
    def tick_exact(self) -> bool:
        """True when no path shows any logical-tick or count difference."""
        return not any(d.tick_significant for d in self.paths)

    def significant(self) -> List[PathDelta]:
        """Paths with a real (tick) or above-noise (wall) difference."""
        return [
            d
            for d in self.paths
            if d.tick_significant
            or d.wall_significant(self.wall_tol_ms, self.wall_rel_tol)
        ]


def diff_traces(
    a_records: Sequence[Mapping[str, Any]],
    b_records: Sequence[Mapping[str, Any]],
    wall_tol_ms: float = WALL_TOL_MS,
    wall_rel_tol: float = WALL_REL_TOL,
) -> TraceDiff:
    """Compare two parsed traces per span path and per counter.

    Tick totals and span counts compare exactly (they are deterministic
    functions of the traced run); ``wall_ms`` deltas are recorded but
    only deemed significant beyond ``max(wall_tol_ms, wall_rel_tol *
    larger_side)``.
    """

    def _label(records: Sequence[Mapping[str, Any]]) -> str:
        head = records[0] if records and records[0].get("type") == "meta" else {}
        return str(head.get("label", "?"))

    aggs_a = aggregate_paths(a_records)
    aggs_b = aggregate_paths(b_records)
    empty = {"count": 0, "total_ticks": 0, "self_ticks": 0, "wall_ms": 0.0}
    deltas: List[PathDelta] = []
    for path in sorted(set(aggs_a) | set(aggs_b)):
        a = aggs_a.get(path, empty)
        b = aggs_b.get(path, empty)
        deltas.append(
            PathDelta(
                path=path,
                count_a=a["count"],
                count_b=b["count"],
                ticks_a=a["total_ticks"],
                ticks_b=b["total_ticks"],
                self_a=a["self_ticks"],
                self_b=b["self_ticks"],
                wall_a=a["wall_ms"],
                wall_b=b["wall_ms"],
            )
        )
    counters_a = trace_counters(a_records)
    counters_b = trace_counters(b_records)
    counter_deltas = {
        name: (counters_a.get(name, 0), counters_b.get(name, 0))
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    }
    return TraceDiff(
        label_a=_label(a_records),
        label_b=_label(b_records),
        paths=deltas,
        counter_deltas=counter_deltas,
        wall_tol_ms=wall_tol_ms,
        wall_rel_tol=wall_rel_tol,
    )


def top_regressions(diff: TraceDiff, top: int = 8) -> List[PathDelta]:
    """The diff's most suspect paths, worst first.

    Ranked by absolute tick delta first (exact signal), then absolute
    above-noise wall delta; paths with neither are excluded.
    """
    ranked = sorted(
        diff.significant(),
        key=lambda d: (
            -abs(d.tick_delta),
            -abs(d.self_delta),
            -(
                abs(d.wall_delta)
                if d.wall_significant(diff.wall_tol_ms, diff.wall_rel_tol)
                else 0.0
            ),
            d.path,
        ),
    )
    return ranked[:top]


def render_diff(diff: TraceDiff, top: int = 16, show_all: bool = False) -> str:
    """The ``repro trace diff`` report for one :class:`TraceDiff`."""
    sections: List[str] = [
        f"trace A   : {diff.label_a}",
        f"trace B   : {diff.label_b}",
        f"paths     : {len(diff.paths)} compared, "
        f"{len(diff.significant())} differ "
        f"(wall noise floor: {diff.wall_tol_ms}ms / "
        f"{round(100 * diff.wall_rel_tol)}%)",
    ]
    if diff.tick_exact:
        sections.append(
            "ticks     : EXACT — every span path has identical logical-tick "
            "totals and counts"
        )
    rows = diff.paths if show_all else top_regressions(diff, top)
    if rows:
        table = Table(
            f"span-path deltas (top {len(rows)}; B - A)",
            ["path", "count", "d_ticks", "d_self", "d_wall_ms", "signal"],
        )
        for d in rows:
            count = (
                str(d.count_a)
                if d.count_a == d.count_b
                else f"{d.count_a}->{d.count_b}"
            )
            signal = (
                "ticks"
                if d.tick_significant
                else (
                    "wall"
                    if d.wall_significant(diff.wall_tol_ms, diff.wall_rel_tol)
                    else "-"
                )
            )
            table.add_row(
                d.path,
                count,
                f"{d.tick_delta:+d}",
                f"{d.self_delta:+d}",
                f"{d.wall_delta:+.3f}",
                signal,
            )
        sections.append("\n" + table.render())
    if diff.counter_deltas:
        table = Table("counter deltas (B - A)", ["counter", "a", "b", "delta"])
        for name, (a, b) in sorted(
            diff.counter_deltas.items(), key=lambda kv: (-abs(kv[1][1] - kv[1][0]), kv[0])
        )[:top]:
            table.add_row(name, a, b, f"{b - a:+d}")
        sections.append("\n" + table.render())
    return "\n".join(sections)


# ----------------------------------------------------------------------
# Flamegraph
# ----------------------------------------------------------------------


@dataclass
class FlameNode:
    """One node of the aggregated path tree."""

    name: str
    path: str
    ticks: int = 0
    wall_ms: float = 0.0
    count: int = 0
    children: Dict[str, "FlameNode"] = field(default_factory=dict)

    def weight(self, by: str) -> float:
        own = self.ticks if by == "ticks" else self.wall_ms
        return max(own, sum(c.weight(by) for c in self.children.values()))


def flame_tree(records: Sequence[Mapping[str, Any]]) -> FlameNode:
    """Aggregate the spans into one rooted path tree.

    The synthetic root spans every top-level path; its weight is the sum
    of its children's.
    """
    root = FlameNode(name="", path="")
    for path, agg in sorted(aggregate_paths(records).items()):
        node = root
        walked: List[str] = []
        for part in path.split("/"):
            walked.append(part)
            node = node.children.setdefault(
                part, FlameNode(name=part, path="/".join(walked))
            )
        node.ticks += agg["total_ticks"]
        node.wall_ms += agg["wall_ms"]
        node.count += agg["count"]
    return root


def render_flame(
    records: Sequence[Mapping[str, Any]],
    width: int = 56,
    by: Optional[str] = None,
    max_rows: int = 64,
) -> str:
    """An ASCII flamegraph: one row per path, bar scaled to its share.

    ``by`` picks the weight axis: ``"ticks"`` (deterministic, default) or
    ``"wall"``; when every span has zero ticks (pure wall-clock phases)
    the axis auto-falls back to wall time.
    """
    root = flame_tree(records)
    if not root.children:
        return "(no spans)"
    if by is None:
        by = "ticks" if root.weight("ticks") > 0 else "wall"
    axis = "wall" if by == "wall" else "ticks"
    total = root.weight(axis) or 1.0
    lines = [
        f"flame ({axis}; bar = share of {total if axis == 'ticks' else round(total, 1)}"
        f"{' ticks' if axis == 'ticks' else 'ms'})"
    ]
    rows = 0

    def emit(node: FlameNode, depth: int) -> None:
        nonlocal rows
        if rows >= max_rows:
            return
        share = node.weight(axis) / total
        bar = "#" * max(1, round(share * width))
        own = node.ticks if axis == "ticks" else round(node.wall_ms, 1)
        lines.append(
            f"{'  ' * depth}{node.name:<{max(1, 34 - 2 * depth)}} "
            f"{bar:<{width}} {own} x{node.count}"
        )
        rows += 1
        ordered = sorted(
            node.children.values(),
            key=lambda c: (-c.weight(axis), c.name),
        )
        for child in ordered:
            emit(child, depth + 1)

    for child in sorted(
        root.children.values(), key=lambda c: (-c.weight(axis), c.name)
    ):
        emit(child, 0)
    if rows >= max_rows:
        lines.append(f"... (flamegraph truncated at {max_rows} rows)")
    return "\n".join(lines)
