"""Safety checking for register runs.

The ABD emulation carries explicit timestamps, which makes atomicity
checkable directly (the standard timestamp argument):

1. **Read validity** — every read returns a pair ``(ts, v)`` that some
   write actually produced (or the initial pair).
2. **Write timestamp uniqueness** — no two writes share a timestamp
   (counter + writer-id tiebreak).
3. **Real-time order** — if operation ``o1`` responded before ``o2`` was
   invoked, then ``o2``'s effective timestamp is at least ``o1``'s (strictly
   greater when ``o2`` is a write): completed writes are visible to later
   operations, and reads never travel back in time.

Together with the per-replica monotonicity of stored timestamps these are
the conditions whose standard proof gives linearizability of ABD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

Timestamp = Tuple[int, int]

_INITIAL_TS: Timestamp = (0, -1)


@dataclass(frozen=True)
class OperationRecord:
    """One completed register operation."""

    pid: int
    kind: str  # "read" | "write"
    value: Any
    ts: Timestamp
    invoked_at: int
    responded_at: int

    def __repr__(self) -> str:
        return (
            f"{self.kind}@p{self.pid}[{self.invoked_at},{self.responded_at}] "
            f"ts={self.ts} value={self.value!r}"
        )


@dataclass
class RegisterReport:
    """Outcome of checking one register run."""

    ok: bool
    violations: List[str] = field(default_factory=list)
    operations: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAIL: " + "; ".join(self.violations[:2])
        return f"RegisterReport({self.operations} ops, {status})"


def check_register_safety(
    records: Sequence[OperationRecord],
    incomplete_writes: Optional[set] = None,
) -> RegisterReport:
    """Check read validity, write-ts uniqueness and real-time order.

    ``incomplete_writes`` is a set of ``(writer pid, value)`` pairs for
    writes that were invoked but never completed (the client crashed):
    linearizability allows such a write to take effect, so reads returning
    its pair are legal even though no completed record carries it.
    """
    incomplete_writes = incomplete_writes or set()
    report = RegisterReport(ok=True, operations=len(records))
    writes = [r for r in records if r.kind == "write"]
    written = {r.ts: r.value for r in writes}
    written[_INITIAL_TS] = None

    # (1) read validity
    for r in records:
        if r.kind == "read":
            if r.ts not in written:
                writer = r.ts[1]
                if (writer, r.value) not in incomplete_writes:
                    report.ok = False
                    report.violations.append(
                        f"read validity: {r!r} returned a never-written "
                        f"timestamp"
                    )
            elif written[r.ts] != r.value:
                report.ok = False
                report.violations.append(
                    f"read validity: {r!r} returned {r.value!r} but ts "
                    f"{r.ts} wrote {written[r.ts]!r}"
                )

    # (2) write timestamp uniqueness
    seen = {}
    for w in writes:
        if w.ts in seen:
            report.ok = False
            report.violations.append(
                f"uniqueness: writes {seen[w.ts]!r} and {w!r} share ts {w.ts}"
            )
        seen[w.ts] = w

    # (3) real-time order
    for o1 in records:
        for o2 in records:
            if o1 is o2 or o1.responded_at >= o2.invoked_at:
                continue  # overlapping or wrong order: unconstrained
            if o2.kind == "write":
                if not o2.ts > o1.ts:
                    report.ok = False
                    report.violations.append(
                        f"real-time order: {o2!r} follows {o1!r} but its "
                        f"timestamp does not increase"
                    )
            else:
                if not o2.ts >= o1.ts:
                    report.ok = False
                    report.violations.append(
                        f"real-time order: read {o2!r} follows {o1!r} but "
                        f"returned an older timestamp (stale read)"
                    )
    return report
