"""Quorum-replicated registers — the technique the paper contrasts with.

Delporte-Gallet, Fauconnier and Guerraoui [3] proved (Ω, Σ) weakest for
*uniform* consensus via registers: Σ's uniformly intersecting quorums
implement atomic registers (ABD-style), and registers plus Ω give
consensus.  The introduction of our paper highlights exactly why that route
fails for the nonuniform problem: "nonuniform consensus is not strong
enough to implement registers", and neither is Σν — quorums at faulty
processes need not intersect anything, so a write acknowledged by a faulty
client's quorum can be lost entirely.

This package makes both sides executable:

* :class:`RegisterServer` / :class:`RegisterClient` — the ABD emulation
  over a quorum detector (two-phase reads with write-back);
* validity checkers for register runs (:mod:`repro.registers.properties`);
* the Σν counterexample: a run in which a faulty writer's acknowledged
  write is invisible to every later read
  (:func:`repro.registers.counterexample.run_lost_write_scenario`).
"""

from repro.registers.abd import RegisterClient, RegisterServer, RegisterHarness
from repro.registers.counterexample import LostWriteReport, run_lost_write_scenario
from repro.registers.properties import (
    OperationRecord,
    RegisterReport,
    check_register_safety,
)

__all__ = [
    "LostWriteReport",
    "OperationRecord",
    "RegisterClient",
    "RegisterHarness",
    "RegisterReport",
    "RegisterServer",
    "check_register_safety",
    "run_lost_write_scenario",
]
