"""ABD-style quorum-replicated register over a quorum failure detector.

Attiya-Bar-Noy-Dolev emulation, with majorities generalized to the quorums
output by a detector module (re-read at every step, like the consensus
algorithms' waits):

* **write(v)** — query a quorum for timestamps; write ``(max+1, v)`` to a
  quorum (tiebreak by writer id);
* **read()** — query a quorum, pick the largest timestamped pair,
  *write it back* to a quorum, return it.

Every process hosts a *server* (the replica, answering queries and storing
writes — implemented as upon-receipt handlers so it serves within any step)
and a *client* executing a scripted sequence of operations.

With Σ (uniform intersection) the emulation is atomic — any write quorum
intersects any later read quorum.  With Σν the intersection guarantee only
covers correct processes: a *faulty* client's acknowledged write may be
invisible to later readers (see :mod:`repro.registers.counterexample`),
which is exactly why the register route of Delporte et al. cannot carry the
nonuniform result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Sequence, Tuple

from repro.kernel.automaton import DeliveredMessage, Process, ProcessContext
from repro.registers.properties import OperationRecord

RQ = "RQ"  # (RQ, opid)                 query a replica
RRESP = "RRESP"  # (RRESP, opid, ts, value)  replica's answer
WR = "WR"  # (WR, opid, ts, value)     store at a replica
WACK = "WACK"  # (WACK, opid)              store acknowledged

Timestamp = Tuple[int, int]  # (counter, writer pid): totally ordered

_INITIAL_TS: Timestamp = (0, -1)
_INITIAL_VALUE = None


class RegisterServer:
    """The replica role: one register copy, served via message handlers."""

    def __init__(self, ctx: ProcessContext):
        self.ctx = ctx
        self.ts: Timestamp = _INITIAL_TS
        self.value: Any = _INITIAL_VALUE
        ctx.add_handler(self._handle)

    def _handle(self, message: DeliveredMessage) -> bool:
        payload = message.payload
        tag = payload[0]
        if tag == RQ:
            _, opid = payload
            self.ctx.send(message.sender, (RRESP, opid, self.ts, self.value))
            return True
        if tag == WR:
            _, opid, ts, value = payload
            if ts > self.ts:
                self.ts, self.value = ts, value
            self.ctx.send(message.sender, (WACK, opid))
            return True
        return False


class RegisterClient(Process):
    """Executes a script of register operations; records their outcomes.

    ``script`` entries: ``("write", value)`` or ``("read",)``.  The quorum
    used by each wait is the detector's *current* output, re-read each step.
    """

    def __init__(self, script: Sequence[Tuple]):
        self.script = list(script)
        for op in self.script:
            if not op or op[0] not in ("read", "write"):
                raise ValueError(f"unknown register operation {op!r}")
            if op[0] == "write" and len(op) != 2:
                raise ValueError(f"write takes exactly one value: {op!r}")
        self.records: List[OperationRecord] = []
        # invocations, including operations cut short by a crash — the
        # safety checker needs to know which writes *may* have taken effect
        self.attempts: List[Tuple[int, str, Any]] = []

    def program(self, ctx: ProcessContext) -> Generator:
        server = RegisterServer(ctx)  # the replica rides along
        self.server = server
        op_seq = 0

        def matching(tag: str, opid) -> dict:
            found = {}
            for m in ctx.log:
                if m.payload[0] == tag and m.payload[1] == opid:
                    found.setdefault(m.sender, m)
            return found

        def quorum_wait(tag: str, opid):
            """Steps until the current quorum has answered; returns answers.

            Checks before stepping (the caller has already taken the step
            that shipped the request), then steps between re-checks.
            """
            while True:
                quorum = frozenset(ctx.detector_value)
                answers = matching(tag, opid)
                if quorum and quorum <= set(answers):
                    return {q: answers[q] for q in quorum}
                yield from ctx.take_step()

        for kind, *args in self.script:
            op_seq += 1
            opid = (ctx.pid, op_seq)

            # Phase 1: collect timestamps from a quorum.  The operation
            # *invokes* when its queries ship.  Queued sends leave with the
            # step during which they were queued: for any op after the
            # first, that is the same step that completed the previous op
            # (the current time here); for the first op the queue moment
            # precedes every step, so the queries leave with the process's
            # first step.  Recording a later time would fabricate
            # "o1 precedes o2" pairs between genuinely overlapping
            # operations and break the real-time order oracle.
            queued_at = ctx.time
            first_step_pending = ctx.step_count == 0
            ctx.send_to_all((RQ, opid))
            yield from ctx.take_step()
            invoked_at = ctx.time if first_step_pending else queued_at
            self.attempts.append(
                (ctx.pid, kind, args[0] if kind == "write" else None)
            )
            answers = yield from quorum_wait(RRESP, opid)
            best_ts, best_value = max(
                ((m.payload[2], m.payload[3]) for m in answers.values()),
                key=lambda pair: pair[0],
            )

            if kind == "write":
                value = args[0]
                ts: Timestamp = (best_ts[0] + 1, ctx.pid)
            else:  # "read" — the script was validated at construction
                value, ts = best_value, best_ts

            # Phase 2: store (write) / write back (read) to a quorum.
            wr_opid = (ctx.pid, op_seq + 10**6)  # distinct id for phase 2
            ctx.send_to_all((WR, wr_opid, ts, value))
            yield from ctx.take_step()
            yield from quorum_wait(WACK, wr_opid)

            self.records.append(
                OperationRecord(
                    pid=ctx.pid,
                    kind=kind,
                    value=value,
                    ts=ts,
                    invoked_at=invoked_at,
                    responded_at=ctx.time,
                )
            )

        while True:  # script done; keep serving as a replica
            yield from ctx.take_step()


@dataclass
class RegisterHarness:
    """Convenience: run scripted clients under a pattern + quorum history."""

    pattern: Any
    history: Any
    scripts: dict
    seed: int = 0

    def run(self, max_steps: int = 20000, system_kwargs: Optional[dict] = None):
        from repro.kernel.system import System

        processes = {
            p: RegisterClient(self.scripts.get(p, ()))
            for p in range(self.pattern.n)
        }
        system = System(
            processes,
            self.pattern,
            self.history,
            seed=self.seed,
            **(system_kwargs or {}),
        )

        def all_scripts_done(sys: System) -> bool:
            return all(
                len(processes[p].records) >= len(processes[p].script)
                for p in self.pattern.correct
            )

        result = system.run(max_steps=max_steps, stop_when=all_scripts_done)
        records = [r for p in range(self.pattern.n) for r in processes[p].records]
        records.sort(key=lambda r: r.invoked_at)
        return result, records, processes

    @staticmethod
    def incomplete_writes(processes) -> set:
        """(pid, value) of writes invoked but never completed (crash-cut)."""
        incomplete = set()
        for p, proc in processes.items():
            completed = {
                (r.pid, r.value) for r in proc.records if r.kind == "write"
            }
            for pid, kind, value in proc.attempts:
                if kind == "write" and (pid, value) not in completed:
                    incomplete.add((pid, value))
        return incomplete
