"""Why Σν cannot implement registers: the lost-write scenario.

The introduction of the paper pinpoints why the Delporte et al. route
(uniform consensus ⇒ registers) cannot carry the nonuniform result:
nonuniform consensus — and Σν — are "not strong enough to implement
registers".  This module exhibits the failure concretely on the ABD
emulation:

* process 0 is a *faulty* writer whose Σν module outputs the private quorum
  ``{0}`` (legal: faulty quorums are unconstrained);
* its write completes — acknowledged by its own replica — while its
  messages to the correct replicas are still in flight;
* process 1 then reads through the correct quorum ``{1, 2}``, which does
  not intersect ``{0}``: the read returns the *old* value although the
  write completed strictly before it — an atomicity violation.

Under Σ the same setup is impossible: the writer's quorum must intersect
every reader's quorum, so the write cannot complete without reaching a
replica every reader consults — the scenario's control arm shows the write
simply blocks.  Reliable links still deliver the in-flight writes
eventually, so the value is not destroyed — it is the *ordering* guarantee
of a register that is irrecoverably lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.detectors.base import FunctionalHistory
from repro.detectors.checkers import CheckResult, check_sigma, check_sigma_nu
from repro.kernel.failures import DeferredCrashPattern, FailurePattern
from repro.kernel.messages import BlockingPolicy, FairRandomDelivery
from repro.kernel.scheduler import RoundRobinScheduler, ScriptedScheduler
from repro.kernel.system import System
from repro.registers.abd import RegisterClient
from repro.registers.properties import (
    OperationRecord,
    RegisterReport,
    check_register_safety,
)


@dataclass
class LostWriteReport:
    """What the scenario produced."""

    write: Optional[OperationRecord]
    stale_read: Optional[OperationRecord]
    safety: RegisterReport
    violated: bool
    sigma_nu_check: CheckResult
    sigma_check: CheckResult
    eventually_visible: bool
    crash_time: Optional[int]

    def __repr__(self) -> str:
        status = "LOST-WRITE ANOMALY" if self.violated else "no anomaly"
        return f"LostWriteReport({status}, write={self.write!r}, read={self.stale_read!r})"


def _history(uniform: bool) -> FunctionalHistory:
    """Quorum detector: {0} at the writer (Σν arm) or {0,1} (Σ arm)."""

    def value(p: int, t: int):
        if p == 0:
            return frozenset({0}) if not uniform else frozenset({0, 1})
        return frozenset({1, 2})

    return FunctionalHistory(value)


def run_lost_write_scenario(seed: int = 0, max_steps: int = 8000) -> LostWriteReport:
    """Drive the Σν lost-write run and validate every moving part."""
    pattern = DeferredCrashPattern(3, doomed=[0])
    history = _history(uniform=False)
    blocking = BlockingPolicy(
        inner=FairRandomDelivery(),
        blocked=lambda m: m.sender == 0 and m.dest != 0,
    )
    processes = {
        0: RegisterClient([("write", "poison")]),
        1: RegisterClient([("read",)]),
        2: RegisterClient([]),
    }
    scheduler = ScriptedScheduler([0] * max_steps, fallback=RoundRobinScheduler())
    system = System(
        processes,
        pattern,
        history,
        scheduler=scheduler,
        delivery=blocking,
        seed=seed,
    )

    # Phase 1: only the writer steps; its private quorum {0} acknowledges.
    crash_time: Optional[int] = None
    for _ in range(max_steps):
        if processes[0].records:
            crash_time = system.time
            pattern.trigger([0], crash_time)
            break
        if system.step() is None:
            break

    # Phase 2: the correct processes run; process 1 reads through {1, 2}.
    for _ in range(max_steps):
        if processes[1].records:
            break
        if system.step() is None:
            break

    # Phase 3: open the links (reliability) and let the system settle.
    blocking.release(system.time)
    for _ in range(600):
        system.step()

    write = processes[0].records[0] if processes[0].records else None
    read = processes[1].records[0] if processes[1].records else None
    records = [r for r in (write, read) if r is not None]
    safety = check_register_safety(records)
    violated = (
        write is not None
        and read is not None
        and write.responded_at < read.invoked_at
        and read.ts < write.ts
        and not safety.ok
    )

    horizon = max(0, system.time - 1)
    frozen = pattern.freeze(horizon)
    sigma_nu_check = check_sigma_nu(history, frozen, horizon)
    sigma_check = check_sigma(history, frozen, horizon)

    visible = all(
        processes[p].server.ts >= (write.ts if write else (0, -1))
        for p in (1, 2)
    )

    return LostWriteReport(
        write=write,
        stale_read=read,
        safety=safety,
        violated=violated,
        sigma_nu_check=sigma_nu_check,
        sigma_check=sigma_check,
        eventually_visible=visible,
        crash_time=crash_time,
    )


def run_sigma_control_arm(seed: int = 0, isolation_steps: int = 2000) -> bool:
    """The Σ control: with an intersecting writer quorum ``{0, 1}``, the
    isolated writer cannot complete its write at all.  Returns True when the
    write is still pending after the isolation phase (the expected outcome).
    """
    pattern = FailurePattern(3, {})
    history = _history(uniform=True)
    blocking = BlockingPolicy(
        inner=FairRandomDelivery(),
        blocked=lambda m: m.sender == 0 and m.dest != 0,
    )
    processes = {
        0: RegisterClient([("write", "poison")]),
        1: RegisterClient([]),
        2: RegisterClient([]),
    }
    scheduler = ScriptedScheduler([0] * isolation_steps, fallback=RoundRobinScheduler())
    system = System(
        processes, pattern, history, scheduler=scheduler,
        delivery=blocking, seed=seed,
    )
    for _ in range(isolation_steps):
        system.step()
    return not processes[0].records
