"""The fuzz-case space: seeded draws with JSON-serializable specs.

A :class:`FuzzCase` is everything the kernel needs to execute one run —
failure pattern, proposals (or register scripts), scheduler spec, delivery
spec, step budget and the run seed — drawn deterministically from a single
``random.Random``.  Specs are plain tuples/lists of primitives so a case can
be embedded verbatim in a ``repro-counterexample/1`` artifact and rebuilt.

Scheduler and delivery *instances* are stateful (cursors, aging bounds), so
they are built fresh from their specs for every execution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

# The spec vocabulary is owned by the batched kernel (whose capability
# probe must understand every spec the fuzzer can draw); re-exported here
# because fuzz artifacts and the shrinker historically import it from the
# case space.
from repro.kernel.batch import build_delivery, build_scheduler
from repro.kernel.failures import FailurePattern


@dataclass(frozen=True)
class FuzzCase:
    """One point of the fuzz space; a pure function of the draw seed."""

    config: str
    index: int
    seed: int
    n: int
    crash_times: Tuple[Tuple[int, int], ...]  # sorted (pid, time) pairs
    proposals: Tuple[Tuple[int, Any], ...]  # sorted (pid, value) pairs
    scheduler: Tuple[Any, ...]
    delivery: Tuple[Any, ...]
    max_steps: int

    def pattern(self) -> FailurePattern:
        return FailurePattern(self.n, dict(self.crash_times))

    def proposal_map(self) -> Dict[int, Any]:
        return dict(self.proposals)

    def to_json(self) -> Dict[str, Any]:
        return {
            "config": self.config,
            "index": self.index,
            "seed": self.seed,
            "n": self.n,
            "crash_times": [list(ct) for ct in self.crash_times],
            "proposals": [
                [p, _spec_to_json(v) if isinstance(v, tuple) else v]
                for p, v in self.proposals
            ],
            "scheduler": _spec_to_json(self.scheduler),
            "delivery": _spec_to_json(self.delivery),
            "max_steps": self.max_steps,
        }

    def run_seed(self) -> int:
        """The kernel seed of this case's execution (pure in seed/index)."""
        return (self.seed * 1_000_003 + self.index) & 0x7FFFFFFF

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "FuzzCase":
        return FuzzCase(
            config=data["config"],
            index=data["index"],
            seed=data["seed"],
            n=data["n"],
            crash_times=tuple(
                (int(p), int(t)) for p, t in data["crash_times"]
            ),
            proposals=tuple(
                (int(p), _spec_from_json(v) if isinstance(v, list) else v)
                for p, v in data["proposals"]
            ),
            scheduler=_spec_from_json(data["scheduler"]),
            delivery=_spec_from_json(data["delivery"]),
            max_steps=data["max_steps"],
        )


def _spec_to_json(spec: Sequence[Any]) -> List[Any]:
    return [
        _spec_to_json(part) if isinstance(part, (tuple, list)) else part
        for part in spec
    ]


def _spec_from_json(data: Sequence[Any]) -> Tuple[Any, ...]:
    return tuple(
        _spec_from_json(part) if isinstance(part, list) else part
        for part in data
    )


# ----------------------------------------------------------------------
# Spec draws
# ----------------------------------------------------------------------


def _draw_scheduler_spec(rng: random.Random, n: int) -> Tuple[Any, ...]:
    roll = rng.random()
    if roll < 0.2:
        return ("round-robin",)
    if roll < 0.7:
        return ("random-fair", rng.choice((8, 16, 32, 64)))
    # Adversarially-skewed weights: some processes step much more often.
    weights = tuple(
        (p, rng.choice((0.05, 0.3, 1.0, 4.0, 20.0))) for p in range(n)
    )
    return ("weighted", weights, rng.choice((32, 64, 128)))


def _draw_delivery_spec(rng: random.Random) -> Tuple[Any, ...]:
    roll = rng.random()
    if roll < 0.55:
        return (
            "fair-random",
            round(rng.uniform(0.15, 0.9), 3),
            rng.choice((15, 40, 80)),
        )
    if roll < 0.85:
        return (
            "per-sender-fifo",
            round(rng.uniform(0.15, 0.8), 3),
            rng.choice((20, 60)),
        )
    return ("oldest-first",)


def _draw_crashes(
    rng: random.Random,
    n: int,
    min_faulty: int,
    max_faulty: int,
    max_crash_time: int,
) -> Tuple[Tuple[int, int], ...]:
    count = rng.randint(min_faulty, max_faulty)
    crashed = sorted(rng.sample(sorted(range(n)), count))
    return tuple((p, rng.randint(0, max_crash_time)) for p in crashed)


#: Recognized proposal styles; each is a deterministic function of the draw
#: RNG and the failure pattern.
PROPOSAL_STYLES = ("binary", "split-halves", "register", "smr")


def _draw_proposals(
    rng: random.Random,
    pattern: FailurePattern,
    style: str,
    values: Sequence[Any],
) -> Tuple[Tuple[int, Any], ...]:
    """Per-process payloads: proposals, register scripts or SMR commands.

    * ``binary`` — one value per process, drawn from ``values``;
    * ``split-halves`` — the sorted correct set is split in two (matching
      :meth:`repro.chaos.injectors.SplitQuorums.halves`); the first half
      proposes ``values[0]``, the second ``values[1]`` — the Theorem 7.1
      corner in which non-intersecting quorums can decide differently;
    * ``register`` — a short script of ``("write", v)`` / ``("read",)``
      operations per process, write values unique per writer;
    * ``smr`` — a tuple of ``("append", pid, k)`` commands per process.
    """
    n = pattern.n
    if style == "binary":
        return tuple((p, rng.choice(list(values))) for p in range(n))
    if style == "split-halves":
        correct = sorted(pattern.correct)
        mid = (len(correct) + 1) // 2
        first = frozenset(correct[:mid])
        pool = list(values)
        return tuple(
            (
                p,
                pool[0]
                if p in first
                else pool[1 % len(pool)]
                if p in pattern.correct
                else rng.choice(pool),
            )
            for p in range(n)
        )
    if style == "register":
        # Several ops per client: later operations are invoked after earlier
        # ones respond, creating the real-time (non-overlapping) pairs the
        # register safety checker's order clause needs.
        proposals = []
        for p in range(n):
            ops: List[Any] = []
            for k in range(rng.randint(2, 4)):
                if rng.random() < 0.55:
                    ops.append(("write", p * 100 + k))
                else:
                    ops.append(("read",))
            proposals.append((p, tuple(ops)))
        return tuple(proposals)
    if style == "smr":
        return tuple(
            (
                p,
                tuple(
                    ("append", p, k) for k in range(rng.randint(1, 2))
                ),
            )
            for p in range(n)
        )
    raise ValueError(f"unknown proposal style {style!r}")


def draw_case(
    config: str,
    seed: int,
    index: int,
    ns: Sequence[int],
    max_steps: int,
    min_faulty: int = 0,
    max_faulty: Optional[int] = None,
    min_correct: int = 1,
    majority_correct: bool = False,
    max_crash_time: int = 40,
    values: Sequence[Any] = (0, 1),
    proposal_style: str = "binary",
) -> FuzzCase:
    """Draw one fuzz case; deterministic in ``(config, seed, index)``."""
    rng = random.Random(f"chaos/{config}/{seed}/{index}")
    n = rng.choice(list(ns))
    bound = n - min_correct if max_faulty is None else min(max_faulty, n - min_correct)
    if majority_correct:
        bound = min(bound, (n - 1) // 2)
    bound = max(bound, min_faulty)
    crash_times = _draw_crashes(rng, n, min_faulty, bound, max_crash_time)
    pattern = FailurePattern(n, dict(crash_times))
    proposals = _draw_proposals(rng, pattern, proposal_style, values)
    return FuzzCase(
        config=config,
        index=index,
        seed=seed,
        n=n,
        crash_times=crash_times,
        proposals=proposals,
        scheduler=_draw_scheduler_spec(rng, n),
        delivery=_draw_delivery_spec(rng),
        max_steps=max_steps,
    )


#: The case dimensions a mutation may re-draw, in a fixed order so the
#: mutation stream is deterministic.
MUTATION_DIMENSIONS = ("scheduler", "delivery", "crashes", "proposals")


def mutate_case(
    case: FuzzCase,
    rng: random.Random,
    index: int,
    min_faulty: int = 0,
    max_faulty: Optional[int] = None,
    min_correct: int = 1,
    majority_correct: bool = False,
    max_crash_time: int = 40,
    values: Sequence[Any] = (0, 1),
    proposal_style: str = "binary",
) -> FuzzCase:
    """Re-draw one dimension of ``case`` (coverage-guided neighborhood)."""
    dimension = rng.choice(MUTATION_DIMENSIONS)
    n = case.n
    scheduler = case.scheduler
    delivery = case.delivery
    crash_times = case.crash_times
    proposals = case.proposals
    if dimension == "scheduler":
        scheduler = _draw_scheduler_spec(rng, n)
    elif dimension == "delivery":
        delivery = _draw_delivery_spec(rng)
    elif dimension == "crashes":
        bound = (
            n - min_correct if max_faulty is None else min(max_faulty, n - min_correct)
        )
        if majority_correct:
            bound = min(bound, (n - 1) // 2)
        bound = max(bound, min_faulty)
        crash_times = _draw_crashes(rng, n, min_faulty, bound, max_crash_time)
        if proposal_style == "split-halves":
            # The half split depends on the correct set; re-derive so the
            # proposals keep targeting the Theorem 7.1 corner.
            pattern = FailurePattern(n, dict(crash_times))
            proposals = _draw_proposals(rng, pattern, proposal_style, values)
    else:
        pattern = FailurePattern(n, dict(case.crash_times))
        proposals = _draw_proposals(rng, pattern, proposal_style, values)
    return FuzzCase(
        config=case.config,
        index=index,
        seed=case.seed,
        n=n,
        crash_times=crash_times,
        proposals=proposals,
        scheduler=scheduler,
        delivery=delivery,
        max_steps=case.max_steps,
    )
