"""Adversarial fault injection and schedule fuzzing (``repro.chaos``).

The paper's theorems are two-sided: (Omega, Sigma^nu) *suffices* for
nonuniform consensus, and each hypothesis is *necessary*.  This package turns
the necessity side into executable negative tests:

* :mod:`repro.chaos.injectors` — composable detector wrappers, each violating
  exactly one hypothesis (Omega stabilization, Omega leader correctness,
  Sigma^nu intersection at correct processes, Sigma^nu+ conditional
  nonintersection, <>P completeness/accuracy) and declaring which paper
  property it breaks;
* :mod:`repro.chaos.space` — the fuzz-case space: seeded draws over crash
  patterns x schedulers x delivery policies x detector histories, with
  JSON-serializable specs so any case can be replayed;
* :mod:`repro.chaos.fuzzer` — a coverage-guided random explorer driving the
  consensus / register / SMR property checkers and the detector hypothesis
  checkers as oracles, fully deterministic per ``(config, seed)``;
* :mod:`repro.chaos.shrinker` — delta-debugs a violating run to a locally
  minimal schedule prefix replayable through ``ScriptedScheduler``;
* :mod:`repro.chaos.artifact` — the versioned ``repro-counterexample/1``
  JSON format plus save / load / replay;
* :mod:`repro.chaos.matrix` — the injection-matrix runner behind
  ``python -m repro chaos``: asserts each injector flips *only* its declared
  property and that honest detectors fuzz clean.
"""

from repro.chaos.artifact import (
    COUNTEREXAMPLE_SCHEMA,
    load_counterexample,
    replay_counterexample,
    save_counterexample,
)
from repro.chaos.fuzzer import FuzzReport, Violation, fuzz_config
from repro.chaos.injectors import (
    BlindSuspector,
    CrashedLeaderOmega,
    FaultInjector,
    NeverStabilizingOmega,
    ParanoidSuspector,
    SplitQuorums,
    TrustedUnionLiar,
)
from repro.chaos.matrix import (
    CONFIGS,
    ChaosConfig,
    MatrixVerdict,
    run_matrix,
)
from repro.chaos.shrinker import ShrinkResult, shrink_schedule
from repro.chaos.space import FuzzCase, build_delivery, build_scheduler, draw_case

__all__ = [
    "COUNTEREXAMPLE_SCHEMA",
    "CONFIGS",
    "BlindSuspector",
    "ChaosConfig",
    "CrashedLeaderOmega",
    "FaultInjector",
    "FuzzCase",
    "FuzzReport",
    "MatrixVerdict",
    "NeverStabilizingOmega",
    "ParanoidSuspector",
    "ShrinkResult",
    "SplitQuorums",
    "TrustedUnionLiar",
    "Violation",
    "build_delivery",
    "build_scheduler",
    "draw_case",
    "fuzz_config",
    "load_counterexample",
    "replay_counterexample",
    "run_matrix",
    "save_counterexample",
    "shrink_schedule",
]
