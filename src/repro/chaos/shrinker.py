"""Delta-debugging shrinker: violating runs → minimal scheduling prefixes.

A violating fuzz case is first re-executed under ``trace="full"`` to extract
the exact pid step schedule.  Replaying that schedule through a
:class:`~repro.kernel.scheduler.ScriptedScheduler` with the same kernel seed
is bit-identical to the original run: delivery randomness lives in
per-destination streams that are consumed in step order, so a run is a pure
function of (seed, pid schedule) — the scheduler's own RNG stream is
irrelevant.  That soundness property is what makes schedule-level shrinking
(and artifact replay) possible at all, and ``tests/chaos`` pins it.

Shrinking then minimizes the *script*:

* **safety targets** (agreement, validity, register/smr safety) — the run is
  capped at the script length, so the question is "what is the shortest
  event prefix that already contains the contradiction?".  A binary search
  finds the minimal violating prefix length, then classic ddmin
  [Zeller/Hildebrandt 2002] deletes interior steps, then a 1-minimality
  pass certifies that removing any single remaining step loses the
  violation.  Safety violations are monotone under run extension (decisions
  and operation records are permanent), so prefix-capping is sound.
* **termination targets** — any truncation trivially "violates termination",
  so instead the scripted prefix is followed by the case's original
  scheduler for the full step budget and the predicate asks whether the
  algorithm *still* fails to terminate.  This legitimately shrinks toward
  the empty script when the detector lie alone (not the schedule) causes
  non-termination — which is itself the interesting diagnosis.

Every candidate evaluation is a fresh deterministic kernel run; the whole
shrink is a pure function of the input case.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.chaos.fuzzer import CaseOutcome, ChaosConfig, execute_case
from repro.chaos.space import FuzzCase
from repro import obs as _obs

#: Properties whose violations persist under run extension.
SAFETY_PROPERTIES = frozenset(
    {
        "nonuniform agreement",
        "uniform agreement",
        "validity",
        "register safety",
        "smr safety",
    }
)


@dataclass(frozen=True)
class ShrinkResult:
    """A locally-minimal scripted reproduction of one violation."""

    config: str
    property: str
    case: FuzzCase  # the shrunk, scripted case (replayable as-is)
    original_case: FuzzCase
    original_schedule_len: int
    script: Tuple[int, ...]
    evaluations: int
    message: str
    one_minimal: bool

    def __repr__(self) -> str:
        return (
            f"ShrinkResult({self.config}: {self.property}, "
            f"{self.original_schedule_len} -> {len(self.script)} steps, "
            f"{self.evaluations} evals, 1-minimal={self.one_minimal})"
        )


def scripted_case(
    case: FuzzCase, script: Sequence[int], max_steps: Optional[int] = None
) -> FuzzCase:
    """``case`` with its scheduler replaced by a scripted replay.

    The original scheduler spec becomes the fallback so termination-style
    replays keep the original environment after the script runs out.
    """
    return replace(
        case,
        scheduler=("scripted", tuple(script), case.scheduler),
        max_steps=case.max_steps if max_steps is None else max_steps,
    )


def _violates(
    config: ChaosConfig,
    case: FuzzCase,
    script: Sequence[int],
    prop: str,
    safety: bool,
) -> bool:
    candidate = scripted_case(
        case,
        script,
        max_steps=max(len(script), 1) if safety else case.max_steps,
    )
    outcome = execute_case(config, candidate)
    return any(v.property == prop for v in outcome.violations)


def _ddmin(
    test,
    script: List[int],
    max_evaluations: int,
) -> Tuple[List[int], int, bool]:
    """Classic ddmin + a final 1-minimality certification pass.

    Returns ``(minimal script, evaluations used, certified 1-minimal)``.
    ``test`` must already hold on ``script``.
    """
    evals = 0
    granularity = 2
    while len(script) >= 2 and evals < max_evaluations:
        chunk = max(1, len(script) // granularity)
        reduced = False
        start = 0
        while start < len(script) and evals < max_evaluations:
            complement = script[:start] + script[start + chunk :]
            evals += 1
            if complement and test(complement):
                script = complement
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(script):
                break
            granularity = min(granularity * 2, len(script))

    # 1-minimality: no single remaining step is removable.
    certified = True
    i = 0
    while i < len(script):
        if evals >= max_evaluations:
            certified = False
            break
        candidate = script[:i] + script[i + 1 :]
        evals += 1
        if candidate and test(candidate):
            script = candidate
        else:
            i += 1
    return script, evals, certified


def shrink_schedule(
    config: ChaosConfig,
    case: FuzzCase,
    prop: str,
    max_evaluations: int = 400,
) -> Optional[ShrinkResult]:
    """Shrink ``case`` to a minimal scripted reproduction of ``prop``.

    Returns ``None`` if re-executing the case does not reproduce the
    violation (which would indicate a determinism bug — the chaos tests
    assert it never happens).
    """
    full = execute_case(config, case, trace="full")
    if not any(v.property == prop for v in full.violations):
        return None
    evals = 1
    schedule = list(full.schedule)
    safety = prop in SAFETY_PROPERTIES

    def test(script: Sequence[int]) -> bool:
        return _violates(config, case, script, prop, safety)

    if safety:
        # Binary-search the minimal violating prefix before ddmin: safety
        # violations are monotone in the prefix length, and this collapses
        # a 30k-step schedule to the interesting region in ~15 runs.
        lo, hi = 1, len(schedule)
        while lo < hi and evals < max_evaluations:
            mid = (lo + hi) // 2
            evals += 1
            if test(schedule[:mid]):
                hi = mid
            else:
                lo = mid + 1
        schedule = schedule[:hi]
    else:
        # Termination: try the empty script first — if the lie alone blocks
        # termination under the original environment, that is the answer.
        evals += 1
        if test(()):
            schedule = []

    one_minimal = True
    if schedule:
        schedule, used, one_minimal = _ddmin(
            test, schedule, max_evaluations - evals
        )
        evals += used

    final = scripted_case(
        case,
        schedule,
        max_steps=max(len(schedule), 1) if safety else case.max_steps,
    )
    outcome = execute_case(config, final)
    violation = next(v for v in outcome.violations if v.property == prop)
    if _obs._ENABLED:
        _obs.metrics().inc("chaos.shrinks")
        _obs.metrics().inc("chaos.shrink_evals", evals)
    return ShrinkResult(
        config=config.name,
        property=prop,
        case=final,
        original_case=case,
        original_schedule_len=len(full.schedule),
        script=tuple(schedule),
        evaluations=evals,
        message=violation.message,
        one_minimal=one_minimal,
    )
