"""Coverage-guided schedule fuzzer driving property checkers as oracles.

One :class:`ChaosConfig` names a (algorithm, detector, environment) triple
plus the properties its runs are *expected* to violate (empty for honest
detectors).  :func:`fuzz_config` explores the case space of
:mod:`repro.chaos.space` under a total kernel-step budget, executing every
case through the live kernel and judging the finished run with the
repository's independent property checkers:

* ``consensus`` runs — :func:`repro.consensus.properties.check_nonuniform_consensus`
  / ``check_uniform_consensus``;
* ``register`` runs — :func:`repro.registers.properties.check_register_safety`;
* ``smr`` runs — :func:`repro.smr.properties.check_smr`.

Coverage guidance is a corpus of cases whose runs produced a previously
unseen *signature* (stop reason, decision spread, violated properties, step
bucket); half of the draws mutate a corpus case, the rest explore fresh.
Everything is a pure function of ``(config, seed)`` — reruns are
bit-identical, which ``benchmarks/check_determinism.py --chaos`` gates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.chaos.space import FuzzCase, build_delivery, build_scheduler, draw_case, mutate_case
from repro.consensus.interface import consensus_outcome
from repro.consensus.properties import (
    check_nonuniform_consensus,
    check_uniform_consensus,
)
from repro.detectors.base import FailureDetector, sample_history_cached
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.system import RunResult, System
from repro import obs as _obs

#: The run-property vocabulary (the ``property`` field of a violation).
PROPERTIES = (
    "termination",
    "nonuniform agreement",
    "uniform agreement",
    "validity",
    "register safety",
    "smr safety",
)


@dataclass(frozen=True)
class Violation:
    """One property violation exhibited by one executed fuzz case."""

    config: str
    property: str
    message: str
    case: FuzzCase
    steps: int

    def __repr__(self) -> str:
        return (
            f"Violation({self.config}: {self.property} @ case "
            f"{self.case.index}, {self.steps} steps)"
        )


@dataclass(frozen=True)
class ChaosConfig:
    """One fuzzable scenario: algorithm + detector + environment + oracle.

    ``detector`` (and ``honest``, its uninjected counterpart) are
    module-level zero-argument factories so configs stay picklable for the
    parallel sweep driver.  ``expected`` is the set of run properties the
    injected lie may break — the matrix asserts the fuzzer finds the
    ``primary`` one and nothing outside ``expected``.  Honest configs have
    ``expected == frozenset()`` and must exhaust their budget clean.
    """

    name: str
    kind: str  # "consensus" | "register" | "smr"
    algorithm: str  # "anuc" | "ct" | "naive-sigma-nu" | "abd" | "replicated-log"
    detector: Callable[[], FailureDetector]
    honest: Optional[Callable[[], FailureDetector]] = None
    injector: Optional[type] = None
    expected: FrozenSet[str] = frozenset()
    primary: Optional[str] = None
    case_kwargs: Tuple[Tuple[str, Any], ...] = ()
    max_steps: int = 30000
    budget: int = 150_000
    description: str = ""

    def draw_kwargs(self) -> Dict[str, Any]:
        return dict(self.case_kwargs)

    def mutate_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.case_kwargs)
        kwargs.pop("ns", None)
        return kwargs


@dataclass(frozen=True)
class CaseOutcome:
    """One executed fuzz case: its violations and coverage signature."""

    case: FuzzCase
    violations: Tuple[Violation, ...]
    steps: int
    signature: Tuple[Any, ...]
    schedule: Tuple[int, ...] = ()  # pid step order; only under trace="full"


@dataclass
class FuzzReport:
    """Outcome of one budgeted fuzz run over a config."""

    config: str
    seed: int
    budget: int
    cases: int = 0
    steps: int = 0
    corpus_size: int = 0
    exhausted: bool = False
    violations: List[Violation] = field(default_factory=list)

    @property
    def found(self) -> FrozenSet[str]:
        return frozenset(v.property for v in self.violations)

    def first(self, prop: Optional[str] = None) -> Optional[Violation]:
        for v in self.violations:
            if prop is None or v.property == prop:
                return v
        return None

    def __repr__(self) -> str:
        status = (
            "clean" if not self.violations else f"{len(self.violations)} violation(s)"
        )
        return (
            f"FuzzReport({self.config}/seed={self.seed}: {self.cases} cases, "
            f"{self.steps} steps, {status})"
        )


# ----------------------------------------------------------------------
# Case execution
# ----------------------------------------------------------------------


def _consensus_processes(config: ChaosConfig, case: FuzzCase):
    proposals = case.proposal_map()
    if config.algorithm == "anuc":
        from repro.core.nuc import AnucProcess

        return {p: AnucProcess(proposals[p]) for p in range(case.n)}
    if config.algorithm == "ct":
        from repro.consensus.chandra_toueg import ChandraTouegS

        automaton = ChandraTouegS()
    elif config.algorithm == "naive-sigma-nu":
        from repro.consensus.quorum_mr import NaiveSigmaNuConsensus

        automaton = NaiveSigmaNuConsensus()
    elif config.algorithm == "quorum-mr":
        from repro.consensus.quorum_mr import QuorumMR

        automaton = QuorumMR()
    else:
        raise ValueError(f"unknown consensus algorithm {config.algorithm!r}")
    return {
        p: AutomatonProcess(automaton, proposals[p]) for p in range(case.n)
    }


def _classify(report_violations: Sequence[str], config: str, case: FuzzCase, steps: int):
    """Map checker violation strings (``"<property>: detail"``) to records."""
    out = []
    for message in report_violations:
        prop = message.split(":", 1)[0].strip()
        out.append(
            Violation(
                config=config, property=prop, message=message, case=case, steps=steps
            )
        )
    return out


def _judge_consensus(
    config: ChaosConfig, case: FuzzCase, result: RunResult, trace: str
) -> CaseOutcome:
    """Judge a finished consensus run — pure in ``(config, case, result)``,
    so a bit-identical batch-lane result yields an identical outcome."""
    proposals = case.proposal_map()
    outcome = consensus_outcome(result, proposals)
    nonuniform = check_nonuniform_consensus(outcome)
    uniform = check_uniform_consensus(outcome, require_termination=False)
    violations = _classify(
        list(nonuniform.violations)
        + [m for m in uniform.violations if m.startswith("uniform agreement")],
        config.name,
        case,
        result.total_steps,
    )
    return _outcome(case, result, violations, trace)


def _execute_consensus(
    config: ChaosConfig, case: FuzzCase, trace: str
) -> CaseOutcome:
    pattern = case.pattern()
    detector = config.detector()
    history = sample_history_cached(detector, pattern, case.run_seed())
    system = System(
        _consensus_processes(config, case),
        pattern,
        history,
        seed=case.run_seed(),
        scheduler=build_scheduler(case.scheduler),
        delivery=build_delivery(case.delivery),
        trace=trace,
    )
    result = system.run(
        max_steps=case.max_steps, stop_when=lambda s: s.all_correct_decided()
    )
    return _judge_consensus(config, case, result, trace)


def _consensus_lane_spec(config: ChaosConfig, case: FuzzCase, trace: str):
    """The batch lane reproducing ``_execute_consensus``'s kernel run.

    Automaton algorithms become fast-path candidates; A_nuc's coroutine
    processes ride along as an interpreted fallback lane (same results, no
    speedup), so a whole consensus wave drains through one BatchSystem.
    """
    from repro.kernel.batch import LaneSpec

    pattern = case.pattern()
    history = sample_history_cached(config.detector(), pattern, case.run_seed())
    common = dict(
        pattern=pattern,
        history=history,
        seed=case.run_seed(),
        max_steps=case.max_steps,
        scheduler=case.scheduler,
        delivery=case.delivery,
        trace=trace,
        stop="all-correct-decided",
    )
    if config.algorithm == "anuc":
        return LaneSpec(
            processes_factory=lambda: _consensus_processes(config, case), **common
        )
    processes = _consensus_processes(config, case)
    automaton = processes[0].automaton
    proposals = case.proposal_map()
    return LaneSpec(automaton=automaton, proposals=proposals, **common)


def _execute_register(
    config: ChaosConfig, case: FuzzCase, trace: str
) -> CaseOutcome:
    from repro.registers.abd import RegisterClient, RegisterHarness
    from repro.registers.properties import check_register_safety

    pattern = case.pattern()
    detector = config.detector()
    history = sample_history_cached(detector, pattern, case.run_seed())
    scripts = case.proposal_map()
    processes = {p: RegisterClient(scripts.get(p, ())) for p in range(case.n)}
    system = System(
        processes,
        pattern,
        history,
        seed=case.run_seed(),
        scheduler=build_scheduler(case.scheduler),
        delivery=build_delivery(case.delivery),
        trace=trace,
    )

    def scripts_done(sys: System) -> bool:
        return all(
            len(processes[p].records) >= len(processes[p].script)
            for p in pattern.correct
        )

    result = system.run(max_steps=case.max_steps, stop_when=scripts_done)
    messages: List[str] = []
    unfinished = sorted(
        p
        for p in pattern.correct
        if len(processes[p].records) < len(processes[p].script)
    )
    if unfinished:
        messages.append(
            f"termination: correct clients {unfinished} never completed "
            f"their operation scripts"
        )
    records = [r for p in range(case.n) for r in processes[p].records]
    records.sort(key=lambda r: (r.invoked_at, r.pid))
    safety = check_register_safety(
        records, RegisterHarness.incomplete_writes(processes)
    )
    messages.extend(f"register safety: {m}" for m in safety.violations)
    violations = _classify(messages, config.name, case, result.total_steps)
    return _outcome(case, result, violations, trace)


def _execute_smr(config: ChaosConfig, case: FuzzCase, trace: str) -> CaseOutcome:
    from repro.smr.properties import check_smr
    from repro.smr.replicated_log import ReplicatedLogProcess

    pattern = case.pattern()
    detector = config.detector()
    history = sample_history_cached(detector, pattern, case.run_seed())
    commands = case.proposal_map()
    slots = 2
    processes = {
        p: ReplicatedLogProcess(list(commands.get(p, ())), slots=slots)
        for p in range(case.n)
    }
    system = System(
        processes,
        pattern,
        history,
        seed=case.run_seed(),
        scheduler=build_scheduler(case.scheduler),
        delivery=build_delivery(case.delivery),
        trace=trace,
    )

    def logs_full(sys: System) -> bool:
        return all(len(processes[p].log) >= slots for p in pattern.correct)

    result = system.run(max_steps=case.max_steps, stop_when=logs_full)
    messages: List[str] = []
    lagging = sorted(
        p for p in pattern.correct if len(processes[p].log) < slots
    )
    if lagging:
        messages.append(
            f"termination: correct replicas {lagging} never filled all "
            f"{slots} log slots"
        )
    report = check_smr(pattern, processes, {p: list(c) for p, c in commands.items()})
    messages.extend(f"smr safety: {m}" for m in report.violations)
    violations = _classify(messages, config.name, case, result.total_steps)
    return _outcome(case, result, violations, trace)


def _outcome(
    case: FuzzCase, result: RunResult, violations: List[Violation], trace: str
) -> CaseOutcome:
    props = tuple(sorted({v.property for v in violations}))
    signature = (
        result.stop_reason,
        len(result.decisions),
        len(set(map(repr, result.decisions.values()))),
        props,
        min(result.total_steps // 2000, 20),
    )
    schedule: Tuple[int, ...] = ()
    if trace == "full":
        schedule = tuple(s.pid for s in result.steps)
    return CaseOutcome(
        case=case,
        violations=tuple(violations),
        steps=result.total_steps,
        signature=signature,
        schedule=schedule,
    )


_EXECUTORS = {
    "consensus": _execute_consensus,
    "register": _execute_register,
    "smr": _execute_smr,
}


def _recheck_termination(
    config: ChaosConfig,
    outcome: CaseOutcome,
    executor: Callable[[ChaosConfig, FuzzCase, str], CaseOutcome],
) -> CaseOutcome:
    """Discard suggested termination violations that a fair rerun refutes.

    See :func:`execute_case` for the rationale; this is the shared tail of
    the serial and batched execution paths.
    """
    suggested = any(v.property == "termination" for v in outcome.violations)
    if not suggested or "termination" in config.expected:
        return outcome
    fair_case = _dc_replace(
        outcome.case, scheduler=("round-robin",), delivery=("oldest-first",)
    )
    fair = executor(config, fair_case, "metrics")
    if any(v.property == "termination" for v in fair.violations):
        return outcome
    kept = tuple(v for v in outcome.violations if v.property != "termination")
    props = tuple(sorted({v.property for v in kept}))
    if _obs._ENABLED:
        _obs.metrics().inc("chaos.termination_rechecks")
    return CaseOutcome(
        case=outcome.case,
        violations=kept,
        steps=outcome.steps + fair.steps,
        signature=outcome.signature[:3] + (props,) + outcome.signature[4:],
        schedule=outcome.schedule,
    )


def _execute_wave(
    config: ChaosConfig, cases: Sequence[FuzzCase]
) -> List[CaseOutcome]:
    """Run a wave of consensus cases through one batch engine and judge each.

    Bit-identical to ``[execute_case(config, c) for c in cases]`` with obs
    disabled: the batch lanes reproduce ``_execute_consensus``'s runs
    exactly (fast path or interpreted fallback), judging is pure in the
    ``RunResult``, and the termination recheck reruns serially per case.
    """
    from repro.kernel.batch import BatchSystem

    specs = [_consensus_lane_spec(config, case, "metrics") for case in cases]
    results = BatchSystem(specs).run()
    return [
        _recheck_termination(
            config, _judge_consensus(config, case, result, "metrics"), _execute_consensus
        )
        for case, result in zip(cases, results)
    ]


def execute_case(
    config: ChaosConfig, case: FuzzCase, trace: str = "metrics"
) -> CaseOutcome:
    """Run one fuzz case through the live kernel and judge it.

    Pure in ``(config, case)``: the run seed, detector history, scheduler
    and delivery are all rebuilt from the case spec.  ``trace="full"``
    additionally returns the executed pid schedule (for the shrinker).

    Termination is a liveness property, so a finite budget-bounded run can
    only ever *suggest* a violation.  The kernel receives at most one
    message per step (the model of Section 2.4), so an adversarially
    weighted schedule can starve a slow process behind a flood from
    processes that already decided — a finitization artifact, not an
    algorithm defect: in the admissible infinite extension the laggard
    decides.  For configs whose declared lie is *not* a liveness attack
    (``"termination" not in config.expected``), a suggested termination
    violation is therefore re-checked under the canonical fair environment
    (round-robin scheduler, oldest-first delivery): if the fair run
    decides, the termination finding is discarded as a budget artifact.
    Liveness-attack rows keep their raw finding — there the bounded-fair
    fuzzed run (every process steps within ``max_gap``, every message
    arrives within ``max_age``) is the finite witness that non-terminating
    admissible extensions exist.
    """
    executor = _EXECUTORS.get(config.kind)
    if executor is None:
        raise ValueError(f"unknown chaos kind {config.kind!r}")
    outcome = executor(config, case, trace)
    outcome = _recheck_termination(config, outcome, executor)
    if _obs._ENABLED:
        reg = _obs.metrics()
        reg.inc("chaos.cases")
        reg.inc("chaos.steps", outcome.steps)
        if outcome.violations:
            reg.inc("chaos.violations", len(outcome.violations))
    return outcome


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------


#: Largest speculative wave the batched fuzz loop grows to.
_MAX_WAVE = 16


def fuzz_config(
    config: ChaosConfig,
    seed: int = 0,
    budget: Optional[int] = None,
    stop_on: Optional[str] = None,
    max_cases: Optional[int] = None,
    batch: Optional[bool] = None,
) -> FuzzReport:
    """Fuzz one config under a total kernel-step budget.

    ``stop_on`` stops the loop as soon as a violation of that property is
    recorded (the matrix passes the config's primary property); without it
    the loop runs until the step budget or ``max_cases`` is exhausted.
    Deterministic in ``(config, seed, budget, stop_on, max_cases)`` —
    ``batch`` never changes the report.

    ``batch`` drains the budget loop through the batched kernel
    (:class:`repro.kernel.batch.BatchSystem`): cases are drawn
    *speculatively* in waves of up to ``_MAX_WAVE``, executed together, and
    validated in draw order.  Whenever a consumed case would have changed
    what the serial loop draws next (its signature grew the corpus, or it
    ended the budget/case quota), the loop rewinds the draw rng to just
    after that case and discards the speculated remainder, so the sequence
    of consumed cases — and the report — is bit-identical to the serial
    loop.  The wave size doubles after every fully consumed wave and
    resets to 1 on a rewind, which keeps speculation waste near zero in
    the early phase where every case grows the corpus.  ``batch=None``
    (the default) batches exactly the ``consensus`` configs; register/smr
    stops are closures over live process state the lane vocabulary cannot
    express, and observability forces the serial path (fast lanes skip
    the interpreted engine's telemetry).
    """
    budget = config.budget if budget is None else budget
    rng = random.Random(f"chaos/loop/{config.name}/{seed}")
    report = FuzzReport(config=config.name, seed=seed, budget=budget)
    corpus: List[FuzzCase] = []
    seen: set = set()
    index = 0

    def draw() -> FuzzCase:
        nonlocal index
        if corpus and rng.random() < 0.5:
            base = corpus[rng.randrange(len(corpus))]
            case = mutate_case(base, rng, index=index, **config.mutate_kwargs())
        else:
            case = draw_case(
                config.name,
                seed,
                index,
                max_steps=config.max_steps,
                **config.draw_kwargs(),
            )
        index += 1
        return case

    def consume(case: FuzzCase, outcome: CaseOutcome) -> Tuple[bool, bool]:
        """Record one executed case; returns ``(grew_corpus, stop_now)``."""
        report.cases += 1
        report.steps += outcome.steps
        grew = outcome.signature not in seen
        if grew:
            seen.add(outcome.signature)
            corpus.append(case)
        report.violations.extend(outcome.violations)
        stop_now = stop_on is not None and any(
            v.property == stop_on for v in outcome.violations
        )
        return grew, stop_now

    def body() -> None:
        while report.steps < budget:
            if max_cases is not None and report.cases >= max_cases:
                return
            case = draw()
            _, stop_now = consume(case, execute_case(config, case))
            if stop_now:
                return
        report.exhausted = True

    def body_batched() -> None:
        nonlocal index
        wave_size = 1
        while report.steps < budget:
            if max_cases is not None and report.cases >= max_cases:
                return
            cap = wave_size
            if max_cases is not None:
                cap = min(cap, max_cases - report.cases)
            # Speculative draw: snapshot the rng after every case so a
            # mispredicted remainder can be rewound and redrawn.
            wave: List[Tuple[FuzzCase, Any, int]] = []
            while len(wave) < cap:
                wave.append((draw(), rng.getstate(), index))
            outcomes = _execute_wave(config, [case for case, _, _ in wave])
            consumed = len(wave)
            for k, ((case, state, idx), outcome) in enumerate(zip(wave, outcomes)):
                grew, stop_now = consume(case, outcome)
                if stop_now:
                    return
                if k + 1 < len(wave) and (
                    grew
                    or report.steps >= budget
                    or (max_cases is not None and report.cases >= max_cases)
                ):
                    # The serial loop would have drawn the next case from
                    # this state (or not at all); the speculated remainder
                    # assumed otherwise, so rewind and discard it.
                    rng.setstate(state)
                    index = idx
                    consumed = k + 1
                    break
            wave_size = 1 if consumed < len(wave) else min(2 * wave_size, _MAX_WAVE)
        report.exhausted = True

    use_batch = config.kind == "consensus" if batch is None else bool(batch)
    use_batch = use_batch and config.kind == "consensus"
    if _obs._ENABLED:
        with _obs.tracer().span(
            "chaos.fuzz", config=config.name, seed=seed, budget=budget
        ):
            body()
    elif use_batch:
        body_batched()
    else:
        body()
    report.corpus_size = len(corpus)
    return report
