"""The injection matrix: every injector flips exactly its declared property.

Each :class:`~repro.chaos.fuzzer.ChaosConfig` row pairs a detector (honest
or wrapped in one fault injector) with the algorithm whose paper hypothesis
the injector attacks.  :func:`run_matrix` fuzzes every row and renders a
verdict with two independent legs:

1. **Hypothesis leg** — the injector's sampled histories must be *rejected*
   by its declared detector-property checker while the honest inner
   detector's histories are accepted (the lie breaks exactly the clause it
   claims to break, nothing else).
2. **Run leg** — fuzzing the injected config must find a violation of the
   row's ``primary`` run property within budget, and every violation found
   must lie inside the row's ``expected`` set.  Honest rows must exhaust
   their budget with zero violations.

The interesting diagonal entries:

* ``split-quorums`` — :class:`~repro.chaos.injectors.SplitQuorums` against
  the *naive* Sigma^nu algorithm is the executable t >= n/2 separation of
  Theorem 7.1: non-intersecting correct quorums let the two halves decide
  differently.
* ``trusted-union-liar`` — breaks Sigma^nu+'s conditional nonintersection
  and thereby turns A_nuc's own defense against it: the distrust rule
  (Fig. 5 lines 51-53) is only sound *under* that hypothesis, so the lie
  makes a correct process distrust the pivot inside its own quorum and
  A_nuc wedges in phase 3.  Safety survives; termination falls — an
  executable witness that the Sigma^nu+ clauses are load-bearing for
  Theorem 6.27's termination argument.

Rows are dispatched through :func:`repro.harness.parallel.run_sweep`, so
``--jobs N`` fans the matrix out across processes; results are
deterministic in ``seed`` regardless of ``jobs``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.fuzzer import ChaosConfig, FuzzReport, fuzz_config
from repro.chaos.injectors import (
    HYPOTHESIS_CHECKERS,
    BlindSuspector,
    CrashedLeaderOmega,
    NeverStabilizingOmega,
    ParanoidSuspector,
    SplitQuorums,
    TrustedUnionLiar,
)
from repro.chaos.shrinker import ShrinkResult, shrink_schedule
from repro.chaos.space import draw_case
from repro.harness.parallel import SweepTask, run_sweep
from repro import obs as _obs

#: Horizon for the hypothesis-leg history checks; comfortably past every
#: stabilization time the samplers can draw under the configs' crash bounds.
HYPOTHESIS_HORIZON = 200


# ----------------------------------------------------------------------
# Detector factories (module-level so configs stay picklable)
# ----------------------------------------------------------------------


def anuc_detector():
    from repro.detectors.omega import Omega
    from repro.detectors.paired import PairedDetector
    from repro.detectors.sigma_nu_plus import SigmaNuPlus

    return PairedDetector(Omega(), SigmaNuPlus())


def naive_sigma_nu_detector():
    from repro.detectors.omega import Omega
    from repro.detectors.paired import PairedDetector
    from repro.detectors.sigma_nu import SigmaNu

    return PairedDetector(Omega(), SigmaNu())


def ct_detector():
    from repro.detectors.perfect import EventuallyPerfect

    return EventuallyPerfect()


def register_detector():
    from repro.detectors.sigma import Sigma

    return Sigma()


def nostab_omega_detector():
    from repro.detectors.paired import PairedDetector
    from repro.detectors.sigma_nu_plus import SigmaNuPlus

    return PairedDetector(NeverStabilizingOmega(), SigmaNuPlus())


def crashed_omega_detector():
    from repro.detectors.paired import PairedDetector
    from repro.detectors.sigma_nu_plus import SigmaNuPlus

    return PairedDetector(CrashedLeaderOmega(), SigmaNuPlus())


def split_quorum_detector():
    from repro.detectors.omega import Omega
    from repro.detectors.paired import PairedDetector

    return PairedDetector(Omega(), SplitQuorums())


def trusted_union_liar_detector():
    from repro.detectors.omega import Omega
    from repro.detectors.paired import PairedDetector

    return PairedDetector(Omega(), TrustedUnionLiar())


def blind_ct_detector():
    return BlindSuspector()


def paranoid_ct_detector():
    return ParanoidSuspector()


def split_register_detector():
    from repro.detectors.sigma import Sigma

    return SplitQuorums(Sigma())


def _kw(**kwargs) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


_CONFIG_LIST = (
    # ------------------------------------------------------ honest rows
    ChaosConfig(
        name="nuc-honest",
        kind="consensus",
        algorithm="anuc",
        detector=anuc_detector,
        case_kwargs=_kw(ns=(3, 4)),
        budget=90_000,
        description="A_nuc with honest (Omega, Sigma^nu+): must stay clean.",
    ),
    ChaosConfig(
        name="ct-honest",
        kind="consensus",
        algorithm="ct",
        detector=ct_detector,
        case_kwargs=_kw(ns=(3, 4, 5), majority_correct=True),
        budget=90_000,
        description="Chandra-Toueg <>P baseline, f < n/2: must stay clean.",
    ),
    ChaosConfig(
        name="register-honest",
        kind="register",
        algorithm="abd",
        detector=register_detector,
        case_kwargs=_kw(ns=(3, 4), proposal_style="register"),
        budget=90_000,
        description="ABD register over honest Sigma: must stay clean.",
    ),
    ChaosConfig(
        name="smr-honest",
        kind="smr",
        algorithm="replicated-log",
        detector=anuc_detector,
        case_kwargs=_kw(ns=(3,), proposal_style="smr"),
        max_steps=40_000,
        budget=120_000,
        description="Replicated log over honest (Omega, Sigma^nu+).",
    ),
    # ---------------------------------------------------- injected rows
    ChaosConfig(
        name="omega-nostab",
        kind="consensus",
        algorithm="anuc",
        detector=nostab_omega_detector,
        honest=anuc_detector,
        injector=NeverStabilizingOmega,
        expected=frozenset({"termination"}),
        primary="termination",
        case_kwargs=_kw(ns=(3, 4)),
        description="Omega never stabilizes: A_nuc loses only termination.",
    ),
    ChaosConfig(
        name="omega-crashed",
        kind="consensus",
        algorithm="anuc",
        detector=crashed_omega_detector,
        honest=anuc_detector,
        injector=CrashedLeaderOmega,
        expected=frozenset({"termination"}),
        primary="termination",
        case_kwargs=_kw(ns=(3, 4), min_faulty=1, max_crash_time=0),
        description="Omega elects a crashed leader: A_nuc blocks forever.",
    ),
    ChaosConfig(
        name="split-quorums",
        kind="consensus",
        algorithm="naive-sigma-nu",
        detector=split_quorum_detector,
        honest=naive_sigma_nu_detector,
        injector=SplitQuorums,
        expected=frozenset({"nonuniform agreement", "uniform agreement"}),
        primary="nonuniform agreement",
        case_kwargs=_kw(
            ns=(4, 5, 6), min_correct=2, proposal_style="split-halves"
        ),
        description=(
            "Theorem 7.1 executable: split quorums make the naive Sigma^nu "
            "algorithm decide differently in the two halves."
        ),
    ),
    ChaosConfig(
        name="trusted-union-liar",
        kind="consensus",
        algorithm="anuc",
        detector=trusted_union_liar_detector,
        honest=anuc_detector,
        injector=TrustedUnionLiar,
        expected=frozenset({"termination"}),
        primary="termination",
        case_kwargs=_kw(ns=(3, 4), min_faulty=1, min_correct=2),
        description=(
            "Sigma^nu+ conditional-nonintersection lie: a faulty quorum "
            "disjoint from the pivot's makes A_nuc's distrust rule (Fig. 5 "
            "lines 51-53) condemn the *pivot* — a correct process distrusts "
            "a member of its own quorum and wedges in phase 3.  Safety "
            "survives (correct quorums still share the pivot); only "
            "termination falls."
        ),
    ),
    ChaosConfig(
        name="ct-blind",
        kind="consensus",
        algorithm="ct",
        detector=blind_ct_detector,
        honest=ct_detector,
        injector=BlindSuspector,
        expected=frozenset({"termination"}),
        primary="termination",
        case_kwargs=_kw(
            ns=(3, 4), min_faulty=1, majority_correct=True, max_crash_time=5
        ),
        description="<>P never suspects: CT blocks on a dead coordinator.",
    ),
    ChaosConfig(
        name="ct-paranoid",
        kind="consensus",
        algorithm="ct",
        detector=paranoid_ct_detector,
        honest=ct_detector,
        injector=ParanoidSuspector,
        expected=frozenset({"termination"}),
        primary="termination",
        case_kwargs=_kw(ns=(3, 4), majority_correct=True),
        description="<>P suspects everyone: no CT round ever completes.",
    ),
    ChaosConfig(
        name="register-split",
        kind="register",
        algorithm="abd",
        detector=split_register_detector,
        honest=register_detector,
        injector=SplitQuorums,
        expected=frozenset({"register safety"}),
        primary="register safety",
        case_kwargs=_kw(
            ns=(4, 5), min_correct=2, proposal_style="register"
        ),
        description=(
            "Split quorums under ABD: reads miss the other half's writes "
            "(stale reads violate real-time order)."
        ),
    ),
)

#: name -> config, in matrix order.
CONFIGS: Dict[str, ChaosConfig] = {c.name: c for c in _CONFIG_LIST}


@dataclass
class MatrixVerdict:
    """One row's outcome: both legs plus the exactness judgement."""

    config: str
    injected: bool
    expected: frozenset
    primary: Optional[str]
    found: frozenset = frozenset()
    cases: int = 0
    steps: int = 0
    exhausted: bool = False
    primary_found: bool = False
    exact: bool = False
    hypothesis_rejected: Optional[bool] = None
    honest_accepted: Optional[bool] = None
    ok: bool = False
    sample: str = ""
    shrink: Optional[ShrinkResult] = None

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"MatrixVerdict({self.config}: {status}, "
            f"found={sorted(self.found)}, expected={sorted(self.expected)})"
        )


@dataclass
class MatrixReport:
    """All verdicts of one matrix run."""

    seed: int
    verdicts: List[MatrixVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def __repr__(self) -> str:
        bad = [v.config for v in self.verdicts if not v.ok]
        status = "ok" if not bad else f"FAIL({', '.join(bad)})"
        return f"MatrixReport(seed={self.seed}, {len(self.verdicts)} rows, {status})"


def hypothesis_flip(config: ChaosConfig, seed: int) -> Tuple[bool, bool]:
    """The hypothesis leg: ``(injected rejected, honest accepted)``.

    Samples one in-domain pattern from the config's own case space, then
    checks the bare injector's history against its declared checker and the
    honest inner detector's history against the same checker.
    """
    assert config.injector is not None
    injector = config.injector()
    checker = HYPOTHESIS_CHECKERS[injector.checker]
    pattern = None
    for index in range(64):
        candidate = draw_case(
            config.name, seed, index, max_steps=config.max_steps,
            **config.draw_kwargs(),
        ).pattern()
        if injector.applicable(candidate):
            pattern = candidate
            break
    if pattern is None:
        raise RuntimeError(
            f"no applicable pattern for {config.name} in 64 draws"
        )
    rng = random.Random(f"chaos/hypothesis/{config.name}/{seed}")
    lied = injector.sample_history(pattern, rng)
    honest = injector.inner.sample_history(pattern, rng)
    rejected = not checker(lied, pattern, HYPOTHESIS_HORIZON).ok
    accepted = bool(checker(honest, pattern, HYPOTHESIS_HORIZON).ok)
    return rejected, accepted


def judge_config(
    name: str,
    seed: int = 0,
    budget: Optional[int] = None,
    shrink: bool = False,
) -> MatrixVerdict:
    """Fuzz one matrix row and judge both legs.  Pure in its arguments."""
    config = CONFIGS[name]
    injected = config.injector is not None
    verdict = MatrixVerdict(
        config=name,
        injected=injected,
        expected=config.expected,
        primary=config.primary,
    )
    if injected:
        verdict.hypothesis_rejected, verdict.honest_accepted = hypothesis_flip(
            config, seed
        )
    report: FuzzReport = fuzz_config(
        config, seed=seed, budget=budget, stop_on=config.primary
    )
    verdict.found = report.found
    verdict.cases = report.cases
    verdict.steps = report.steps
    verdict.exhausted = report.exhausted
    verdict.primary_found = (
        config.primary is not None and config.primary in report.found
    )
    first = report.first(config.primary)
    if first is not None:
        verdict.sample = first.message
    within = report.found <= config.expected
    if injected:
        verdict.exact = within and (
            config.primary is None or verdict.primary_found
        )
        verdict.ok = bool(
            verdict.exact
            and verdict.hypothesis_rejected
            and verdict.honest_accepted
        )
    else:
        verdict.exact = not report.found and report.exhausted
        verdict.ok = verdict.exact
    if shrink and first is not None:
        verdict.shrink = shrink_schedule(config, first.case, first.property)
    return verdict


def run_matrix(
    seed: int = 0,
    budget: Optional[int] = None,
    jobs: int = 1,
    shrink: bool = False,
    names: Optional[Sequence[str]] = None,
) -> MatrixReport:
    """Judge every matrix row (optionally a subset), optionally in parallel.

    Results are in matrix order and independent of ``jobs``.
    """
    selected = list(names) if names is not None else list(CONFIGS)
    unknown = [n for n in selected if n not in CONFIGS]
    if unknown:
        raise KeyError(f"unknown chaos config(s): {', '.join(unknown)}")
    tasks = [
        SweepTask(
            fn=judge_config,
            kwargs={"name": n, "seed": seed, "budget": budget, "shrink": shrink},
        )
        for n in selected
    ]
    if _obs._ENABLED:
        with _obs.tracer().span("chaos.matrix", seed=seed, rows=len(tasks)):
            verdicts = run_sweep(tasks, jobs=jobs)
    else:
        verdicts = run_sweep(tasks, jobs=jobs)
    return MatrixReport(seed=seed, verdicts=list(verdicts))
