"""Replayable counterexample artifacts (``repro-counterexample/1``).

A shrunk violation is saved as a small JSON document carrying the scripted
:class:`~repro.chaos.space.FuzzCase`, the violated property, and the shrink
provenance.  The format is versioned so committed fixtures stay loadable;
:func:`replay_counterexample` rebuilds the exact kernel run (scripted
scheduler + recorded seed) and re-judges it with the live property checkers
— a loaded artifact is *evidence*, not testimony.

Each artifact embeds its own one-line repro command.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.chaos.fuzzer import CaseOutcome, execute_case
from repro.chaos.shrinker import ShrinkResult
from repro.chaos.space import FuzzCase

FORMAT = "repro-counterexample/1"

#: The document shape, enforced by :func:`load_counterexample`.  Kept as a
#: plain structural description (no external schema library).
COUNTEREXAMPLE_SCHEMA: Dict[str, type] = {
    "format": str,
    "config": str,
    "property": str,
    "message": str,
    "case": dict,
    "shrink": dict,
    "repro": str,
}


def counterexample_document(result: ShrinkResult, path_hint: str = "<artifact>") -> Dict[str, Any]:
    """The JSON document for one shrink result."""
    return {
        "format": FORMAT,
        "config": result.config,
        "property": result.property,
        "message": result.message,
        "case": result.case.to_json(),
        "shrink": {
            "original_schedule_len": result.original_schedule_len,
            "script_len": len(result.script),
            "evaluations": result.evaluations,
            "one_minimal": result.one_minimal,
        },
        "repro": f"python -m repro chaos --replay {path_hint}",
    }


def save_counterexample(
    result: ShrinkResult, path: Union[str, Path]
) -> Dict[str, Any]:
    """Write the artifact to ``path`` and return the document."""
    path = Path(path)
    document = counterexample_document(result, path_hint=str(path))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def load_counterexample(source: Union[str, Path, Dict[str, Any]]) -> Dict[str, Any]:
    """Load and structurally validate an artifact document."""
    if isinstance(source, (str, Path)):
        data = json.loads(Path(source).read_text())
    else:
        data = source
    if not isinstance(data, dict):
        raise ValueError("counterexample artifact must be a JSON object")
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported counterexample format {data.get('format')!r} "
            f"(expected {FORMAT!r})"
        )
    for key, kind in COUNTEREXAMPLE_SCHEMA.items():
        if key not in data:
            raise ValueError(f"counterexample artifact missing key {key!r}")
        if not isinstance(data[key], kind):
            raise ValueError(
                f"counterexample key {key!r} must be {kind.__name__}, "
                f"got {type(data[key]).__name__}"
            )
    # The embedded case must itself round-trip.
    FuzzCase.from_json(data["case"])
    return data


def replay_counterexample(
    source: Union[str, Path, Dict[str, Any]],
    config: Optional[Any] = None,
) -> Tuple[bool, CaseOutcome, Dict[str, Any]]:
    """Re-execute an artifact and re-judge it with the live checkers.

    Returns ``(reproduced, outcome, document)`` where ``reproduced`` is
    whether the recorded property is violated again.  ``config`` may be a
    :class:`~repro.chaos.fuzzer.ChaosConfig`; by default it is resolved by
    name from the matrix registry.
    """
    document = load_counterexample(source)
    if config is None:
        from repro.chaos.matrix import CONFIGS

        config = CONFIGS[document["config"]]
    case = FuzzCase.from_json(document["case"])
    outcome = execute_case(config, case)
    reproduced = any(
        v.property == document["property"] for v in outcome.violations
    )
    return reproduced, outcome, document
