"""Detector fault injectors: break exactly one hypothesis at a time.

Every injector is a :class:`~repro.detectors.base.FailureDetector` wrapping an
honest inner detector, so it composes anywhere a detector does (inside
:class:`~repro.detectors.paired.PairedDetector`, the runners, the register
harness).  Each declares:

* ``breaks`` — the paper hypothesis it violates, human-readable;
* ``checker`` — the name of the detector property checker (see
  :data:`HYPOTHESIS_CHECKERS`) that must *reject* its sampled histories while
  accepting the honest inner detector's;
* ``requires_faulty`` / ``min_correct`` — environment constraints under which
  the lie is expressible.  On patterns outside its domain an injector falls
  back to the honest inner history, so it is total (the fuzz-case generators
  simply avoid sampling such patterns for injected configs).

The injectors are deliberately *minimal* lies: everything the definition
permits is kept honest, so a failed check isolates the single broken clause.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from repro.detectors.base import (
    FailureDetector,
    FunctionalHistory,
    History,
    ScheduleHistory,
)
from repro.detectors.checkers import (
    check_eventually_perfect,
    check_omega,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
)
from repro.detectors.omega import Omega
from repro.detectors.perfect import EventuallyPerfect
from repro.detectors.sigma_nu import SigmaNu
from repro.detectors.sigma_nu_plus import SigmaNuPlus
from repro.kernel.failures import FailurePattern

#: Name -> detector hypothesis checker, the executable form of ``breaks``.
HYPOTHESIS_CHECKERS = {
    "omega": check_omega,
    "sigma": check_sigma,
    "sigma_nu": check_sigma_nu,
    "sigma_nu_plus": check_sigma_nu_plus,
    "eventually_perfect": check_eventually_perfect,
}


class FaultInjector(FailureDetector):
    """Base class: an injector wraps an honest detector and perturbs it."""

    #: The paper hypothesis this injector violates (prose).
    breaks: str = "?"
    #: Key into :data:`HYPOTHESIS_CHECKERS`; that checker must reject the
    #: injected histories (on patterns inside the injector's domain).
    checker: str = "?"
    #: The lie is only expressible when the pattern has a faulty process.
    requires_faulty: bool = False
    #: Minimum number of correct processes the lie needs.
    min_correct: int = 1

    def __init__(self, inner: FailureDetector):
        self.inner = inner
        self.name = f"{type(self).__name__}({inner.name})"

    def applicable(self, pattern: FailurePattern) -> bool:
        """Whether the lie is expressible under ``pattern``."""
        if self.requires_faulty and not pattern.faulty:
            return False
        return len(pattern.correct) >= self.min_correct

    def sample_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        if not self.applicable(pattern):
            return self.inner.sample_history(pattern, rng)
        return self._lie(pattern, rng)

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Omega injectors
# ----------------------------------------------------------------------


class NeverStabilizingOmega(FaultInjector):
    """Omega whose leader rotates forever and never agrees across processes.

    ``H(p, t) = (t // period + p) mod n`` — every process changes its mind
    every ``period`` ticks and no two processes ever point at the same
    process simultaneously (for ``n > 1``), so there is no time after which
    a common correct leader is output.  Breaks only the *eventual* clause:
    each individual output is a legal process id.
    """

    breaks = "Omega eventual leadership (no stabilization)"
    checker = "omega"

    def __init__(self, inner: Optional[FailureDetector] = None, period: int = 7):
        super().__init__(inner if inner is not None else Omega())
        if period < 1:
            raise ValueError("period must be >= 1")
        self.period = period

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        n = pattern.n
        period = self.period

        def leader(p: int, t: int) -> int:
            return (t // period + p) % n

        return FunctionalHistory(leader)


class CrashedLeaderOmega(FaultInjector):
    """Omega that stabilizes immediately — on a *crashed* leader.

    Every process outputs the lowest-id faulty process at every time: the
    trust is perfectly stable and unanimous, violating only the requirement
    that the eventual leader be correct.
    """

    breaks = "Omega leader correctness (elects a crashed process)"
    checker = "omega"
    requires_faulty = True

    def __init__(self, inner: Optional[FailureDetector] = None):
        super().__init__(inner if inner is not None else Omega())

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        leader = min(pattern.faulty)
        return ScheduleHistory(
            {p: [(0, leader)] for p in pattern.processes}
        )


# ----------------------------------------------------------------------
# Quorum injectors
# ----------------------------------------------------------------------


class SplitQuorums(FaultInjector):
    """Quorums that stop intersecting at correct processes.

    The correct set is split into two halves; every correct process outputs
    its own half, forever.  Completeness (quorums eventually inside
    ``correct(F)``) and self-inclusion still hold — only the intersection
    property is broken, and only between the halves.  Faulty processes
    output their own singleton (legal under Sigma^nu).

    This is the executable t >= n/2 phenomenon of Theorem 7.1: with half
    the processes allowed to crash, "my half" is exactly the quorum a
    partitioned majority-style protocol would trust.
    """

    breaks = "Sigma^nu intersection at correct processes"
    checker = "sigma_nu"
    min_correct = 2

    def __init__(self, inner: Optional[FailureDetector] = None):
        super().__init__(inner if inner is not None else SigmaNu())

    @staticmethod
    def halves(pattern: FailurePattern):
        """The two disjoint correct halves (sorted split of ``correct``)."""
        correct = sorted(pattern.correct)
        mid = (len(correct) + 1) // 2
        return frozenset(correct[:mid]), frozenset(correct[mid:])

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        half_a, half_b = self.halves(pattern)
        breakpoints = {}
        for p in pattern.processes:
            if p in half_a:
                quorum = half_a
            elif p in half_b:
                quorum = half_b
            else:
                quorum = frozenset([p])
            breakpoints[p] = [(0, quorum)]
        return ScheduleHistory(breakpoints)


class TrustedUnionLiar(FaultInjector):
    """Sigma^nu+ that lies about trusted unions (conditional nonintersection).

    Correct processes honestly output ``{pivot, p}`` (pairwise intersecting
    at the pivot, inside ``correct(F)``, self-including).  Every *faulty*
    process outputs ``{p, confederate}`` where the confederate is a correct
    non-pivot process: that quorum is disjoint from the pivot's own quorum
    yet contains a correct process — exactly what Sigma^nu+'s conditional
    nonintersection forbids ("a quorum missing a correct quorum trusts only
    faulty processes").  Sigma^nu itself is untouched: correct quorums still
    intersect and complete.

    A_nuc's distrust machinery (Fig. 5 lines 51-53) is sound only *under*
    conditional nonintersection, and the lie turns it against the pivot:
    from a correct process's standpoint the faulty liar is not condemnable
    (its quorum contains the correct confederate), so the liar counts as a
    witness and the *pivot* — whose quorum the liar's misses — becomes
    distrusted.  A correct process then distrusts a member of its own
    quorum forever and A_nuc wedges in phase 3.  Safety survives (correct
    quorums still share the pivot); the injection matrix asserts exactly a
    termination violation — an executable witness that the Sigma^nu+
    clauses are load-bearing for the Fig. 5 termination argument.
    """

    breaks = "Sigma^nu+ conditional nonintersection (trusted-union lie)"
    checker = "sigma_nu_plus"
    requires_faulty = True
    min_correct = 2

    def __init__(self, inner: Optional[FailureDetector] = None):
        super().__init__(inner if inner is not None else SigmaNuPlus())

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        correct = sorted(pattern.correct)
        pivot, confederate = correct[0], correct[1]
        breakpoints = {}
        for p in pattern.processes:
            if p in pattern.correct:
                quorum = frozenset([pivot, p])
            else:
                quorum = frozenset([p, confederate])
            breakpoints[p] = [(0, quorum)]
        return ScheduleHistory(breakpoints)


# ----------------------------------------------------------------------
# <>P injectors (Chandra-Toueg baseline)
# ----------------------------------------------------------------------


class BlindSuspector(FaultInjector):
    """<>P that never suspects anyone: strong completeness broken.

    Every process outputs the empty suspect set at every time.  Eventual
    accuracy holds vacuously; crashed processes are simply never noticed,
    so a rotating-coordinator protocol blocks forever on a dead
    coordinator's round.
    """

    breaks = "<>P strong completeness (crashed processes never suspected)"
    checker = "eventually_perfect"
    requires_faulty = True

    def __init__(self, inner: Optional[FailureDetector] = None):
        super().__init__(inner if inner is not None else EventuallyPerfect())

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        empty: FrozenSet[int] = frozenset()
        return ScheduleHistory({p: [(0, empty)] for p in pattern.processes})


class ParanoidSuspector(FaultInjector):
    """<>P that suspects everyone forever: eventual accuracy broken.

    Every process outputs the full process set at every time.  Strong
    completeness holds a fortiori; no coordinator is ever believed, so
    every round is nacked and no decision is reached.
    """

    breaks = "<>P eventual accuracy (correct processes suspected forever)"
    checker = "eventually_perfect"

    def __init__(self, inner: Optional[FailureDetector] = None):
        super().__init__(inner if inner is not None else EventuallyPerfect())

    def _lie(self, pattern: FailurePattern, rng: random.Random) -> History:
        everyone = frozenset(pattern.processes)
        return ScheduleHistory({p: [(0, everyone)] for p in pattern.processes})


#: Every shipped injector class, for tests and the matrix registry.
ALL_INJECTORS = (
    NeverStabilizingOmega,
    CrashedLeaderOmega,
    SplitQuorums,
    TrustedUnionLiar,
    BlindSuspector,
    ParanoidSuspector,
)
