"""Canonical config digests for sweep tasks.

A :class:`~repro.harness.parallel.SweepTask` is a pure function of its
keyword arguments; the store therefore addresses its result by a SHA-256
over a *canonical form* of ``(fn identity, kwargs)``.  Canonicalization is
what makes the digest a semantic key rather than a repr accident:

* mapping entries are sorted, so dict insertion order never matters;
* lists and tuples collapse to one sequence form, so a spec-expanded
  ``seeds = [0, 1]`` and a code-built ``seeds = (0, 1)`` agree;
* sets and frozensets are sorted by their canonical element form;
* floats canonicalize through ``repr`` (shortest round-trip form in
  CPython ≥ 3.1), so ``0.1`` digests identically however it was computed,
  while genuinely different values (including ``0.0`` vs ``-0.0``) differ;
* bools are distinguished from ints, ints from floats, bytes from str;
* :class:`~repro.detectors.base.FailureDetector` instances key on their
  ``cache_key()`` — the same configuration identity the history LRU uses;
  a detector whose ``cache_key()`` is ``None`` is *uncacheable* and makes
  the whole task undigestable (it may sample differently run to run);
* :class:`~repro.kernel.failures.FailurePattern` keys on ``(n, sorted
  crash times)``;
* dataclass instances key on ``(qualified name, canonical field dict)``;
* any object may opt in explicitly by defining ``config_key()`` returning
  a canonicalizable value.

Anything else raises :class:`UndigestableError`; the store treats such
tasks as unstorable and simply executes them (counted under
``store.skipped``), so an exotic argument can never cause a wrong hit.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Callable, Dict, Tuple

from repro.detectors.base import FailureDetector
from repro.kernel.failures import FailurePattern

DIGEST_SCHEMA = "repro-config/1"


class UndigestableError(TypeError):
    """Raised when a task argument has no canonical form."""


def canonical(value: Any) -> Any:
    """The canonical (nested-tuple, type-tagged) form of ``value``.

    The result contains only primitives and tuples, with a stable,
    deterministic ``repr`` — suitable for hashing.
    """
    # bool before int: isinstance(True, int) is True.
    if value is None or isinstance(value, bool):
        return ("atom", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", repr(value))
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, bytes):
        return ("bytes", value.hex())
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((canonical(item) for item in value), key=repr)))
    if isinstance(value, dict):
        items = tuple(
            sorted(
                ((canonical(k), canonical(v)) for k, v in value.items()),
                key=repr,
            )
        )
        return ("map", items)
    if isinstance(value, range):
        return ("seq", tuple(("int", i) for i in value))
    config_key = getattr(value, "config_key", None)
    if callable(config_key):
        return ("config_key", _qualname(type(value)), canonical(config_key()))
    if isinstance(value, FailurePattern):
        return (
            "FailurePattern",
            value.n,
            tuple(sorted(value.crash_times.items())),
        )
    if isinstance(value, FailureDetector):
        key = value.cache_key()
        if key is None:
            raise UndigestableError(
                f"detector {value!r} is uncacheable (cache_key() is None); "
                f"its task cannot be served from the store"
            )
        return ("detector", canonical(key))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: getattr(value, f.name) for f in dataclasses.fields(value)
        }
        return ("dataclass", _qualname(type(value)), canonical(fields))
    raise UndigestableError(
        f"no canonical form for {type(value).__name__}: {value!r}"
    )


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def fn_identity(fn: Callable[..., Any]) -> str:
    """The stable name a task function is addressed by."""
    return f"{fn.__module__}:{fn.__qualname__}"


def config_digest(fn: Callable[..., Any], kwargs: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical ``(fn, kwargs)`` form.

    Raises :class:`UndigestableError` when any argument lacks a canonical
    form.  By construction the digest is independent of dict insertion
    order and of *how* the sweep executes (``jobs``/``batch`` never appear
    in task kwargs).
    """
    body: Tuple[Any, ...] = (DIGEST_SCHEMA, fn_identity(fn), canonical(kwargs))
    return hashlib.sha256(repr(body).encode("utf-8")).hexdigest()
