"""The content-addressed result store under ``benchmarks/results/store``.

Layout (documented for humans in ``benchmarks/results/README.md``)::

    <root>/
      objects/<digest[:2]>/<digest>/<signature[:16]>.json
      bench/<kind>/<environment digest>/<UTC stamp>-<git sha or local>.json

``objects/`` holds one record per ``(config_digest, code_signature)`` pair:
the digest names the *row* (canonical task kwargs, see
:mod:`repro.store.digest`), the signature names the *code* that produced it
(module closure hash, see :mod:`repro.store.signature`).  Records for the
same row under different signatures coexist — switching a branch back
restores its hits.  A lookup that finds the row only under *other*
signatures is an **invalidation** (the code moved), distinct from a plain
miss (never computed).

``bench/`` shelves whole benchmark reports keyed by machine-environment
digest, so regression checks can compare against "the most recent report
from this same environment" rather than only the committed JSON.

Write discipline — safe under ``--jobs N`` and concurrent sweeps:

* results are computed by workers but **written only by the parent** (the
  sweep driver), so no record is ever produced twice in one sweep;
* every write goes through a same-directory temp file + :func:`os.replace`,
  which is atomic on POSIX — readers see either the old record or the new
  one, never a torn file;
* concurrent writers racing on one key write byte-identical content (same
  digest, same signature, same deterministic result), so last-write-wins
  is harmless.

Payloads are pickled (every sweep result already crosses a process
boundary under ``--jobs N``, so picklability is a pre-existing contract),
zlib-compressed and base64-embedded in the JSON record.  A result that
fails to pickle is simply not stored; a record that fails to load is
treated as a miss and rewritten — the store can only ever *skip* work,
never corrupt a sweep.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.harness.envinfo import environment_digest, environment_stamp
from repro.store.digest import UndigestableError, config_digest, fn_identity
from repro.store.signature import ModuleSignatureIndex, default_index

STORE_SCHEMA = "repro-store/1"

_SIG_PREFIX = 16  # filename component; full signature lives in the record


def default_store_root() -> str:
    """The canonical store location for this checkout.

    ``REPRO_STORE_DIR`` overrides; otherwise ``benchmarks/results/store``
    under the repository root that contains the installed ``repro`` package
    (source checkouts), falling back to the current directory's
    ``benchmarks/results/store`` for installed-package use.
    """
    override = os.environ.get("REPRO_STORE_DIR")
    if override:
        return override
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    repo_root = os.path.dirname(os.path.dirname(package_dir))
    candidate = os.path.join(repo_root, "benchmarks", "results")
    if os.path.isdir(candidate):
        return os.path.join(candidate, "store")
    return os.path.join(os.getcwd(), "benchmarks", "results", "store")


@dataclass(frozen=True)
class TaskKey:
    """The store address of one sweep task."""

    digest: str
    signature: str
    fn: str


@dataclass
class StoreStats:
    """Lookup/write accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0
    skipped: int = 0  # undigestable kwargs or unsigned module
    writes: int = 0
    write_failures: int = 0  # unpicklable results

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "skipped": self.skipped,
            "writes": self.writes,
            "write_failures": self.write_failures,
        }

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.invalidated

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        """Zero all counters (benchmarks measure phases separately)."""
        self.hits = self.misses = self.invalidated = 0
        self.skipped = self.writes = self.write_failures = 0


class ResultStore:
    """Content-addressed sweep results keyed by (config digest, code sig)."""

    def __init__(
        self,
        root: Optional[str] = None,
        index: Optional[ModuleSignatureIndex] = None,
        repo_root: Optional[str] = None,
    ):
        self.root = os.path.abspath(root or default_store_root())
        self.index = index or default_index()
        self._repo_root = repo_root
        self.stats = StoreStats()
        self._signature_cache: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(self, fn: Callable[..., Any], kwargs: Dict[str, Any]) -> Optional[TaskKey]:
        """The task's store key, or ``None`` if it cannot be stored."""
        modname = fn.__module__
        if modname not in self._signature_cache:
            self._signature_cache[modname] = self.index.signature(modname)
            if _obs._ENABLED:
                # Signature computations are the per-sweep fixed cost of
                # addressing (one import-closure hash per module); digests
                # are the per-row cost.  Counting both makes a slow lookup
                # phase explainable from the trace alone.
                _obs.metrics().inc("store.signature")
        signature = self._signature_cache[modname]
        if signature is None:
            return None
        try:
            digest = config_digest(fn, kwargs)
        except UndigestableError:
            return None
        if _obs._ENABLED:
            _obs.metrics().inc("store.digest")
        return TaskKey(digest=digest, signature=signature, fn=fn_identity(fn))

    def refresh_signatures(self) -> None:
        """Forget per-sweep signature caching (after editing sources)."""
        self._signature_cache.clear()
        self.index.refresh()

    def _row_dir(self, digest: str) -> str:
        return os.path.join(self.root, "objects", digest[:2], digest)

    def _record_path(self, key: TaskKey) -> str:
        return os.path.join(
            self._row_dir(key.digest), key.signature[:_SIG_PREFIX] + ".json"
        )

    # ------------------------------------------------------------------
    # Lookup / write
    # ------------------------------------------------------------------

    def probe(self, key: TaskKey) -> str:
        """Lookup status without deserializing: hit / invalidated / miss."""
        if os.path.isfile(self._record_path(key)):
            return "hit"
        row_dir = self._row_dir(key.digest)
        try:
            others = [n for n in os.listdir(row_dir) if n.endswith(".json")]
        except OSError:
            others = []
        return "invalidated" if others else "miss"

    def load(self, key: TaskKey) -> Tuple[str, Any]:
        """``(status, value)``; value is only meaningful when status=="hit".

        Counts into :attr:`stats`.  A corrupt or mismatched record demotes
        to a miss (and will be rewritten by the next :meth:`store`).
        """
        path = self._record_path(key)
        record = self._read_record(path)
        if record is not None and record.get("code_signature") == key.signature:
            try:
                value = _decode_payload(record)
            except Exception:
                record = None  # corrupt payload: recompute and rewrite
            else:
                self.stats.hits += 1
                return "hit", value
        own = os.path.basename(path)
        try:
            others = [
                n
                for n in os.listdir(os.path.dirname(path))
                if n.endswith(".json") and n != own
            ]
        except OSError:
            others = []
        if others:
            self.stats.invalidated += 1
            return "invalidated", None
        self.stats.misses += 1
        return "miss", None

    def store(
        self,
        key: TaskKey,
        value: Any,
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Atomically persist one result; False if it cannot be pickled.

        ``telemetry`` (optional) rides along in the record: the row's
        deterministic counter delta and span-path aggregates as captured
        by a traced sweep (see :mod:`repro.harness.parallel`).  It never
        affects lookups — records with and without telemetry are equally
        valid hits — but lets ``repro store diff --counters`` explain how
        much *work* moved between two code signatures, not just which
        rows would re-run.
        """
        try:
            payload = base64.b64encode(
                zlib.compress(pickle.dumps(value, protocol=4))
            ).decode("ascii")
        except Exception:
            self.stats.write_failures += 1
            return False
        record = {
            "schema": STORE_SCHEMA,
            "config_digest": key.digest,
            "code_signature": key.signature,
            "fn": key.fn,
            "created_at": _utc_now(),
            "environment": environment_stamp(self._repo_root),
            "payload_format": "pickle4+zlib+base64",
            "payload": payload,
        }
        if telemetry:
            record["telemetry"] = telemetry
        self._atomic_write_json(self._record_path(key), record)
        self.stats.writes += 1
        return True

    def _read_record(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if record.get("schema") != STORE_SCHEMA:
            return None
        return record

    def _atomic_write_json(self, path: str, record: Dict[str, Any]) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Inspection / maintenance
    # ------------------------------------------------------------------

    def ls(self) -> List[Dict[str, Any]]:
        """Every record's header (payload elided), sorted by path."""
        entries: List[Dict[str, Any]] = []
        objects = os.path.join(self.root, "objects")
        for path in sorted(_walk_json(objects)):
            record = self._read_record(path)
            if record is None:
                continue
            entries.append(
                {
                    "config_digest": record.get("config_digest"),
                    "code_signature": record.get("code_signature"),
                    "fn": record.get("fn"),
                    "created_at": record.get("created_at"),
                    "git_sha": (record.get("environment") or {}).get("git_sha"),
                    "bytes": os.path.getsize(path),
                    "path": os.path.relpath(path, self.root),
                }
            )
        return entries

    def ls_bench(self) -> List[Dict[str, Any]]:
        """Every shelved benchmark baseline (kind, env, path)."""
        entries: List[Dict[str, Any]] = []
        bench = os.path.join(self.root, "bench")
        for path in sorted(_walk_json(bench)):
            rel = os.path.relpath(path, bench)
            parts = rel.split(os.sep)
            if len(parts) != 3:
                continue
            kind, env_digest, name = parts
            entries.append(
                {
                    "kind": kind,
                    "environment_digest": env_digest,
                    "name": name,
                    "bytes": os.path.getsize(path),
                    "path": os.path.relpath(path, self.root),
                }
            )
        return entries

    def gc(self, mode: str = "stale", dry_run: bool = False) -> Dict[str, Any]:
        """Remove records; ``mode`` is ``"stale"`` (default) or ``"all"``.

        ``stale`` removes object records whose code signature is no longer
        the current signature of their function's module (including records
        whose module vanished).  ``all`` clears every object record.  Bench
        baselines are never collected (they are the point of keeping
        history).  Returns a summary dict.
        """
        if mode not in ("stale", "all"):
            raise ValueError(f"unknown gc mode {mode!r}")
        removed: List[str] = []
        kept = 0
        freed = 0
        current: Dict[str, Optional[str]] = {}
        objects = os.path.join(self.root, "objects")
        for path in sorted(_walk_json(objects)):
            record = self._read_record(path)
            stale = record is None
            if record is not None and mode == "stale":
                fn = record.get("fn") or ""
                modname = fn.split(":", 1)[0]
                if modname not in current:
                    current[modname] = self.index.signature(modname)
                stale = record.get("code_signature") != current[modname]
            elif record is not None:  # mode == "all"
                stale = True
            if stale:
                removed.append(os.path.relpath(path, self.root))
                freed += os.path.getsize(path)
                if not dry_run:
                    os.unlink(path)
            else:
                kept += 1
        if not dry_run:
            _prune_empty_dirs(objects)
        return {
            "mode": mode,
            "dry_run": dry_run,
            "removed": removed,
            "kept": kept,
            "bytes_freed": freed,
        }

    def telemetry(self, key: TaskKey) -> Optional[Dict[str, Any]]:
        """The telemetry stored with this exact ``(digest, signature)``."""
        record = self._read_record(self._record_path(key))
        if record is not None and record.get("code_signature") == key.signature:
            return record.get("telemetry")
        return None

    def previous_record(self, key: TaskKey) -> Optional[Dict[str, Any]]:
        """The newest record of this row under a *different* signature.

        This is the record an invalidated lookup displaced: same config
        digest, older code.  ``repro store diff --counters`` compares its
        telemetry against the current signature's to show how the row's
        deterministic work moved when the code did.
        """
        row_dir = self._row_dir(key.digest)
        own = key.signature[:_SIG_PREFIX] + ".json"
        try:
            names = [
                n
                for n in os.listdir(row_dir)
                if n.endswith(".json") and n != own
            ]
        except OSError:
            return None
        best: Optional[Dict[str, Any]] = None
        for name in sorted(names):
            record = self._read_record(os.path.join(row_dir, name))
            if record is None:
                continue
            if best is None or (record.get("created_at") or "") >= (
                best.get("created_at") or ""
            ):
                best = record
        return best

    def diff_tasks(
        self,
        tasks: List[Tuple[Callable[..., Any], Dict[str, Any]]],
        with_telemetry: bool = False,
    ) -> Dict[str, Any]:
        """What a sweep over ``tasks`` would do, without running anything.

        ``with_telemetry`` additionally attaches each row's stored
        telemetry under the current signature (``telemetry``; hits only)
        and under the newest displaced signature (``previous_telemetry``),
        so callers can compute per-counter work deltas across the code
        change without executing a row.
        """
        counts = {"hit": 0, "invalidated": 0, "miss": 0, "unstorable": 0}
        rows: List[Dict[str, Any]] = []
        for fn, kwargs in tasks:
            key = self.key_for(fn, kwargs)
            if key is None:
                counts["unstorable"] += 1
                rows.append({"fn": fn_identity(fn), "status": "unstorable"})
                continue
            status = self.probe(key)
            counts[status] += 1
            row = {
                "fn": key.fn,
                "status": status,
                "config_digest": key.digest,
                "code_signature": key.signature,
            }
            if with_telemetry:
                row["telemetry"] = (
                    self.telemetry(key) if status == "hit" else None
                )
                previous = self.previous_record(key)
                row["previous_telemetry"] = (
                    previous.get("telemetry") if previous else None
                )
            rows.append(row)
        return {"counts": counts, "tasks": rows}

    # ------------------------------------------------------------------
    # Benchmark baselines
    # ------------------------------------------------------------------

    def put_bench(self, kind: str, report: Dict[str, Any]) -> str:
        """Shelve a benchmark report as a queryable baseline; returns path."""
        env = report.get("environment") or environment_stamp(self._repo_root)
        env_digest = environment_digest(env)
        sha = (env.get("git_sha") or "local")[:12]
        name = f"{_utc_now().replace(':', '')}-{sha}.json"
        path = os.path.join(self.root, "bench", kind, env_digest, name)
        self._atomic_write_json(path, report)
        return path

    def latest_bench(
        self, kind: str, env_digest: Optional[str] = None
    ) -> Optional[Tuple[str, Dict[str, Any]]]:
        """The most recent shelved report of ``kind`` for this environment."""
        env_digest = env_digest or environment_digest()
        directory = os.path.join(self.root, "bench", kind, env_digest)
        try:
            names = sorted(n for n in os.listdir(directory) if n.endswith(".json"))
        except OSError:
            return None
        for name in reversed(names):
            path = os.path.join(directory, name)
            report = self._read_bench(path)
            if report is not None:
                return path, report
        return None

    def _read_bench(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None


def _decode_payload(record: Dict[str, Any]) -> Any:
    if record.get("payload_format") != "pickle4+zlib+base64":
        raise ValueError(f"unknown payload format {record.get('payload_format')!r}")
    return pickle.loads(zlib.decompress(base64.b64decode(record["payload"])))


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _walk_json(root: str) -> List[str]:
    paths: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.endswith(".json"):
                paths.append(os.path.join(dirpath, name))
    return paths


def _prune_empty_dirs(root: str) -> None:
    # Bottom-up so a parent is visited after its children were removed;
    # rmdir on a still-populated (or concurrently written) dir just fails.
    for dirpath, _dirnames, _filenames in os.walk(root, topdown=False):
        if dirpath != root:
            try:
                os.rmdir(dirpath)
            except OSError:
                pass
