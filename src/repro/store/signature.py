"""Code signatures: hash the source a task transitively depends on.

A stored result is only reusable while the code that produced it is
unchanged.  Tracking that at commit granularity (git SHA) would invalidate
every row on every commit; instead we reuse the simtrie/PR-2 idea — skip
work whose *inputs* are provably unchanged — at sweep granularity: the
signature of a task is a SHA-256 over the sources of every first-party
module its function transitively imports.

The import closure is computed *statically* (``ast`` walk over each
module's source, including imports inside function bodies, which is where
the worker-side runners do theirs) and restricted to registered root
packages (``repro`` by default; tests register temporary packages).  Parent
packages ride along — their ``__init__`` runs at import time and can change
behaviour.  Third-party and stdlib imports are deliberately outside the
signature: the environment stamp on each record covers those.

Granularity is the module closure of the task *function's module*: editing
any module a task's code can reach re-executes its rows; editing a module
it cannot reach does not.  Tasks defined in modules outside every
registered root have no signature (``None``) and are never stored.

File hashes are cached per ``(mtime_ns, size)`` so a 10,000-row sweep pays
for each source file once, while an edit mid-process is still noticed.
"""

from __future__ import annotations

import ast
import hashlib
import os
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

SIGNATURE_SCHEMA = "repro-codesig/1"


class ModuleSignatureIndex:
    """Source hashes and static import closures for a set of root packages.

    ``roots`` maps a top-level package name to the directory *containing*
    it (so ``{"repro": ".../src"}`` resolves ``repro.kernel.system`` to
    ``.../src/repro/kernel/system.py``).  The default root is the installed
    ``repro`` package.
    """

    def __init__(self, roots: Optional[Mapping[str, str]] = None):
        if roots is None:
            import repro

            package_dir = os.path.dirname(os.path.abspath(repro.__file__))
            roots = {"repro": os.path.dirname(package_dir)}
        self._roots: Dict[str, str] = {
            name: os.path.abspath(path) for name, path in roots.items()
        }
        # path -> ((mtime_ns, size), source_sha, deps)
        self._file_cache: Dict[str, Tuple[Tuple[int, int], str, FrozenSet[str]]] = {}

    # ------------------------------------------------------------------
    # Module resolution
    # ------------------------------------------------------------------

    def roots(self) -> Dict[str, str]:
        return dict(self._roots)

    def add_root(self, package: str, containing_dir: str) -> None:
        self._roots[package] = os.path.abspath(containing_dir)

    def module_path(self, modname: str) -> Optional[str]:
        """The source file of ``modname``, or ``None`` if outside the roots."""
        top = modname.split(".", 1)[0]
        root = self._roots.get(top)
        if root is None:
            return None
        base = os.path.join(root, *modname.split("."))
        for candidate in (base + ".py", os.path.join(base, "__init__.py")):
            if os.path.isfile(candidate):
                return candidate
        return None

    def _ancestors(self, modname: str) -> Iterable[str]:
        parts = modname.split(".")
        for i in range(1, len(parts)):
            yield ".".join(parts[:i])

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def _scan(self, modname: str, path: str) -> Tuple[str, FrozenSet[str]]:
        """``(source sha, resolvable static imports)`` of one module file."""
        stat = os.stat(path)
        token = (stat.st_mtime_ns, stat.st_size)
        cached = self._file_cache.get(path)
        if cached is not None and cached[0] == token:
            return cached[1], cached[2]
        with open(path, "rb") as fh:
            source = fh.read()
        sha = hashlib.sha256(source).hexdigest()
        deps: Set[str] = set()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            tree = None
        if tree is not None:
            is_package = os.path.basename(path) == "__init__.py"
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self._note(deps, alias.name)
                elif isinstance(node, ast.ImportFrom):
                    base = self._from_base(modname, is_package, node)
                    if base is None:
                        continue
                    self._note(deps, base)
                    for alias in node.names:
                        if alias.name != "*":
                            self._note(deps, f"{base}.{alias.name}")
        result = (sha, frozenset(deps))
        self._file_cache[path] = (token, sha, result[1])
        return result

    def _from_base(
        self, modname: str, is_package: bool, node: ast.ImportFrom
    ) -> Optional[str]:
        """The absolute module a ``from ... import`` statement targets."""
        if not node.level:
            return node.module
        # Relative import: level 1 is the current package.
        parts = modname.split(".") if is_package else modname.split(".")[:-1]
        strip = node.level - 1
        if strip:
            if strip >= len(parts):
                return None
            parts = parts[: len(parts) - strip]
        if not parts:
            return None
        base = ".".join(parts)
        return f"{base}.{node.module}" if node.module else base

    def _note(self, deps: Set[str], modname: str) -> None:
        """Record ``modname`` (and its ancestor packages) if it resolves."""
        if self.module_path(modname) is not None:
            deps.add(modname)
            for ancestor in self._ancestors(modname):
                if self.module_path(ancestor) is not None:
                    deps.add(ancestor)
        else:
            # ``from pkg.mod import name`` where name is not a module:
            # pkg.mod itself was noted by the caller; nothing to add here.
            pass

    # ------------------------------------------------------------------
    # Closures and signatures
    # ------------------------------------------------------------------

    def closure(self, modname: str) -> FrozenSet[str]:
        """``modname`` plus every root-package module it can reach."""
        start = self.module_path(modname)
        if start is None:
            return frozenset()
        seen: Set[str] = set()
        frontier: List[str] = [modname]
        for ancestor in self._ancestors(modname):
            if self.module_path(ancestor) is not None:
                frontier.append(ancestor)
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            path = self.module_path(current)
            if path is None:
                continue
            _, deps = self._scan(current, path)
            frontier.extend(dep for dep in deps if dep not in seen)
        return frozenset(seen)

    def signature(self, modname: str) -> Optional[str]:
        """SHA-256 over the sorted (module, source sha) pairs of the closure.

        ``None`` when ``modname`` lives outside every registered root — the
        caller must then treat the task as unstorable.
        """
        if self.module_path(modname) is None:
            return None
        digest = hashlib.sha256(SIGNATURE_SCHEMA.encode("utf-8"))
        for module in sorted(self.closure(modname)):
            path = self.module_path(module)
            if path is None:  # pragma: no cover - raced file removal
                continue
            sha, _ = self._scan(module, path)
            digest.update(b"\x00")
            digest.update(module.encode("utf-8"))
            digest.update(b"\x01")
            digest.update(sha.encode("utf-8"))
        return digest.hexdigest()

    def refresh(self) -> None:
        """Drop all file caches (tests that rewrite sources mid-run)."""
        self._file_cache.clear()


_DEFAULT_INDEX: Optional[ModuleSignatureIndex] = None


def default_index() -> ModuleSignatureIndex:
    """The process-wide index over the installed ``repro`` package."""
    global _DEFAULT_INDEX
    if _DEFAULT_INDEX is None:
        _DEFAULT_INDEX = ModuleSignatureIndex()
    return _DEFAULT_INDEX


def code_signature(
    fn: Callable[..., object], index: Optional[ModuleSignatureIndex] = None
) -> Optional[str]:
    """The code signature of a task function (see module docstring)."""
    return (index or default_index()).signature(fn.__module__)
