"""CLI bodies for ``repro sweep`` and ``repro store {ls,gc,diff}``.

Thin veneers over :mod:`repro.harness.spec` and :mod:`repro.store.store`;
argument registration lives in :mod:`repro.cli` next to the other
subcommands.  Usage documentation: ``docs/sweeps.md``.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Any, Dict, List, Optional

from repro.store.store import ResultStore, default_store_root


def _open_store(args) -> ResultStore:
    return ResultStore(getattr(args, "store_dir", None) or default_store_root())


def _stats_line(store: ResultStore) -> str:
    stats = store.stats
    rate = f"{100.0 * stats.hit_rate:.1f}%" if stats.lookups else "n/a"
    return (
        f"store: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.invalidated} invalidated, {stats.skipped} unstorable, "
        f"{stats.writes} written (hit rate {rate})"
    )


def cmd_sweep(args) -> int:
    """Run the spec file's sweep(s) through the store; print the tables."""
    from repro.harness.spec import SpecError, load_specs

    try:
        specs = load_specs(args.spec)
    except (OSError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    store: Optional[ResultStore] = None if args.no_store else _open_store(args)
    sections: List[str] = []
    spec_names: List[str] = []
    for spec in specs:
        table = spec.run(jobs=args.jobs, batch=args.batch, store=store)
        sections.append(table.render())
        spec_names.append(spec.name or spec.experiment)
    rendered = "\n\n".join(sections) + "\n"
    sys.stdout.write(rendered)

    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered)
        print(f"(table written to {args.output})")

    stats: Dict[str, Any] = {
        "spec": args.spec,
        "sweeps": spec_names,
        "jobs": args.jobs,
        "batch": args.batch,
        "store": None if store is None else store.root,
        "table_sha256": hashlib.sha256(rendered.encode("utf-8")).hexdigest(),
    }
    if store is not None:
        print(_stats_line(store))
        stats.update(store.stats.as_dict())
        stats["hit_rate"] = store.stats.hit_rate
    if args.stats_json:
        with open(args.stats_json, "w") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"(stats written to {args.stats_json})")

    if args.require_warm is not None:
        if store is None:
            print("error: --require-warm needs the store", file=sys.stderr)
            return 2
        if store.stats.hit_rate < args.require_warm:
            print(
                f"warm-cache requirement failed: hit rate "
                f"{store.stats.hit_rate:.3f} < {args.require_warm:.3f}",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_store(args) -> int:
    action = args.action
    if action == "ls":
        return _store_ls(args)
    if action == "gc":
        return _store_gc(args)
    if action == "diff":
        if not getattr(args, "spec", None):
            print("error: 'store diff' needs a spec file", file=sys.stderr)
            return 2
        return _store_diff(args)
    raise SystemExit(f"unknown store action {action!r}")  # pragma: no cover


def _store_ls(args) -> int:
    store = _open_store(args)
    objects = store.ls()
    bench = store.ls_bench()
    if args.json:
        json.dump(
            {"root": store.root, "objects": objects, "bench": bench},
            sys.stdout,
            indent=2,
            sort_keys=True,
        )
        sys.stdout.write("\n")
        return 0
    print(f"store: {store.root}")
    print(f"objects: {len(objects)} record(s)")
    for entry in objects:
        print(
            f"  {entry['config_digest'][:12]} sig={entry['code_signature'][:12]} "
            f"{entry['fn']} {entry['bytes']}B {entry['created_at']}"
        )
    print(f"bench baselines: {len(bench)} record(s)")
    for entry in bench:
        print(
            f"  {entry['kind']}/{entry['environment_digest']}/{entry['name']} "
            f"{entry['bytes']}B"
        )
    return 0


def _store_gc(args) -> int:
    store = _open_store(args)
    summary = store.gc(mode="all" if args.all else "stale", dry_run=args.dry_run)
    verb = "would remove" if summary["dry_run"] else "removed"
    print(
        f"gc[{summary['mode']}]: {verb} {len(summary['removed'])} record(s), "
        f"kept {summary['kept']}, {summary['bytes_freed']}B freed"
    )
    if args.verbose:
        for path in summary["removed"]:
            print(f"  - {path}")
    return 0


def _store_diff(args) -> int:
    """What a sweep over SPEC would re-run right now (no execution)."""
    from repro.harness.parallel import SweepTask
    from repro.harness.spec import SpecError, load_specs

    try:
        specs = load_specs(args.spec)
    except (OSError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = _open_store(args)

    # Expand each spec's tasks without running them: intercept run_sweep
    # at both its definition site and the experiments module's imported
    # name (the sweeps call the bare name).
    from repro.harness import experiments, parallel

    captured: List[SweepTask] = []
    originals = (parallel.run_sweep, experiments.run_sweep)

    def _capture(tasks, **kwargs):
        captured.extend(list(tasks))
        raise _DiffDone()

    with_counters = bool(getattr(args, "counters", False))
    per_spec: List[Dict[str, Any]] = []
    for spec in specs:
        captured.clear()
        parallel.run_sweep = _capture  # type: ignore[assignment]
        experiments.run_sweep = _capture  # type: ignore[assignment]
        try:
            spec.run(jobs=1)
        except _DiffDone:
            pass
        finally:
            parallel.run_sweep, experiments.run_sweep = originals
        diff = store.diff_tasks(
            [(t.fn, t.kwargs) for t in captured],
            with_telemetry=with_counters,
        )
        per_spec.append({"sweep": spec.name, **diff})

    if args.json:
        json.dump(
            {"spec": args.spec, "store": store.root, "sweeps": per_spec},
            sys.stdout,
            indent=2,
            sort_keys=True,
        )
        sys.stdout.write("\n")
        return 0
    would_run = 0
    for entry in per_spec:
        counts = entry["counts"]
        would_run += counts["miss"] + counts["invalidated"] + counts["unstorable"]
        print(
            f"{entry['sweep']}: {counts['hit']} cached, {counts['miss']} new, "
            f"{counts['invalidated']} invalidated by code changes, "
            f"{counts['unstorable']} unstorable"
        )
        if with_counters:
            _print_counter_deltas(entry)
    print(f"a sweep now would execute {would_run} task(s)")
    return 0


def _print_counter_deltas(entry: Dict[str, Any]) -> None:
    """Summed per-counter work deltas of one sweep's telemetry rows.

    ``current - previous`` over every row that carries telemetry under
    both the current and a displaced code signature, so the number reads
    "how much more (or less) deterministic work the new code does on the
    rows it already ran".  Rows without stored telemetry (untraced
    sweeps, fresh rows) are counted but contribute nothing.
    """
    current: Dict[str, int] = {}
    previous: Dict[str, int] = {}
    compared = 0
    for row in entry.get("tasks", []):
        now = (row.get("telemetry") or {}).get("counters")
        then = (row.get("previous_telemetry") or {}).get("counters")
        if not (now and then):
            continue
        compared += 1
        for name, value in now.items():
            current[name] = current.get(name, 0) + int(value)
        for name, value in then.items():
            previous[name] = previous.get(name, 0) + int(value)
    if not compared:
        print("  counters: no rows carry telemetry under both signatures")
        return
    deltas = sorted(
        (
            (name, current.get(name, 0), previous.get(name, 0))
            for name in set(current) | set(previous)
            if current.get(name, 0) != previous.get(name, 0)
        ),
        key=lambda item: (-abs(item[1] - item[2]), item[0]),
    )
    if not deltas:
        print(f"  counters: identical across {compared} telemetry row(s)")
        return
    print(f"  counter deltas over {compared} telemetry row(s) (now - then):")
    for name, now_total, then_total in deltas[:12]:
        print(
            f"    {name:<32} {then_total} -> {now_total} "
            f"({now_total - then_total:+d})"
        )


class _DiffDone(Exception):
    """Internal: stop an experiment after its tasks were captured."""
