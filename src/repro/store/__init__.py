"""``repro.store`` — a content-addressed result store for sweeps.

Every experiment table in this reproduction is an aggregate over thousands
of independent, seeded runs.  Re-running a sweep after a small code change
re-executes all of them, although almost none *moved*.  This package makes
"what moved?" a first-class question:

* :func:`config_digest` — a canonical SHA-256 of a task's ``(fn, kwargs)``
  (insertion-order free, detector-aware, stable float form);
* :func:`code_signature` — a SHA-256 over the sources of every first-party
  module the task's function transitively imports (the simtrie/PR-2
  fresh-signature idea applied at sweep granularity);
* :class:`ResultStore` — atomic, merge-safe records keyed by the pair,
  living under ``benchmarks/results/store/`` (gitignored), plus shelved
  benchmark baselines per machine environment.

The sweep driver (:func:`repro.harness.parallel.run_sweep`) consults the
store before dispatching: unchanged rows are served from disk, only moved
rows execute, and the ``store.hit`` / ``store.miss`` / ``store.invalidated``
counters say which was which.  Warm re-runs render byte-identical tables.

CLI: ``python -m repro sweep SPEC`` and ``python -m repro store {ls,gc,diff}``
(see ``docs/sweeps.md``).
"""

from repro.store.digest import (
    DIGEST_SCHEMA,
    UndigestableError,
    canonical,
    config_digest,
    fn_identity,
)
from repro.store.signature import (
    ModuleSignatureIndex,
    code_signature,
    default_index,
)
from repro.store.store import (
    STORE_SCHEMA,
    ResultStore,
    StoreStats,
    TaskKey,
    default_store_root,
)

__all__ = [
    "DIGEST_SCHEMA",
    "STORE_SCHEMA",
    "ModuleSignatureIndex",
    "ResultStore",
    "StoreStats",
    "TaskKey",
    "UndigestableError",
    "canonical",
    "code_signature",
    "config_digest",
    "default_index",
    "default_store_root",
    "fn_identity",
]
