"""repro — an executable reproduction of
*The weakest failure detector to solve nonuniform consensus*
(Eisler, Hadzilacos, Toueg; PODC 2005 / Distributed Computing 2007).

The package builds the paper's model of asynchronous computation with
failure detectors as a deterministic, seedable simulator, implements every
algorithm in the paper (A_DAG, T_{D->Sigma^nu}, T_{Sigma^nu->Sigma^nu+},
A_nuc) plus the baselines it builds on, and validates each theorem
empirically.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the per-theorem experiment results.

Quickstart::

    import random
    from repro import (
        AnucProcess, FailurePattern, Omega, PairedDetector, SigmaNuPlus,
        System,
    )

    pattern = FailurePattern(4, {3: 20})          # process 3 crashes at t=20
    detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, random.Random(1))
    processes = {p: AnucProcess(f"value-{p}") for p in range(4)}
    system = System(processes, pattern, history, seed=1)
    result = system.run(max_steps=20000,
                        stop_when=lambda s: s.all_correct_decided())
    print(result.decisions)
"""

from repro.consensus import (
    ConsensusOutcome,
    FloodSetPerfect,
    MostefaouiRaynal,
    NaiveSigmaNuConsensus,
    QuorumMR,
    check_nonuniform_consensus,
    check_uniform_consensus,
    consensus_outcome,
)
from repro.core import (
    AnucAutomaton,
    AnucProcess,
    DagBuilder,
    DagCore,
    Sample,
    SampleDAG,
    SigmaNuExtractor,
    SigmaNuPlusBooster,
    StackedNucProcess,
)
from repro.detectors import (
    AdaptiveHistory,
    Omega,
    PairedDetector,
    Perfect,
    RecordedHistory,
    ScheduleHistory,
    Sigma,
    SigmaNu,
    SigmaNuPlus,
    check_omega,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
    recorded_output_history,
)
from repro.kernel import (
    Automaton,
    AutomatonProcess,
    Environment,
    FailurePattern,
    Message,
    Process,
    ProcessContext,
    RunResult,
    Schedule,
    Step,
    System,
)
from repro.kernel.failures import DeferredCrashPattern
from repro.kernel.messages import CoalescingDelivery
from repro.registers import (
    RegisterClient,
    RegisterHarness,
    check_register_safety,
    run_lost_write_scenario,
)
from repro.separation import (
    FromScratchSigma,
    run_contamination_scenario,
    run_partition_adversary,
)
from repro.smr import ReplicatedLogProcess, check_smr, run_replicated_log

__version__ = "1.0.0"

__all__ = [
    "AdaptiveHistory",
    "AnucAutomaton",
    "AnucProcess",
    "Automaton",
    "AutomatonProcess",
    "CoalescingDelivery",
    "ConsensusOutcome",
    "DagBuilder",
    "DagCore",
    "DeferredCrashPattern",
    "Environment",
    "FailurePattern",
    "FloodSetPerfect",
    "FromScratchSigma",
    "Message",
    "MostefaouiRaynal",
    "NaiveSigmaNuConsensus",
    "Omega",
    "PairedDetector",
    "Perfect",
    "Process",
    "ProcessContext",
    "QuorumMR",
    "RecordedHistory",
    "RegisterClient",
    "RegisterHarness",
    "ReplicatedLogProcess",
    "RunResult",
    "Sample",
    "SampleDAG",
    "Schedule",
    "ScheduleHistory",
    "Sigma",
    "SigmaNu",
    "SigmaNuExtractor",
    "SigmaNuPlus",
    "SigmaNuPlusBooster",
    "StackedNucProcess",
    "Step",
    "System",
    "check_nonuniform_consensus",
    "check_register_safety",
    "check_smr",
    "check_omega",
    "check_sigma",
    "check_sigma_nu",
    "check_sigma_nu_plus",
    "check_uniform_consensus",
    "consensus_outcome",
    "recorded_output_history",
    "run_contamination_scenario",
    "run_lost_write_scenario",
    "run_partition_adversary",
    "run_replicated_log",
    "__version__",
]
