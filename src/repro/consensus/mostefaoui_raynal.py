"""The Mostéfaoui-Raynal leader-based consensus algorithm [6].

This is the starting point of the paper's Section 6.3: it uses Omega to
solve *uniform* consensus in environments with a correct majority.  Each
asynchronous round has three phases:

1. broadcast a leader message with the current estimate; wait for the leader
   message of the process currently output by Omega and adopt its estimate;
2. broadcast a report with the estimate; wait for reports from a majority;
   propose ``v`` if the reports were unanimously ``v``, else propose ``?``;
3. broadcast the proposal; wait for proposals from a majority; adopt any
   ``v != ?`` received; decide ``v`` if a majority proposed ``v``.

Majority intersection gives the two key properties (A) and (B) the paper
quotes; the quorum generalizations in :mod:`repro.consensus.quorum_mr` swap
majorities for failure-detector quorums.

The implementation is a *pure automaton* so that it can be the subject
algorithm ``A`` of the necessity construction ``T_{D -> Sigma^nu}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.kernel.automaton import Automaton, DeliveredMessage, TransitionOutcome
from repro import obs as _obs

UNKNOWN = "?"

LEAD = "LEAD"
REP = "REP"
PROP = "PROP"


@dataclass
class _RoundState:
    """Per-process state of the phased leader/report/propose loop."""

    pid: int
    n: int
    x: Any
    round: int = 1
    phase: str = LEAD
    decided: Optional[Any] = None
    # (tag, round) -> {sender: value}
    msgs: Dict[Tuple[str, int], Dict[int, Any]] = field(default_factory=dict)
    round_opened: bool = False

    def record(self, sender: int, tag: str, rnd: int, value: Any) -> None:
        self.msgs.setdefault((tag, rnd), {})[sender] = value

    def received(self, tag: str, rnd: int) -> Dict[int, Any]:
        return self.msgs.get((tag, rnd), {})


class LeaderQuorumConsensus(Automaton):
    """Shared machinery for MR-style leader/quorum consensus automata.

    Subclasses define how a *collection set* is obtained from the detector
    value (majorities for MR, detector quorums for the Sigma variants) and
    whether deciding requires a unanimous collection.
    """

    #: human-readable algorithm name
    name = "leader-quorum-consensus"

    #: ``transition`` loops ``_try_advance`` to a fixpoint of
    #: ``(state, msgs, d)``, so an empty delivery under an unchanged
    #: detector value can never fire a wait that the previous step left
    #: unsatisfied — the λ-step no-op contract holds for the whole family.
    lambda_quiescent = True

    # -- hooks ----------------------------------------------------------

    def leader_of(self, d: Any) -> int:
        """The Omega component of the detector value."""
        raise NotImplementedError

    def collection_ready(
        self, state: _RoundState, d: Any, tag: str
    ) -> Optional[FrozenSet[int]]:
        """If the wait of phase ``tag`` is satisfied, the set collected from.

        Re-evaluated at every step (the pseudocode's ``repeat ... until``),
        with the *current* detector value.  ``None`` keeps waiting.
        """
        raise NotImplementedError

    # -- Automaton interface ---------------------------------------------

    def initial_state(self, pid: int, n: int, proposal: Any) -> _RoundState:
        return _RoundState(pid=pid, n=n, x=proposal)

    def decision(self, state: _RoundState) -> Optional[Any]:
        return state.decided

    def copy_state(self, state: _RoundState) -> _RoundState:
        # Two levels of dict copying reach every mutable part of the state
        # (payload values are immutable tuples/scalars); much cheaper than
        # the generic deepcopy on the simulation trie's snapshot path.
        return _RoundState(
            pid=state.pid,
            n=state.n,
            x=state.x,
            round=state.round,
            phase=state.phase,
            decided=state.decided,
            msgs={key: dict(senders) for key, senders in state.msgs.items()},
            round_opened=state.round_opened,
        )

    def snapshot(self, state: _RoundState) -> Any:
        msgs = tuple(
            (key, tuple(sorted(senders.items(), key=lambda kv: kv[0])))
            for key, senders in sorted(state.msgs.items())
        )
        return (
            state.pid,
            state.round,
            state.phase,
            state.x,
            state.decided,
            state.round_opened,
            msgs,
        )

    def transition(
        self,
        state: _RoundState,
        pid: int,
        msg: Optional[DeliveredMessage],
        d: Any,
    ) -> TransitionOutcome:
        sends: List[Tuple[int, Any]] = []
        if msg is not None:
            tag, rnd, value = msg.payload
            state.record(msg.sender, tag, rnd, value)

        # Drive the phase machine as far as the received messages allow;
        # several phases may fire within one step if their waits are already
        # satisfied (the state change of a step is arbitrary).  Processes
        # keep participating after deciding (decisions are irrevocable, but
        # laggards still need the decider's later-round messages).
        progressed = True
        while progressed:
            progressed = self._try_advance(state, d, sends)
        return TransitionOutcome(state=state, sends=sends)

    # -- phase machine ----------------------------------------------------

    def _broadcast(
        self, state: _RoundState, sends: List[Tuple[int, Any]], payload: Any
    ) -> None:
        for dest in range(state.n):
            sends.append((dest, payload))
        # A process "receives" its own broadcast through the buffer like
        # everyone else; no short-circuiting, to keep schedules honest.

    def _try_advance(
        self, state: _RoundState, d: Any, sends: List[Tuple[int, Any]]
    ) -> bool:
        if not state.round_opened:
            self._broadcast(state, sends, (LEAD, state.round, state.x))
            state.round_opened = True
            return True

        if state.phase == LEAD:
            leader = self.leader_of(d)
            leads = state.received(LEAD, state.round)
            if leader in leads:
                state.x = leads[leader]
                state.phase = REP
                self._broadcast(state, sends, (REP, state.round, state.x))
                return True
            return False

        if state.phase == REP:
            collected = self.collection_ready(state, d, REP)
            if collected is None:
                return False
            reports = state.received(REP, state.round)
            values = {reports[q] for q in collected}
            if len(values) == 1:
                (proposal,) = values
            else:
                proposal = UNKNOWN
            state.phase = PROP
            self._broadcast(state, sends, (PROP, state.round, proposal))
            return True

        if state.phase == PROP:
            collected = self.collection_ready(state, d, PROP)
            if collected is None:
                return False
            proposals = state.received(PROP, state.round)
            collected_values = [proposals[q] for q in sorted(collected)]
            non_unknown = [v for v in collected_values if v != UNKNOWN]
            if non_unknown:
                state.x = non_unknown[0]
            if state.decided is None and self._may_decide(
                state, collected, collected_values, proposals
            ):
                state.decided = state.x
            state.round += 1
            state.phase = LEAD
            state.round_opened = False
            if _obs._ENABLED:
                _obs.metrics().inc(f"consensus.rounds.{self.name}")
            return True

        raise AssertionError(f"unknown phase {state.phase!r}")

    def _may_decide(
        self,
        state: _RoundState,
        collected: FrozenSet[int],
        collected_values: List[Any],
        all_proposals: Dict[int, Any],
    ) -> bool:
        raise NotImplementedError


class MostefaouiRaynal(LeaderQuorumConsensus):
    """MR consensus with Omega and majorities (correct-majority environments).

    Detector value: the Omega output (a process id).
    """

    name = "mostefaoui-raynal"

    def leader_of(self, d: Any) -> int:
        return d

    def _majority(self, n: int) -> int:
        return n // 2 + 1

    def collection_ready(self, state, d, tag):
        received = state.received(tag, state.round)
        maj = self._majority(state.n)
        if len(received) >= maj:
            # The collection is the first majority by sender id, a
            # deterministic choice among the majorities available.
            return frozenset(sorted(received)[:maj])
        return None

    def _may_decide(self, state, collected, collected_values, all_proposals):
        # Decide when a majority proposed the same v != '?'.  All non-'?'
        # round proposals are equal (property (A)), so counting the round's
        # received proposals is sound.
        maj = self._majority(state.n)
        non_unknown = [v for v in all_proposals.values() if v != UNKNOWN]
        if not non_unknown:
            return False
        v = non_unknown[0]
        return sum(1 for w in all_proposals.values() if w == v) >= maj
