"""Shared consensus plumbing: outcomes extracted from runs.

A consensus problem instance is a proposal per process; an outcome is what a
finite run exhibits: who decided what, and when.  The verifiers in
:mod:`repro.consensus.properties` judge outcomes against the problem's
properties (Section 2.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.kernel.failures import FailurePattern
from repro.kernel.system import RunResult


@dataclass
class ConsensusOutcome:
    """Decisions observed in one run of a consensus algorithm."""

    n: int
    pattern: FailurePattern
    proposals: Dict[int, Any]
    decisions: Dict[int, Any]
    decision_times: Dict[int, int] = field(default_factory=dict)

    @property
    def correct_decisions(self) -> Dict[int, Any]:
        return {p: v for p, v in self.decisions.items() if p in self.pattern.correct}

    @property
    def all_correct_decided(self) -> bool:
        return set(self.correct_decisions) == set(self.pattern.correct)


def consensus_outcome(
    result: RunResult, proposals: Mapping[int, Any]
) -> ConsensusOutcome:
    """Extract the consensus outcome of a live run."""
    return ConsensusOutcome(
        n=result.n,
        pattern=result.pattern,
        proposals=dict(proposals),
        decisions=dict(result.decisions),
        decision_times=dict(result.decision_times),
    )
