"""Verifiers for the consensus properties (Section 2.8).

Nonuniform consensus requires, of every admissible run:

* Termination — every correct process decides;
* Nonuniform agreement — no two *correct* processes decide differently;
* Validity — every decided value was proposed.

Uniform consensus strengthens agreement to all processes, correct or faulty.
The verifiers work on :class:`~repro.consensus.interface.ConsensusOutcome`
objects and report which property failed and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.consensus.interface import ConsensusOutcome


@dataclass
class PropertyReport:
    """Outcome of checking one consensus variant against one run."""

    variant: str
    ok: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else "FAIL: " + "; ".join(self.violations)
        return f"PropertyReport({self.variant}: {status})"


def _check_common(
    outcome: ConsensusOutcome,
    report: PropertyReport,
    require_termination: bool,
) -> None:
    # Termination: every correct process decides.
    if require_termination:
        undecided = sorted(set(outcome.pattern.correct) - set(outcome.decisions))
        if undecided:
            report.ok = False
            report.violations.append(
                f"termination: correct processes {undecided} never decided"
            )

    # Validity: decided values were proposed.
    proposed = set(outcome.proposals.values())
    for p, v in outcome.decisions.items():
        if v not in proposed:
            report.ok = False
            report.violations.append(
                f"validity: process {p} decided {v!r}, which nobody proposed"
            )


def check_nonuniform_consensus(
    outcome: ConsensusOutcome, require_termination: bool = True
) -> PropertyReport:
    """Termination + validity + *nonuniform* agreement."""
    report = PropertyReport(variant="nonuniform", ok=True)
    _check_common(outcome, report, require_termination)

    values = {}
    for p, v in outcome.correct_decisions.items():
        values.setdefault(v, []).append(p)
    if len(values) > 1:
        report.ok = False
        report.violations.append(
            f"nonuniform agreement: correct processes decided differently: "
            f"{{{', '.join(f'{v!r}: {ps}' for v, ps in values.items())}}}"
        )
    return report


def check_uniform_consensus(
    outcome: ConsensusOutcome, require_termination: bool = True
) -> PropertyReport:
    """Termination + validity + *uniform* agreement (all deciders agree)."""
    report = PropertyReport(variant="uniform", ok=True)
    _check_common(outcome, report, require_termination)

    values = {}
    for p, v in outcome.decisions.items():
        values.setdefault(v, []).append(p)
    if len(values) > 1:
        report.ok = False
        report.violations.append(
            f"uniform agreement: processes decided differently: "
            f"{{{', '.join(f'{v!r}: {ps}' for v, ps in values.items())}}}"
        )
    return report
