"""FloodSet consensus with a perfect failure detector (Chandra-Toueg [2]).

The asynchronous flooding algorithm for detectors with strong completeness
and (weak) accuracy, specialized here to P.  It tolerates any number of
crashes, so it gives us a second, structurally different subject algorithm
for the necessity experiments (Theorem 5.4 applied to D = P).

Phase 1 runs ``n - 1`` asynchronous rounds.  In round ``r`` each process
broadcasts the proposals it learned in round ``r - 1`` and waits, for every
process ``q``, until it has ``q``'s round-``r`` message or ``q`` is suspected
by its detector module (re-read every step).  Phase 2 exchanges the final
vectors and intersects those received from every unsuspected process; the
decision is the intersected vector's entry for the lowest process id.

Accuracy guarantees some correct process is never suspected, which forces the
intersected vectors to agree; completeness guarantees the waits terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.kernel.automaton import Automaton, DeliveredMessage, TransitionOutcome
from repro import obs as _obs

FLOOD = "FLOOD"
VECTOR = "VECTOR"


@dataclass
class _FloodState:
    pid: int
    n: int
    known: Dict[int, Any]  # proposals learned so far
    delta: Dict[int, Any]  # proposals learned in the previous round
    round: int = 1
    phase: str = FLOOD
    decided: Optional[Any] = None
    round_sent: bool = False
    # (tag, round) -> {sender: payload}
    msgs: Dict[Tuple[str, int], Dict[int, Any]] = field(default_factory=dict)


class FloodSetPerfect(Automaton):
    """FloodSet over a perfect detector; detector value = suspect set."""

    name = "floodset-P"

    def initial_state(self, pid: int, n: int, proposal: Any) -> _FloodState:
        return _FloodState(
            pid=pid, n=n, known={pid: proposal}, delta={pid: proposal}
        )

    def decision(self, state: _FloodState) -> Optional[Any]:
        return state.decided

    def snapshot(self, state: _FloodState) -> Any:
        msgs = tuple(
            (key, tuple(sorted((s, _freeze(v)) for s, v in senders.items())))
            for key, senders in sorted(state.msgs.items())
        )
        return (
            state.pid,
            state.round,
            state.phase,
            tuple(sorted(state.known.items())),
            tuple(sorted(state.delta.items())),
            state.decided,
            state.round_sent,
            msgs,
        )

    def transition(self, state, pid, msg, d):
        sends: List[Tuple[int, Any]] = []
        suspects: FrozenSet[int] = frozenset(d)
        if msg is not None:
            tag, rnd, payload = msg.payload
            state.msgs.setdefault((tag, rnd), {})[msg.sender] = payload

        progressed = True
        while progressed:
            progressed = self._try_advance(state, suspects, sends)
        return TransitionOutcome(state=state, sends=sends)

    # ------------------------------------------------------------------

    def _broadcast(self, state, sends, payload):
        for dest in range(state.n):
            sends.append((dest, payload))

    def _wait_satisfied(
        self, state: _FloodState, suspects: FrozenSet[int], tag: str, rnd: int
    ) -> bool:
        received = state.msgs.get((tag, rnd), {})
        return all(
            q in received or q in suspects for q in range(state.n)
        )

    def _try_advance(self, state, suspects, sends) -> bool:
        if state.phase == FLOOD:
            if not state.round_sent:
                payload = tuple(sorted(state.delta.items()))
                self._broadcast(state, sends, (FLOOD, state.round, payload))
                state.round_sent = True
                return True
            if not self._wait_satisfied(state, suspects, FLOOD, state.round):
                return False
            received = state.msgs.get((FLOOD, state.round), {})
            new_delta: Dict[int, Any] = {}
            for payload in received.values():
                for owner, value in payload:
                    if owner not in state.known:
                        new_delta[owner] = value
            state.known.update(new_delta)
            state.delta = new_delta
            if state.round < max(1, state.n - 1):
                state.round += 1
                state.round_sent = False
                if _obs._ENABLED:
                    _obs.metrics().inc(f"consensus.rounds.{self.name}")
            else:
                state.phase = VECTOR
                state.round_sent = False
            return True

        if state.phase == VECTOR:
            if not state.round_sent:
                payload = tuple(sorted(state.known.items()))
                self._broadcast(state, sends, (VECTOR, 0, payload))
                state.round_sent = True
                return True
            if not self._wait_satisfied(state, suspects, VECTOR, 0):
                return False
            received = state.msgs.get((VECTOR, 0), {})
            vectors = [dict(payload) for payload in received.values()]
            if not vectors:
                return False
            common = set(vectors[0].items())
            for vector in vectors[1:]:
                common &= set(vector.items())
            if state.decided is None and common:
                owner = min(owner for owner, _ in common)
                state.decided = dict(common)[owner]
            state.phase = "done"
            return False

        return False


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value
