"""Quorum generalizations of the Mostéfaoui-Raynal algorithm (Section 6.3).

Replacing MR's majorities with the quorums output by Sigma yields an
algorithm that solves *uniform* consensus with ``(Omega, Sigma)`` in **any**
environment (footnote 5 of the paper): any two Sigma quorums intersect, so
properties (A) and (B) carry over verbatim.

Replacing them with Sigma^nu quorums instead does *not* yield a nonuniform
consensus algorithm: a faulty process's quorums may intersect nobody, so it
can decide and then contaminate correct processes through Omega's
pre-stabilization leader output.  :class:`NaiveSigmaNuConsensus` is that
broken variant, kept as an executable counterexample (exercised by the
Section 6.3 contamination scenario in :mod:`repro.separation.contamination`).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional

from repro.consensus.mostefaoui_raynal import (
    UNKNOWN,
    LeaderQuorumConsensus,
    _RoundState,
)


class QuorumMR(LeaderQuorumConsensus):
    """MR with failure-detector quorums instead of majorities.

    Detector value: a pair ``(leader, quorum)`` — the outputs of Omega and of
    the quorum detector (Sigma or Sigma^nu) at this step.  The quorum is
    re-read at every step while waiting, exactly like the pseudocode's
    ``repeat Q <- Sigma_p until received ... from all q in Q``.
    """

    name = "quorum-mr"

    def leader_of(self, d: Any) -> int:
        leader, _quorum = d
        return leader

    def quorum_of(self, d: Any) -> FrozenSet[int]:
        _leader, quorum = d
        return frozenset(quorum)

    def collection_ready(
        self, state: _RoundState, d: Any, tag: str
    ) -> Optional[FrozenSet[int]]:
        quorum = self.quorum_of(d)
        received = state.received(tag, state.round)
        if quorum and quorum <= set(received):
            return quorum
        return None

    def _may_decide(self, state, collected, collected_values, all_proposals):
        # Decide on unanimous non-'?' proposals from the whole quorum.
        if not collected_values:
            return False
        first = collected_values[0]
        return first != UNKNOWN and all(v == first for v in collected_values)


class NaiveSigmaNuConsensus(QuorumMR):
    """The *incorrect* naive variant: QuorumMR driven by ``(Omega, Sigma^nu)``.

    The algorithm text is identical to :class:`QuorumMR`; what changes is the
    detector feeding it.  Under Sigma (uniform intersection) it is safe;
    under Sigma^nu it admits the contamination runs of Section 6.3, which
    violate nonuniform agreement.  It exists to demonstrate *why* A_nuc needs
    quorum histories, distrust and the seen/ack mechanism.
    """

    name = "naive-sigma-nu"
