"""Consensus algorithms and property verifiers.

The paper's Section 6.3 builds on the Mostéfaoui-Raynal leader-based
algorithm; this package implements it (majority version, Omega only), its
quorum generalization with Sigma (which solves *uniform* consensus in any
environment — footnote 5), and the *naive* Sigma^nu variant whose
contamination failure motivates all of A_nuc's extra machinery.

All three are pure automata (see :mod:`repro.kernel.automaton`), so they can
also act as the subject algorithm ``A`` inside the necessity transformation
``T_{D -> Sigma^nu}``.
"""

from repro.consensus.interface import (
    ConsensusOutcome,
    consensus_outcome,
)
from repro.consensus.mostefaoui_raynal import MostefaouiRaynal
from repro.consensus.properties import (
    PropertyReport,
    check_nonuniform_consensus,
    check_uniform_consensus,
)
from repro.consensus.quorum_mr import NaiveSigmaNuConsensus, QuorumMR
from repro.consensus.chandra_toueg import ChandraTouegS
from repro.consensus.flood_p import FloodSetPerfect

__all__ = [
    "ChandraTouegS",
    "ConsensusOutcome",
    "FloodSetPerfect",
    "MostefaouiRaynal",
    "NaiveSigmaNuConsensus",
    "PropertyReport",
    "QuorumMR",
    "check_nonuniform_consensus",
    "check_uniform_consensus",
    "consensus_outcome",
]
