"""The Chandra-Toueg rotating-coordinator consensus algorithm over <>S [2].

Reference [2] of the paper introduced unreliable failure detectors and gave
this algorithm: with the *eventually strong* detector <>S (strong
completeness + eventual weak accuracy) and a correct majority, consensus is
solvable.  We use <>P histories (which are a fortiori <>S) to drive it.

Round ``r`` has coordinator ``c = r mod n`` and four phases:

1. everyone sends its timestamped estimate to the coordinator;
2. the coordinator collects a majority of estimates and broadcasts the one
   with the largest timestamp;
3. each process waits for the coordinator's round-``r`` estimate *or*
   suspects the coordinator (detector re-read each step): adopt + positive
   ack, or negative ack;
4. the coordinator collects a majority of acks; if all are positive it
   (reliably) broadcasts a DECIDE, which every receiver adopts and relays.

Majority intersection across rounds gives (uniform) agreement via the
locking of timestamps; eventual weak accuracy gives termination once a
never-suspected correct coordinator comes around.  Like the MR family here,
it is a *pure automaton*, so it can also act as the subject of the
necessity construction in majority environments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.kernel.automaton import Automaton, DeliveredMessage, TransitionOutcome
from repro import obs as _obs

EST = "EST"  # (EST, r, estimate, ts) -> coordinator
COORD = "COORD"  # (COORD, r, estimate) -> all
ACK = "ACK"  # (ACK, r, positive: bool) -> coordinator
DECIDE = "DECIDE"  # (DECIDE, value) -> all, relayed once


@dataclass
class _CTState:
    pid: int
    n: int
    estimate: Any
    ts: int = 0
    round: int = 1
    phase: str = "send-est"
    decided: Optional[Any] = None
    relayed_decide: bool = False
    # (tag, round) -> {sender: payload-tail}
    msgs: Dict[Tuple[str, int], Dict[int, Any]] = field(default_factory=dict)

    def record(self, sender: int, tag: str, rnd: int, rest: Any) -> None:
        self.msgs.setdefault((tag, rnd), {})[sender] = rest

    def received(self, tag: str, rnd: int) -> Dict[int, Any]:
        return self.msgs.get((tag, rnd), {})


class ChandraTouegS(Automaton):
    """CT consensus over <>S; detector value = current suspect set."""

    name = "chandra-toueg-<>S"

    def initial_state(self, pid: int, n: int, proposal: Any) -> _CTState:
        return _CTState(pid=pid, n=n, estimate=proposal)

    def decision(self, state: _CTState) -> Optional[Any]:
        return state.decided

    def snapshot(self, state: _CTState) -> Any:
        msgs = tuple(
            (key, tuple(sorted(v.items())))
            for key, v in sorted(state.msgs.items())
        )
        return (
            state.pid,
            state.round,
            state.phase,
            state.estimate,
            state.ts,
            state.decided,
            state.relayed_decide,
            msgs,
        )

    # ------------------------------------------------------------------

    def _coordinator(self, state: _CTState) -> int:
        return state.round % state.n

    def _majority(self, state: _CTState) -> int:
        return state.n // 2 + 1

    def transition(self, state, pid, msg, d):
        sends: List[Tuple[int, Any]] = []
        suspects: FrozenSet[int] = frozenset(d) if d is not None else frozenset()
        if msg is not None:
            tag = msg.payload[0]
            if tag == DECIDE:
                if state.decided is None:
                    state.decided = msg.payload[1]
                if not state.relayed_decide:
                    state.relayed_decide = True
                    for dest in range(state.n):
                        sends.append((dest, (DECIDE, msg.payload[1])))
            else:
                rnd = msg.payload[1]
                state.record(msg.sender, tag, rnd, msg.payload[2:])

        progressed = True
        while progressed and state.decided is None:
            progressed = self._try_advance(state, suspects, sends)
        return TransitionOutcome(state=state, sends=sends)

    def _try_advance(self, state, suspects, sends) -> bool:
        coordinator = self._coordinator(state)
        maj = self._majority(state)

        if state.phase == "send-est":
            sends.append(
                (coordinator, (EST, state.round, state.estimate, state.ts))
            )
            state.phase = "coord-collect" if state.pid == coordinator else "wait-coord"
            return True

        if state.phase == "coord-collect":
            estimates = state.received(EST, state.round)
            if len(estimates) < maj:
                return False
            best = max(estimates.values(), key=lambda rest: rest[1])
            state.estimate = best[0]
            state.ts = state.round
            for dest in range(state.n):
                sends.append((dest, (COORD, state.round, state.estimate)))
            state.phase = "wait-coord"
            return True

        if state.phase == "wait-coord":
            coord_msgs = state.received(COORD, state.round)
            if coordinator in coord_msgs:
                (value,) = coord_msgs[coordinator]
                state.estimate = value
                state.ts = state.round
                sends.append((coordinator, (ACK, state.round, True)))
            elif coordinator in suspects:
                sends.append((coordinator, (ACK, state.round, False)))
            else:
                return False
            state.phase = (
                "coord-acks" if state.pid == coordinator else "next-round"
            )
            return True

        if state.phase == "coord-acks":
            acks = state.received(ACK, state.round)
            if len(acks) < maj:
                return False
            positives = sum(1 for rest in acks.values() if rest[0])
            if positives >= maj:
                for dest in range(state.n):
                    sends.append((dest, (DECIDE, state.estimate)))
                # The coordinator also receives its own DECIDE through the
                # buffer and decides then; no short-circuit, schedules stay
                # honest.
            state.phase = "next-round"
            return True

        if state.phase == "next-round":
            state.round += 1
            state.phase = "send-est"
            if _obs._ENABLED:
                _obs.metrics().inc(f"consensus.rounds.{self.name}")
            return True

        raise AssertionError(f"unknown phase {state.phase!r}")
