"""The live system: wiring processes, buffer, detector history and scheduler.

One :class:`System` executes one run of an algorithm using a failure detector
under a failure pattern.  The global discrete clock ticks once per step, so
step indices, crash times and detector history times share one time base.

Determinism: a ``(configuration, seed)`` pair fully determines the run.  Each
process's delivery choices are drawn from its own private stream and depend
only on its local observation history — a property the Theorem 7.1 partition
adversary relies on (see :mod:`repro.kernel.messages`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.kernel.automaton import (
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
)
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import (
    DeliveryPolicy,
    FairRandomDelivery,
    Message,
    MessageBuffer,
)
from repro.kernel.scheduler import RandomFairScheduler, SchedulingPolicy
from repro import obs as _obs


class StepRecord(NamedTuple):
    """One executed step of the live system."""

    index: int
    time: int
    pid: int
    message: Optional[Message]
    detector_value: Any
    sends: Tuple[Message, ...]


@dataclass
class RunResult:
    """Everything recorded about one finite live run.

    Under ``trace="metrics"`` the step-by-step trace is not retained:
    ``steps`` and ``queried`` are empty while ``total_steps``, decisions,
    outputs and message accounting are still exact.  The ``steps`` and
    ``queried`` containers are handed off from the system without copying;
    they are owned by the result once the run is over.
    """

    n: int
    pattern: FailurePattern
    steps: List[StepRecord]
    decisions: Dict[int, Any]
    decision_times: Dict[int, int]
    outputs: Dict[int, List[Tuple[int, Any]]]
    initial_outputs: Dict[int, Any]
    queried: Dict[int, List[Tuple[int, Any]]]
    stop_reason: str
    final_time: int
    messages_sent: int
    messages_delivered: int
    total_steps: int = -1

    def __post_init__(self) -> None:
        if self.total_steps < 0:
            self.total_steps = len(self.steps)

    @property
    def step_count(self) -> int:
        return self.total_steps

    def decided_correct(self) -> Dict[int, Any]:
        return {
            p: v for p, v in self.decisions.items() if p in self.pattern.correct
        }

    def steps_of(self, pid: int) -> List[StepRecord]:
        return [s for s in self.steps if s.pid == pid]

    def __repr__(self) -> str:
        return (
            f"RunResult(steps={self.total_steps}, decisions={self.decisions}, "
            f"stop_reason={self.stop_reason!r})"
        )


class HistorySource:
    """Anything that yields detector values; minimal structural interface."""

    def value(self, p: int, t: int) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


#: Sentinel returned by :meth:`System.step` under ``trace="metrics"``: truthy
#: (so run loops can test for progress) but carries no per-step data.
STEP_TAKEN = StepRecord(
    index=-1, time=-1, pid=-1, message=None, detector_value=None, sends=()
)


class System:
    """Executes one run of coroutine processes under a failure pattern.

    ``trace`` selects how much of the run is recorded:

    * ``"full"`` (default) — every :class:`StepRecord` and every detector
      query is retained, as required by transcript tooling, the scenario
      drivers and the run-validation machinery.
    * ``"metrics"`` — only aggregate data survives (decisions, outputs,
      step/message counts).  ``step()`` returns the :data:`STEP_TAKEN`
      sentinel instead of a record.  The executed run is *identical* to the
      full-trace run — same scheduling, deliveries and detector values —
      only the recording is skipped, which makes large sweeps markedly
      cheaper (see ``benchmarks/bench_micro.py``).
    """

    def __init__(
        self,
        processes: Mapping[int, Process],
        pattern: FailurePattern,
        history: Any,
        scheduler: Optional[SchedulingPolicy] = None,
        delivery: Optional[DeliveryPolicy] = None,
        seed: int = 0,
        trace: str = "full",
    ):
        if trace not in ("full", "metrics"):
            raise ValueError(f"unknown trace mode {trace!r}")
        self.n = pattern.n
        if set(processes) != set(range(self.n)):
            raise ValueError(
                f"processes must cover ids 0..{self.n - 1}, got {sorted(processes)}"
            )
        self.pattern = pattern
        self.history = history
        self.trace = trace
        self.scheduler = scheduler if scheduler is not None else RandomFairScheduler()
        self.delivery = delivery if delivery is not None else FairRandomDelivery()
        self.buffer = MessageBuffer()
        self.time = 0
        self.steps: List[StepRecord] = []
        self.contexts: Dict[int, ProcessContext] = {}
        self.runtimes: Dict[int, CoroutineRuntime] = {}
        self._record_trace = trace == "full"
        self.queried: Dict[int, List[Tuple[int, Any]]] = (
            {p: [] for p in range(self.n)} if self._record_trace else {}
        )
        self._dest_steps: Dict[int, int] = {p: 0 for p in range(self.n)}
        self._sched_rng = random.Random(f"{seed}/sched")
        self._dest_rngs = {
            p: random.Random(f"{seed}/delivery/{p}") for p in range(self.n)
        }
        for pid in range(self.n):
            ctx = ProcessContext(pid, self.n)
            process = processes[pid]
            initial = process.initial_output()
            if initial is not None:
                ctx.outputs.append((0, initial))
            self.contexts[pid] = ctx
            self.runtimes[pid] = CoroutineRuntime(process, ctx)
        self._initial_outputs = {
            p: processes[p].initial_output() for p in range(self.n)
        }
        # Resolve per-step dispatch once.  The history accessor is either a
        # History object (``.value``) or a plain callable; the delivery's
        # clock hook exists only on time-aware policies; the alive-set
        # timeline is precomputable only for immutable patterns
        # (DeferredCrashPattern mutates mid-run and stays on the slow path).
        self._history_fn: Callable[[int, int], Any] = (
            history.value if hasattr(history, "value") else history
        )
        self._set_now = getattr(self.delivery, "set_now", None)
        self._next_process = self.scheduler.next_process
        self._note_dest_step = self.buffer.note_dest_step
        self._choose = self.delivery.choose
        self._send = self.buffer.send
        epochs_fn = getattr(pattern, "alive_epochs", None)
        if callable(epochs_fn):
            self._epochs: Optional[Tuple[Tuple[int, Tuple[int, ...]], ...]] = (
                tuple(epochs_fn())
            )
            self._epoch_idx = 0
            self._alive_now: Tuple[int, ...] = self._epochs[0][1]
            self._next_epoch_at: Optional[int] = (
                self._epochs[1][0] if len(self._epochs) > 1 else None
            )
        else:
            self._epochs = None
            self._alive_now = ()
            self._next_epoch_at = None

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _history_value(self, p: int, t: int) -> Any:
        return self._history_fn(p, t)

    def _alive_at(self, t: int) -> Tuple[int, ...]:
        """The sorted alive tuple at ``t`` (epoch cursor, O(1) amortized)."""
        if self._epochs is None:
            return tuple(sorted(self.pattern.alive_at(t)))
        while self._next_epoch_at is not None and t >= self._next_epoch_at:
            self._epoch_idx += 1
            self._alive_now = self._epochs[self._epoch_idx][1]
            self._next_epoch_at = (
                self._epochs[self._epoch_idx + 1][0]
                if self._epoch_idx + 1 < len(self._epochs)
                else None
            )
        return self._alive_now

    def step(self) -> Optional[StepRecord]:
        """Execute one step; ``None`` when no process can step.

        Under ``trace="metrics"`` the :data:`STEP_TAKEN` sentinel is
        returned instead of a per-step record.
        """
        t = self.time
        # Inlined epoch cursor: between crash times the alive tuple is a
        # cached constant (see _alive_at for the cursor advance / slow path).
        next_at = self._next_epoch_at
        if next_at is not None and t >= next_at:
            alive = self._alive_at(t)
        elif self._epochs is not None:
            alive = self._alive_now
        else:
            alive = self._alive_at(t)
        if not alive:
            return None
        if self._set_now is not None:
            self._set_now(t)
        pid = self._next_process(alive, t, self._sched_rng)
        if pid is None:
            return None

        self._note_dest_step(pid)
        dest_steps = self._dest_steps
        message = self._choose(
            self.buffer, pid, dest_steps[pid], self._dest_rngs[pid]
        )
        dest_steps[pid] += 1
        if message is not None:
            self.buffer.deliver(message)
            delivered = DeliveredMessage(message.sender, message.payload)
        else:
            delivered = None

        d = self._history_fn(pid, t)
        observation = Observation(message=delivered, detector_value=d, time=t)
        sends = self.runtimes[pid].step(observation)
        self.time = t + 1
        if not self._record_trace:
            # Metrics mode: enqueue the sends but build no per-step record.
            send = self._send
            for dest, payload in sends:
                send(pid, dest, payload, now=t)
            return STEP_TAKEN
        sent_messages = tuple(
            self._send(pid, dest, payload, now=t) for dest, payload in sends
        )
        self.queried[pid].append((t, d))
        record = StepRecord(
            index=len(self.steps),
            time=t,
            pid=pid,
            message=message,
            detector_value=d,
            sends=sent_messages,
        )
        self.steps.append(record)
        return record

    def run(
        self,
        max_steps: int,
        stop_when: Optional[Callable[["System"], bool]] = None,
        extra_steps: int = 0,
    ) -> RunResult:
        """Step until ``stop_when`` holds (plus ``extra_steps``) or budget ends.

        ``extra_steps`` lets eventual properties (detector completeness,
        post-decision quiescence) be observed past the stop condition.
        """
        if not _obs._ENABLED:
            return self._run_loop(max_steps, stop_when, extra_steps)
        reg = _obs.metrics()
        with _obs.tracer().span(
            "kernel.run",
            clock=lambda: self.time,
            n=self.n,
            trace=self.trace,
            max_steps=max_steps,
        ) as span:
            start = self.time
            result = self._run_loop(max_steps, stop_when, extra_steps)
            steps = result.total_steps - start
            span.set(stop_reason=result.stop_reason, steps=steps)
            reg.inc("kernel.runs")
            reg.inc("kernel.steps", steps)
            reg.inc("kernel.messages_sent", self.buffer.sent_count)
            reg.inc("kernel.messages_delivered", self.buffer.delivered_count)
            return result

    def _run_loop(
        self,
        max_steps: int,
        stop_when: Optional[Callable[["System"], bool]] = None,
        extra_steps: int = 0,
    ) -> RunResult:
        # The uninstrumented loop: ``run`` adds the per-run span around it
        # when tracing is on; the per-step path is deliberately untouched.
        reason = "max_steps"
        budget = max_steps
        remaining_extra: Optional[int] = None
        while budget > 0:
            if remaining_extra is None and stop_when is not None and stop_when(self):
                if extra_steps <= 0:
                    reason = "stop_condition"
                    break
                remaining_extra = extra_steps
            if remaining_extra is not None:
                if remaining_extra <= 0:
                    reason = "stop_condition"
                    break
                remaining_extra -= 1
            if self.step() is None:
                reason = "all_crashed"
                break
            budget -= 1
        return self.result(stop_reason=reason)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self, stop_reason: str = "manual") -> RunResult:
        """Package the run's outcome.

        The ``steps`` and ``queried`` containers are handed off by
        reference, not copied: a result is normally taken once, at the end
        of the run.  (Stepping the system further after taking a result
        extends the shared trace in place.)
        """
        decisions = {
            p: ctx.decision
            for p, ctx in self.contexts.items()
            if ctx.decision is not None
        }
        decision_times = {
            p: ctx.decision_time
            for p, ctx in self.contexts.items()
            if ctx.decision_time is not None
        }
        outputs = {p: list(ctx.outputs) for p, ctx in self.contexts.items()}
        return RunResult(
            n=self.n,
            pattern=self.pattern,
            steps=self.steps,
            decisions=decisions,
            decision_times=decision_times,
            outputs=outputs,
            initial_outputs=dict(self._initial_outputs),
            queried=self.queried,
            stop_reason=stop_reason,
            final_time=self.time,
            messages_sent=self.buffer.sent_count,
            messages_delivered=self.buffer.delivered_count,
            total_steps=self.time,
        )

    # ------------------------------------------------------------------
    # Common stop conditions
    # ------------------------------------------------------------------

    def all_correct_decided(self) -> bool:
        return all(
            self.contexts[p].decision is not None for p in self.pattern.correct
        )

    def correct_output_count(self, minimum: int) -> bool:
        """Every correct process has assigned its output at least ``minimum``
        times (excluding the initial value)."""
        return all(
            len(self.contexts[p].outputs) >= minimum for p in self.pattern.correct
        )


def all_correct_decided(system: System) -> bool:
    """Module-level stop condition mirroring :meth:`System.all_correct_decided`."""
    return system.all_correct_decided()
