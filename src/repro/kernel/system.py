"""The live system: wiring processes, buffer, detector history and scheduler.

One :class:`System` executes one run of an algorithm using a failure detector
under a failure pattern.  The global discrete clock ticks once per step, so
step indices, crash times and detector history times share one time base.

Determinism: a ``(configuration, seed)`` pair fully determines the run.  Each
process's delivery choices are drawn from its own private stream and depend
only on its local observation history — a property the Theorem 7.1 partition
adversary relies on (see :mod:`repro.kernel.messages`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.kernel.automaton import (
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
)
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import (
    DeliveryPolicy,
    FairRandomDelivery,
    Message,
    MessageBuffer,
)
from repro.kernel.scheduler import RandomFairScheduler, SchedulingPolicy


class StepRecord(NamedTuple):
    """One executed step of the live system."""

    index: int
    time: int
    pid: int
    message: Optional[Message]
    detector_value: Any
    sends: Tuple[Message, ...]


@dataclass
class RunResult:
    """Everything recorded about one finite live run."""

    n: int
    pattern: FailurePattern
    steps: List[StepRecord]
    decisions: Dict[int, Any]
    decision_times: Dict[int, int]
    outputs: Dict[int, List[Tuple[int, Any]]]
    initial_outputs: Dict[int, Any]
    queried: Dict[int, List[Tuple[int, Any]]]
    stop_reason: str
    final_time: int
    messages_sent: int
    messages_delivered: int

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def decided_correct(self) -> Dict[int, Any]:
        return {
            p: v for p, v in self.decisions.items() if p in self.pattern.correct
        }

    def steps_of(self, pid: int) -> List[StepRecord]:
        return [s for s in self.steps if s.pid == pid]

    def __repr__(self) -> str:
        return (
            f"RunResult(steps={len(self.steps)}, decisions={self.decisions}, "
            f"stop={self.stop_reason!r})"
        )


class HistorySource:
    """Anything that yields detector values; minimal structural interface."""

    def value(self, p: int, t: int) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class System:
    """Executes one run of coroutine processes under a failure pattern."""

    def __init__(
        self,
        processes: Mapping[int, Process],
        pattern: FailurePattern,
        history: Any,
        scheduler: Optional[SchedulingPolicy] = None,
        delivery: Optional[DeliveryPolicy] = None,
        seed: int = 0,
    ):
        self.n = pattern.n
        if set(processes) != set(range(self.n)):
            raise ValueError(
                f"processes must cover ids 0..{self.n - 1}, got {sorted(processes)}"
            )
        self.pattern = pattern
        self.history = history
        self.scheduler = scheduler if scheduler is not None else RandomFairScheduler()
        self.delivery = delivery if delivery is not None else FairRandomDelivery()
        self.buffer = MessageBuffer()
        self.time = 0
        self.steps: List[StepRecord] = []
        self.contexts: Dict[int, ProcessContext] = {}
        self.runtimes: Dict[int, CoroutineRuntime] = {}
        self.queried: Dict[int, List[Tuple[int, Any]]] = {p: [] for p in range(self.n)}
        self._dest_steps: Dict[int, int] = {p: 0 for p in range(self.n)}
        self._sched_rng = random.Random(f"{seed}/sched")
        self._dest_rngs = {
            p: random.Random(f"{seed}/delivery/{p}") for p in range(self.n)
        }
        for pid in range(self.n):
            ctx = ProcessContext(pid, self.n)
            process = processes[pid]
            initial = process.initial_output()
            if initial is not None:
                ctx.outputs.append((0, initial))
            self.contexts[pid] = ctx
            self.runtimes[pid] = CoroutineRuntime(process, ctx)
        self._initial_outputs = {
            p: processes[p].initial_output() for p in range(self.n)
        }

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def _history_value(self, p: int, t: int) -> Any:
        if hasattr(self.history, "value"):
            return self.history.value(p, t)
        return self.history(p, t)

    def step(self) -> Optional[StepRecord]:
        """Execute one step; ``None`` when no process can step."""
        t = self.time
        alive = tuple(sorted(self.pattern.alive_at(t)))
        if not alive:
            return None
        if hasattr(self.delivery, "set_now"):
            self.delivery.set_now(t)
        pid = self.scheduler.next_process(alive, t, self._sched_rng)
        if pid is None:
            return None

        self.buffer.note_dest_step(pid)
        message = self.delivery.choose(
            self.buffer, pid, self._dest_steps[pid], self._dest_rngs[pid]
        )
        self._dest_steps[pid] += 1
        if message is not None:
            self.buffer.deliver(message)
            delivered = DeliveredMessage(message.sender, message.payload)
        else:
            delivered = None

        d = self._history_value(pid, t)
        self.queried[pid].append((t, d))
        observation = Observation(message=delivered, detector_value=d, time=t)
        sends = self.runtimes[pid].step(observation)
        sent_messages = tuple(
            self.buffer.send(pid, dest, payload, now=t) for dest, payload in sends
        )
        record = StepRecord(
            index=len(self.steps),
            time=t,
            pid=pid,
            message=message,
            detector_value=d,
            sends=sent_messages,
        )
        self.steps.append(record)
        self.time += 1
        return record

    def run(
        self,
        max_steps: int,
        stop_when: Optional[Callable[["System"], bool]] = None,
        extra_steps: int = 0,
    ) -> RunResult:
        """Step until ``stop_when`` holds (plus ``extra_steps``) or budget ends.

        ``extra_steps`` lets eventual properties (detector completeness,
        post-decision quiescence) be observed past the stop condition.
        """
        reason = "max_steps"
        budget = max_steps
        remaining_extra: Optional[int] = None
        while budget > 0:
            if remaining_extra is None and stop_when is not None and stop_when(self):
                if extra_steps <= 0:
                    reason = "stop_condition"
                    break
                remaining_extra = extra_steps
            if remaining_extra is not None:
                if remaining_extra <= 0:
                    reason = "stop_condition"
                    break
                remaining_extra -= 1
            if self.step() is None:
                reason = "all_crashed"
                break
            budget -= 1
        return self.result(stop_reason=reason)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self, stop_reason: str = "manual") -> RunResult:
        decisions = {
            p: ctx.decision
            for p, ctx in self.contexts.items()
            if ctx.decision is not None
        }
        decision_times = {
            p: ctx.decision_time
            for p, ctx in self.contexts.items()
            if ctx.decision_time is not None
        }
        outputs = {p: list(ctx.outputs) for p, ctx in self.contexts.items()}
        return RunResult(
            n=self.n,
            pattern=self.pattern,
            steps=list(self.steps),
            decisions=decisions,
            decision_times=decision_times,
            outputs=outputs,
            initial_outputs=dict(self._initial_outputs),
            queried={p: list(v) for p, v in self.queried.items()},
            stop_reason=stop_reason,
            final_time=self.time,
            messages_sent=self.buffer.sent_count,
            messages_delivered=self.buffer.delivered_count,
        )

    # ------------------------------------------------------------------
    # Common stop conditions
    # ------------------------------------------------------------------

    def all_correct_decided(self) -> bool:
        return all(
            self.contexts[p].decision is not None for p in self.pattern.correct
        )

    def correct_output_count(self, minimum: int) -> bool:
        """Every correct process has assigned its output at least ``minimum``
        times (excluding the initial value)."""
        return all(
            len(self.contexts[p].outputs) >= minimum for p in self.pattern.correct
        )


def all_correct_decided(system: System) -> bool:
    """Module-level stop condition mirroring :meth:`System.all_correct_decided`."""
    return system.all_correct_decided()
