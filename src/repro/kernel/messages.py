"""The message buffer M and delivery policies (Sections 2.1, 2.4, 2.6).

The model's message buffer is a set of triples ``(p, data, q)``: process
``p`` sent ``data`` to ``q`` and ``q`` has not yet received it.  Messages are
unique (the model stipulates a per-sender counter), which we realize with a
``uid = (sender, seq)`` stamped by the buffer.

Receipt is nondeterministic: in each step a process receives either a pending
message addressed to it or the empty message (lambda).  That choice is made
by a :class:`DeliveryPolicy`.  Admissibility property (7) — every message
sent to a correct process is eventually received — is realized by giving the
shipped policies a *fairness aging* rule: once a message has been passed over
often enough it is delivered with certainty.

Policies draw randomness from a per-destination stream and measure message
age in the destination's local step count, never from global state.  This
makes a process's behaviour a function of its own observation sequence, which
the partition adversary of Theorem 7.1 exploits (indistinguishable runs must
stay indistinguishable in the simulator, too).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Message:
    """A unique in-flight message ``(sender, payload, dest)``."""

    sender: int
    dest: int
    payload: Any
    uid: Tuple[int, int]  # (sender, per-sender sequence number)
    sent_at: int  # global time at which the send step occurred

    def __repr__(self) -> str:
        return (
            f"Message({self.sender}->{self.dest} #{self.uid[1]} "
            f"@{self.sent_at}: {self.payload!r})"
        )


@dataclass
class _PendingEntry:
    message: Message
    # Number of steps the destination has taken since this message became
    # pending; the aging counter used by fairness rules.
    age_in_dest_steps: int = 0


#: Shared empty queue returned for destinations with nothing pending.
_NO_ENTRIES: List[_PendingEntry] = []


class MessageBuffer:
    """The message buffer ``M``, with per-destination pending queues."""

    def __init__(self) -> None:
        self._pending: Dict[int, List[_PendingEntry]] = {}
        self._seq: Dict[int, int] = {}
        self._sent_count = 0
        self._delivered_count = 0
        self._superseded_count = 0

    # ------------------------------------------------------------------
    # Sending and receiving
    # ------------------------------------------------------------------

    def send(self, sender: int, dest: int, payload: Any, now: int) -> Message:
        """Place a new unique message in the buffer and return it."""
        seq = self._seq.get(sender, 0)
        self._seq[sender] = seq + 1
        message = Message(sender, dest, payload, uid=(sender, seq), sent_at=now)
        self._pending.setdefault(dest, []).append(_PendingEntry(message))
        self._sent_count += 1
        return message

    def pending_for(self, dest: int) -> List[Message]:
        """Pending messages addressed to ``dest``, oldest first."""
        return [entry.message for entry in self._pending.get(dest, [])]

    def has_pending(self, dest: int) -> bool:
        return bool(self._pending.get(dest))

    def deliver(self, message: Message) -> None:
        """Remove ``message`` from the buffer (it is being received)."""
        entries = self._pending.get(message.dest, [])
        for i, entry in enumerate(entries):
            if entry.message.uid == message.uid:
                del entries[i]
                self._delivered_count += 1
                return
        raise LookupError(f"{message!r} is not pending")

    def supersede(self, message: Message) -> None:
        """Remove ``message`` as superseded by a newer equivalent.

        Counted separately from deliveries; semantically the message is
        received immediately after the message that subsumes it, where it
        changes nothing."""
        entries = self._pending.get(message.dest, [])
        for i, entry in enumerate(entries):
            if entry.message.uid == message.uid:
                del entries[i]
                self._superseded_count += 1
                return
        raise LookupError(f"{message!r} is not pending")

    def note_dest_step(self, dest: int) -> None:
        """Age every message pending for ``dest`` by one destination step."""
        for entry in self._pending.get(dest, []):
            entry.age_in_dest_steps += 1

    def oldest_for(self, dest: int) -> Optional[Message]:
        entries = self._pending.get(dest, [])
        return entries[0].message if entries else None

    def entries_for(self, dest: int) -> Sequence[_PendingEntry]:
        """Pending entries for ``dest``, oldest first.

        The returned sequence is the live queue — callers must treat it as
        read-only (policies that remove entries copy it first).  Because
        sends append and aging is uniform, ``age_in_dest_steps`` is
        non-increasing along it: the first entry is always the oldest.
        """
        return self._pending.get(dest, _NO_ENTRIES)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sent_count(self) -> int:
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    @property
    def superseded_count(self) -> int:
        return self._superseded_count

    @property
    def in_flight(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def __repr__(self) -> str:
        return (
            f"MessageBuffer(in_flight={self.in_flight}, "
            f"sent={self._sent_count}, delivered={self._delivered_count})"
        )


class DeliveryPolicy:
    """Chooses the message (or lambda) a stepping process receives."""

    def choose(
        self,
        buffer: MessageBuffer,
        dest: int,
        dest_step_index: int,
        rng: random.Random,
    ) -> Optional[Message]:
        """Return a pending message for ``dest``, or ``None`` for lambda.

        ``rng`` is the destination's private random stream and
        ``dest_step_index`` counts the destination's own steps; policies must
        not consult any other global state (see module docstring).
        """
        raise NotImplementedError

    def ensures_eventual_delivery(self) -> bool:
        """Whether the policy satisfies admissibility property (7)."""
        raise NotImplementedError


class OldestFirstDelivery(DeliveryPolicy):
    """Always deliver the oldest pending message (lambda only when empty).

    The canonical schedule construction in the proof of Lemma 4.10 uses
    exactly this rule.
    """

    def choose(self, buffer, dest, dest_step_index, rng):
        return buffer.oldest_for(dest)

    def ensures_eventual_delivery(self) -> bool:
        return True


class FairRandomDelivery(DeliveryPolicy):
    """Random delivery with an aging bound.

    With probability ``lambda_prob`` the step receives lambda even though
    messages are pending; otherwise a uniformly random pending message is
    delivered.  Any message that has been pending for more than ``max_age``
    of the destination's steps is delivered first, which bounds skew and
    guarantees property (7) on every admissible run.
    """

    def __init__(self, lambda_prob: float = 0.25, max_age: int = 40):
        if not 0.0 <= lambda_prob < 1.0:
            raise ValueError("lambda_prob must be in [0, 1)")
        if max_age < 1:
            raise ValueError("max_age must be >= 1")
        self.lambda_prob = lambda_prob
        self.max_age = max_age

    def choose(self, buffer, dest, dest_step_index, rng):
        entries = buffer.entries_for(dest)
        if not entries:
            return None
        oldest = entries[0]  # ages are non-increasing: the max is up front
        if oldest.age_in_dest_steps >= self.max_age:
            return oldest.message
        if rng.random() < self.lambda_prob:
            return None
        return rng.choice(entries).message

    def ensures_eventual_delivery(self) -> bool:
        return True


class PerSenderFifoDelivery(DeliveryPolicy):
    """Pick a random sender with pending traffic; deliver its oldest message.

    Sender choice uses only the destination's private stream and the set of
    senders with pending messages, so two runs in which a destination sees
    the same pending-sender sets make the same choices — the property the
    Theorem 7.1 adversary relies on.
    """

    def __init__(self, lambda_prob: float = 0.2, max_age: int = 60):
        self.lambda_prob = lambda_prob
        self.max_age = max_age

    def choose(self, buffer, dest, dest_step_index, rng):
        entries = buffer.entries_for(dest)
        if not entries:
            return None
        oldest = entries[0]  # ages are non-increasing: the max is up front
        if oldest.age_in_dest_steps >= self.max_age:
            return oldest.message
        if rng.random() < self.lambda_prob:
            return None
        senders = sorted({e.message.sender for e in entries})
        sender = rng.choice(senders)
        for entry in entries:
            if entry.message.sender == sender:
                return entry.message
        raise AssertionError("unreachable: sender chosen from pending set")

    def ensures_eventual_delivery(self) -> bool:
        return True


class BlockingPolicy(DeliveryPolicy):
    """Wrap a policy, holding back messages matching a predicate.

    Used to build the delayed-link scenarios of Theorem 7.1 (messages across
    a partition are withheld until a release time) and the contamination
    scenario of Section 6.3.  ``release_time`` is a global time; messages
    matching ``blocked`` are invisible to the inner policy before it.

    A blocking policy violates property (7) only if blocked messages to
    correct processes are never released; scenario drivers always release.
    """

    def __init__(
        self,
        inner: DeliveryPolicy,
        blocked: Callable[[Message], bool],
        release_time: Optional[int] = None,
    ):
        self.inner = inner
        self.blocked = blocked
        self.release_time = release_time
        self._now = 0

    def set_now(self, now: int) -> None:
        self._now = now

    def release(self, now: Optional[int] = None) -> None:
        """Lift the block from now on."""
        self.release_time = self._now if now is None else now

    def _is_blocked(self, message: Message) -> bool:
        if self.release_time is not None and self._now >= self.release_time:
            return False
        return self.blocked(message)

    def choose(self, buffer, dest, dest_step_index, rng):
        entries = [
            e for e in buffer.entries_for(dest) if not self._is_blocked(e.message)
        ]
        if not entries:
            return None
        view = _FilteredBufferView(entries)
        return self.inner.choose(view, dest, dest_step_index, rng)  # type: ignore[arg-type]

    def ensures_eventual_delivery(self) -> bool:
        return self.release_time is not None


class _FilteredBufferView:
    """Duck-typed read-only buffer view over a subset of pending entries."""

    def __init__(self, entries: Sequence[_PendingEntry]):
        self._entries = tuple(entries)

    def entries_for(self, dest: int) -> Sequence[_PendingEntry]:
        return self._entries

    def oldest_for(self, dest: int) -> Optional[Message]:
        return self._entries[0].message if self._entries else None

    def pending_for(self, dest: int) -> List[Message]:
        return [e.message for e in self._entries]


class CoalescingDelivery(DeliveryPolicy):
    """Supersede stale *coalescible* messages by newer ones from the sender.

    The DAG-building algorithms broadcast their entire (monotonically
    growing) DAG at every step, which floods destinations faster than the
    one-receive-per-step model can drain.  Because a sender's later DAG
    contains all of its earlier ones, any schedule that delivers a newer DAG
    first turns the older deliveries into no-ops; this policy realizes the
    equivalent admissible run directly by dropping, per sender, every pending
    coalescible message older than the newest one (they are accounted as
    superseded, i.e. received-with-no-effect immediately after it).

    ``coalescible`` decides which payloads may be superseded (default: DAG
    payloads, including channel-tagged ``(tag, dag)`` wrappers).  All other
    traffic is left untouched and handled by ``inner``.
    """

    def __init__(
        self,
        inner: Optional[DeliveryPolicy] = None,
        coalescible: Optional[Callable[[Any], bool]] = None,
    ):
        self.inner = inner if inner is not None else FairRandomDelivery()
        self.coalescible = (
            coalescible if coalescible is not None else _default_coalescible
        )

    def choose(self, buffer, dest, dest_step_index, rng):
        entries = buffer.entries_for(dest)
        newest_per_sender: Dict[int, int] = {}
        for entry in entries:
            if self.coalescible(entry.message.payload):
                sender = entry.message.sender
                seq = entry.message.uid[1]
                if seq > newest_per_sender.get(sender, -1):
                    newest_per_sender[sender] = seq
        for entry in list(entries):
            message = entry.message
            if (
                self.coalescible(message.payload)
                and message.uid[1] < newest_per_sender.get(message.sender, -1)
            ):
                buffer.supersede(message)
        return self.inner.choose(buffer, dest, dest_step_index, rng)

    def ensures_eventual_delivery(self) -> bool:
        return self.inner.ensures_eventual_delivery()


def _default_coalescible(payload: Any) -> bool:
    """DAG payloads, possibly wrapped as ``(channel, dag)``."""
    if _looks_like_dag(payload):
        return True
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and _looks_like_dag(payload[1])
    ):
        return True
    return False


def _looks_like_dag(payload: Any) -> bool:
    # Duck-typed to avoid a kernel -> core import cycle.
    return hasattr(payload, "add_local_sample") and hasattr(payload, "frontier")
