"""The asynchronous-system substrate (Section 2 of the paper).

This package is an executable rendition of the model of computation used by
Eisler, Hadzilacos and Toueg: asynchronous message-passing processes that take
atomic steps (receive one message, query a failure detector, change state,
send messages), crash failures described by failure patterns, environments as
sets of failure patterns, schedules, runs, admissibility, and the
mergeability machinery of Lemma 2.2.
"""

from repro.kernel.automaton import (
    Automaton,
    AutomatonProcess,
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
    ReplayAutomaton,
)
from repro.kernel.environment import Environment
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import (
    BlockingPolicy,
    DeliveryPolicy,
    FairRandomDelivery,
    Message,
    MessageBuffer,
    OldestFirstDelivery,
    PerSenderFifoDelivery,
)
from repro.kernel.runs import (
    PureRun,
    PureSystemSimulator,
    merge_runs,
    mergeable,
    validate_run,
)
from repro.kernel.scheduler import (
    RandomFairScheduler,
    RoundRobinScheduler,
    SchedulingPolicy,
    ScriptedScheduler,
)
from repro.kernel.steps import (
    Schedule,
    Step,
    causally_precedes,
    participants,
)
from repro.kernel.system import RunResult, StepRecord, System

__all__ = [
    "Automaton",
    "AutomatonProcess",
    "BlockingPolicy",
    "CoroutineRuntime",
    "DeliveredMessage",
    "DeliveryPolicy",
    "Environment",
    "FailurePattern",
    "FairRandomDelivery",
    "Message",
    "MessageBuffer",
    "Observation",
    "OldestFirstDelivery",
    "PerSenderFifoDelivery",
    "Process",
    "ProcessContext",
    "PureRun",
    "PureSystemSimulator",
    "RandomFairScheduler",
    "ReplayAutomaton",
    "RoundRobinScheduler",
    "RunResult",
    "Schedule",
    "SchedulingPolicy",
    "ScriptedScheduler",
    "Step",
    "StepRecord",
    "System",
    "causally_precedes",
    "merge_runs",
    "mergeable",
    "participants",
    "validate_run",
]
