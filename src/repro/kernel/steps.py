"""Steps, schedules and causal precedence (Sections 2.4-2.6).

A step is a tuple ``(p, m, d, A)``; within one algorithm the ``A`` component
is constant, so :class:`Step` records the process, the received message
(identified by its unique uid, or ``None`` for lambda) and the failure
detector value seen.

A schedule is a finite or infinite sequence of steps; we work with finite
schedules and prefixes of conceptually-infinite ones.  Causal precedence is
Lamport's happens-before over a schedule: program order plus send/receive
pairs, closed transitively.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

MessageUid = Tuple[int, int]


class Step(NamedTuple):
    """One step of a schedule: ``(p, m, d)`` with ``m`` a message uid."""

    pid: int
    msg_uid: Optional[MessageUid]
    detector_value: Any


class Schedule:
    """A finite schedule: an immutable sequence of steps."""

    __slots__ = ("_steps",)

    def __init__(self, steps: Iterable[Step] = ()):
        self._steps: Tuple[Step, ...] = tuple(steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return Schedule(self._steps[i])
        return self._steps[i]

    def __iter__(self):
        return iter(self._steps)

    def prefix(self, length: int) -> "Schedule":
        """``S[1..length]`` in the paper's notation."""
        return Schedule(self._steps[:length])

    def append(self, step: Step) -> "Schedule":
        return Schedule(self._steps + (step,))

    def extend(self, steps: Iterable[Step]) -> "Schedule":
        return Schedule(self._steps + tuple(steps))

    @property
    def steps(self) -> Tuple[Step, ...]:
        return self._steps

    def steps_of(self, pid: int) -> List[int]:
        """Indices (0-based) of the steps taken by ``pid``."""
        return [i for i, s in enumerate(self._steps) if s.pid == pid]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __repr__(self) -> str:
        return f"Schedule(len={len(self._steps)})"


def participants(schedule: Schedule) -> FrozenSet[int]:
    """``participants(S)``: processes taking at least one step in ``S``."""
    return frozenset(s.pid for s in schedule)


def causal_edges(
    schedule: Schedule, send_indices: Dict[MessageUid, int]
) -> List[Tuple[int, int]]:
    """Direct causal edges over step indices (0-based).

    ``send_indices`` maps each message uid to the index of the step whose
    application sent it (obtainable from the pure-system simulator).
    Program-order edges link consecutive steps of the same process; message
    edges link each receive to its send.
    """
    edges: List[Tuple[int, int]] = []
    last_step_of: Dict[int, int] = {}
    for j, step in enumerate(schedule):
        if step.pid in last_step_of:
            edges.append((last_step_of[step.pid], j))
        last_step_of[step.pid] = j
        if step.msg_uid is not None and step.msg_uid in send_indices:
            edges.append((send_indices[step.msg_uid], j))
    return edges


def causally_precedes(
    schedule: Schedule,
    send_indices: Dict[MessageUid, int],
    i: int,
    j: int,
) -> bool:
    """Whether step ``i`` causally precedes step ``j`` (0-based indices)."""
    if i >= j:
        # Observation 2.1: causal precedence implies i < j.
        return False
    succ: Dict[int, List[int]] = {}
    for a, b in causal_edges(schedule, send_indices):
        succ.setdefault(a, []).append(b)
    frontier = [i]
    seen: Set[int] = set()
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        if node == j:
            return True
        for b in succ.get(node, ()):
            if b <= j:
                frontier.append(b)
    return j in seen


def causal_past(
    schedule: Schedule, send_indices: Dict[MessageUid, int], j: int
) -> FrozenSet[int]:
    """All step indices that causally precede step ``j``."""
    pred: Dict[int, List[int]] = {}
    for a, b in causal_edges(schedule, send_indices):
        pred.setdefault(b, []).append(a)
    frontier = [j]
    seen: Set[int] = set()
    while frontier:
        node = frontier.pop()
        for a in pred.get(node, ()):
            if a not in seen:
                seen.add(a)
                frontier.append(a)
    return frozenset(seen)
