"""Process formalisms (Section 2.4): automata and coroutine processes.

The model defines an algorithm as a collection of deterministic automata, one
per process.  A step atomically (a) receives one message or lambda, (b)
queries the local failure detector module, (c) changes state, and (d) sends
messages.

Two renditions are provided:

* :class:`Automaton` — a *pure* state machine with an explicit transition
  function.  This form is replayable from any initial configuration along any
  schedule, which the simulated-schedules machinery of Section 4.2 (and the
  run merging of Lemma 2.2) requires.  Consensus algorithms that act as the
  subject ``A`` of the necessity construction are written in this form.

* :class:`Process` — a generator-coroutine process for the live
  infrastructure algorithms (``A_DAG``, the two transformations, ``A_nuc``).
  One ``yield`` corresponds to one model step, so the paper's pseudocode
  (loops with blocking waits) transcribes almost line by line.

Adapters bridge the two: :class:`AutomatonProcess` runs a pure automaton as a
live process, and :class:`ReplayAutomaton` turns a deterministic coroutine
process into a pure automaton by replaying its observation history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.kernel.messages import Message


class DeliveredMessage(NamedTuple):
    """What a process sees when it receives a message: sender + payload."""

    sender: int
    payload: Any


class Observation(NamedTuple):
    """Everything a process observes in one step."""

    message: Optional[DeliveredMessage]
    detector_value: Any
    time: int


Send = Tuple[int, Any]  # (destination pid, payload)


# ----------------------------------------------------------------------
# Pure automata
# ----------------------------------------------------------------------


@dataclass
class TransitionOutcome:
    """Result of one automaton step: the new state plus sent messages."""

    state: Any
    sends: List[Send]


class Automaton:
    """A deterministic per-process state machine.

    ``transition`` may mutate and return the ``state`` it was given; callers
    that need to branch must re-run schedules from an initial configuration
    rather than share state objects (the schedule simulator does exactly
    that).  ``transition`` must be deterministic in ``(state, msg, d)``.
    """

    #: Declares the λ-step no-op contract: when True, a transition with
    #: ``msg=None`` and a detector value equal to the previous step's is
    #: guaranteed to change nothing — same state, no sends, no new
    #: decision.  Holds for automata whose ``transition`` drives the state
    #: to a fixpoint of ``(state, received messages, d)`` before returning
    #: (e.g. the repeat-until phase machines).  The batched kernel uses
    #: this to skip redundant empty deliveries; it must never be set on an
    #: automaton that can make progress across two identical observations.
    lambda_quiescent = False

    def initial_state(self, pid: int, n: int, proposal: Any) -> Any:
        raise NotImplementedError

    def transition(
        self, state: Any, pid: int, msg: Optional[DeliveredMessage], d: Any
    ) -> TransitionOutcome:
        raise NotImplementedError

    def decision(self, state: Any) -> Optional[Any]:
        """The value decided in ``state``, or ``None``."""
        return None

    def copy_state(self, state: Any) -> Any:
        """An independent copy of ``state``, safe to transition separately.

        Because ``transition`` may mutate in place, anything that branches a
        configuration (the simulation trie's snapshots, the bounded
        explorer) must copy states first.  The default deep-copies; automata
        with simple state layouts should override with something cheaper.
        """
        import copy

        return copy.deepcopy(state)

    def snapshot(self, state: Any) -> Any:
        """A comparable, immutable summary of ``state``.

        Used by the Lemma 2.2 merging tests to check that a process's state
        in the merged run equals its state in the original run.  The default
        uses ``repr``; automata with richer states may override.
        """
        return repr(state)


# ----------------------------------------------------------------------
# Coroutine processes
# ----------------------------------------------------------------------


class ProcessContext:
    """Per-process runtime services available to a coroutine process.

    The context mediates the one-yield-per-step protocol, collects outgoing
    messages, maintains the receive log and inbox, dispatches *upon receipt*
    handlers (the ``cobegin`` clauses of Figs. 4-5), and records decisions and
    emulated failure-detector outputs.
    """

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.n = n
        self.time: int = 0
        self.detector_value: Any = None
        self.step_count: int = 0
        self.inbox: List[DeliveredMessage] = []
        self.log: List[DeliveredMessage] = []
        self.decision: Optional[Any] = None
        self.decision_time: Optional[int] = None
        self.outputs: List[Tuple[int, Any]] = []  # (time, value) assignments
        self._outbox: List[Send] = []
        self._handlers: List[Callable[[DeliveredMessage], bool]] = []

    # -- sending ---------------------------------------------------------

    def send(self, dest: int, payload: Any) -> None:
        """Queue ``payload`` for ``dest``; emitted at this step's end."""
        self._outbox.append((dest, payload))

    def send_to_all(self, payload: Any, include_self: bool = True) -> None:
        """The pseudocode's ``send ... to all`` (self included, as usual)."""
        for dest in range(self.n):
            if include_self or dest != self.pid:
                self._outbox.append((dest, payload))

    def send_each(self, dests: Iterable[int], payload: Any) -> None:
        for dest in dests:
            self._outbox.append((dest, payload))

    # -- handlers (the `upon receipt of` clauses) -------------------------

    def add_handler(self, handler: Callable[[DeliveredMessage], bool]) -> None:
        """Register an upon-receipt handler.

        Handlers run within the receiving step, before the main program sees
        the message.  A handler returning ``True`` consumes the message (it
        is logged but not placed in the inbox).
        """
        self._handlers.append(handler)

    # -- stepping ---------------------------------------------------------

    def take_step(self) -> Generator[List[Send], Observation, Observation]:
        """Advance one model step.  Use as ``obs = yield from ctx.take_step()``.

        Yields this step's queued sends to the runtime and receives the next
        observation (message-or-lambda, detector value, time).
        """
        out, self._outbox = self._outbox, []
        obs = yield out
        self.time = obs.time
        self.detector_value = obs.detector_value
        self.step_count += 1
        if obs.message is not None:
            self.log.append(obs.message)
            consumed = False
            for handler in self._handlers:
                if handler(obs.message):
                    consumed = True
                    break
            if not consumed:
                self.inbox.append(obs.message)
        return obs

    def wait_until(
        self, predicate: Callable[[], bool]
    ) -> Generator[List[Send], Observation, None]:
        """Take steps until ``predicate()`` holds (checked before stepping)."""
        while not predicate():
            yield from self.take_step()

    # -- message queries ---------------------------------------------------

    def received(
        self, match: Callable[[DeliveredMessage], bool]
    ) -> List[DeliveredMessage]:
        """All messages received so far (the log) matching ``match``."""
        return [m for m in self.log if match(m)]

    def received_from(
        self, senders: Iterable[int], match: Callable[[DeliveredMessage], bool]
    ) -> Dict[int, DeliveredMessage]:
        """First matching message from each of ``senders`` (those present)."""
        wanted = set(senders)
        found: Dict[int, DeliveredMessage] = {}
        for m in self.log:
            if m.sender in wanted and m.sender not in found and match(m):
                found[m.sender] = m
        return found

    # -- results ------------------------------------------------------------

    def decide(self, value: Any) -> None:
        """Record an (irrevocable) decision."""
        if self.decision is not None:
            if self.decision != value:
                raise RuntimeError(
                    f"process {self.pid} tried to re-decide "
                    f"{value!r} after deciding {self.decision!r}"
                )
            return
        self.decision = value
        self.decision_time = self.time

    def output(self, value: Any) -> None:
        """Assign the emulated failure detector output variable.

        This is the ``output_p`` of Section 2.9; the recorded assignment
        history ``O_R`` is what the transformation theorems constrain.
        """
        self.outputs.append((self.time, value))


class Process:
    """A coroutine process.  Subclasses implement :meth:`program`.

    ``program`` must be a generator that interacts with the runtime only via
    ``yield from ctx.take_step()`` (or helpers built on it).  Code between two
    ``take_step`` calls executes within a single atomic model step.
    """

    def program(
        self, ctx: ProcessContext
    ) -> Generator[List[Send], Observation, None]:
        raise NotImplementedError

    def initial_output(self) -> Any:
        """Initial value of the emulated detector output, if any."""
        return None


class CoroutineRuntime:
    """Drives one coroutine process through the step protocol."""

    def __init__(self, process: Process, ctx: ProcessContext):
        self.process = process
        self.ctx = ctx
        self._gen = process.program(ctx)
        self._primed = False
        self._pending_init_sends: List[Send] = []
        self.halted = False

    def step(self, observation: Observation) -> List[Send]:
        """Run one step: feed ``observation``, return the step's sends."""
        if self.halted:
            # A halted (returned) program keeps taking no-op steps so the
            # admissibility properties remain satisfiable; delivered
            # messages are consumed without effect.
            return []
        try:
            if not self._primed:
                # Run initialization up to the first take_step yield.  Sends
                # queued during initialization belong to the first step.
                self._pending_init_sends = next(self._gen)
                self._primed = True
            sends = self._gen.send(observation)
        except StopIteration:
            self.halted = True
            sends = []
        except Exception as exc:
            raise RuntimeError(
                f"process {self.ctx.pid} "
                f"({type(self.process).__name__}) crashed at step "
                f"{self.ctx.step_count} (t={observation.time}): {exc}"
            ) from exc
        init, self._pending_init_sends = self._pending_init_sends, []
        return list(init) + list(sends)


# ----------------------------------------------------------------------
# Adapters
# ----------------------------------------------------------------------


class AutomatonProcess(Process):
    """Run a pure automaton as a live coroutine process."""

    def __init__(self, automaton: Automaton, proposal: Any):
        self.automaton = automaton
        self.proposal = proposal
        self.state: Any = None  # current state, exposed for drivers/tests

    def program(self, ctx: ProcessContext):
        state = self.automaton.initial_state(ctx.pid, ctx.n, self.proposal)
        self.state = state  # exposed for scenario drivers and tests
        while True:
            obs = yield from ctx.take_step()
            outcome = self.automaton.transition(
                state, ctx.pid, obs.message, obs.detector_value
            )
            state = outcome.state
            self.state = state
            for dest, payload in outcome.sends:
                ctx.send(dest, payload)
            decision = self.automaton.decision(state)
            if decision is not None and ctx.decision is None:
                ctx.decide(decision)


class ReplayAutomaton(Automaton):
    """Present a deterministic coroutine process as a pure automaton.

    The automaton's state is the full observation history of the process;
    ``transition`` replays a fresh coroutine over the extended history.  This
    costs O(k) work per step for a k-step history but lets coroutine-style
    algorithms (like ``A_nuc``) serve as the subject ``A`` of the necessity
    construction, whose schedules are short.
    """

    def __init__(self, process_factory: Callable[[Any], Process], n: int):
        self._factory = process_factory
        self._n = n

    def initial_state(self, pid: int, n: int, proposal: Any) -> Any:
        return _ReplayState(pid=pid, proposal=proposal, history=())

    def transition(self, state, pid, msg, d):
        history = state.history + ((msg, d),)
        sends, decision = self._replay(pid, state.proposal, history)
        new_state = _ReplayState(pid=pid, proposal=state.proposal, history=history)
        new_state.last_decision = decision
        return TransitionOutcome(state=new_state, sends=sends)

    def decision(self, state) -> Optional[Any]:
        return getattr(state, "last_decision", None)

    def snapshot(self, state) -> Any:
        return (state.pid, state.proposal, state.history)

    def _replay(
        self,
        pid: int,
        proposal: Any,
        history: Sequence[Tuple[Optional[DeliveredMessage], Any]],
    ) -> Tuple[List[Send], Optional[Any]]:
        ctx = ProcessContext(pid, self._n)
        runtime = CoroutineRuntime(self._factory(proposal), ctx)
        sends: List[Send] = []
        for i, (msg, d) in enumerate(history):
            sends = runtime.step(Observation(message=msg, detector_value=d, time=i))
        return sends, ctx.decision


@dataclass
class _ReplayState:
    pid: int
    proposal: Any
    history: Tuple[Tuple[Optional[DeliveredMessage], Any], ...]
    last_decision: Optional[Any] = None
