"""Step-selection policies for the live system.

Asynchrony means steps of different processes interleave arbitrarily; an
admissible run additionally requires every correct process to take infinitely
many steps (property (6)).  The shipped policies realize this with fairness
guarantees: round-robin trivially, the random policy through an aging bound.

A scripted policy is provided for crafted scenarios (the contamination run of
Section 6.3 and the Theorem 7.1 adversary), where the step order *is* the
argument.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


class SchedulingPolicy:
    """Chooses which alive process takes the next step."""

    def next_process(
        self, alive: Sequence[int], time: int, rng: random.Random
    ) -> Optional[int]:
        """Pick the next process among ``alive`` (sorted), or ``None`` to halt.

        ``alive`` excludes crashed processes; it is never empty unless every
        process has crashed.
        """
        raise NotImplementedError


class RoundRobinScheduler(SchedulingPolicy):
    """Cycle through process ids, skipping crashed processes."""

    def __init__(self) -> None:
        self._cursor = 0

    def next_process(self, alive, time, rng):
        if not alive:
            return None
        n = max(alive) + 1
        for _ in range(n):
            candidate = self._cursor % n
            self._cursor += 1
            if candidate in alive:
                return candidate
        return alive[0]


class RandomFairScheduler(SchedulingPolicy):
    """Uniform random choice with an aging bound.

    Any alive process that has not stepped within ``max_gap`` scheduler
    decisions is chosen first, so property (6) holds on every prefix, not
    just almost surely.

    The overdue scan is amortized: after a scan finds nobody overdue, no
    process can *become* overdue before decision ``min(last scheduled) +
    max_gap + 1`` (last-scheduled stamps only grow and the alive set only
    shrinks), so scans are skipped until that watermark.  Choices — and
    hence runs — are identical to scanning every decision.
    """

    def __init__(self, max_gap: int = 64):
        if max_gap < 1:
            raise ValueError("max_gap must be >= 1")
        self.max_gap = max_gap
        self._last_scheduled: Dict[int, int] = {}
        self._decisions = 0
        self._next_overdue_check = max_gap + 1

    def next_process(self, alive, time, rng):
        if not alive:
            return None
        self._decisions += 1
        d = self._decisions
        if d >= self._next_overdue_check:
            threshold = d - self.max_gap
            last = self._last_scheduled
            overdue = [p for p in alive if last.get(p, 0) < threshold]
            if overdue:
                choice = overdue[0]
                last[choice] = d
                self._next_overdue_check = d + 1  # others may still be overdue
                return choice
            self._next_overdue_check = (
                min(last.get(p, 0) for p in alive) + self.max_gap + 1
            )
        choice = rng.choice(alive)
        self._last_scheduled[choice] = d
        return choice


class WeightedScheduler(SchedulingPolicy):
    """Adversarially-skewed random choice with the same aging bound.

    Some processes step far more often than others (weights), which surfaces
    interleavings that round-robin never produces.
    """

    def __init__(self, weights: Dict[int, float], max_gap: int = 128):
        self.weights = dict(weights)
        self.max_gap = max_gap
        self._last_scheduled: Dict[int, int] = {}
        self._decisions = 0
        self._next_overdue_check = max_gap + 1
        self._weights_for: Dict[tuple, List[float]] = {}

    def next_process(self, alive, time, rng):
        if not alive:
            return None
        self._decisions += 1
        d = self._decisions
        if d >= self._next_overdue_check:
            threshold = d - self.max_gap
            last = self._last_scheduled
            overdue = [p for p in alive if last.get(p, 0) < threshold]
            if overdue:
                choice = overdue[0]
                last[choice] = d
                self._next_overdue_check = d + 1
                return choice
            self._next_overdue_check = (
                min(last.get(p, 0) for p in alive) + self.max_gap + 1
            )
        key = alive if type(alive) is tuple else tuple(alive)
        weights = self._weights_for.get(key)
        if weights is None:
            weights = [self.weights.get(p, 1.0) for p in key]
            self._weights_for[key] = weights
        choice = rng.choices(key, weights=weights, k=1)[0]
        self._last_scheduled[choice] = d
        return choice


class ScriptedScheduler(SchedulingPolicy):
    """Follow an explicit step script, then fall back to another policy.

    Script entries naming crashed processes are skipped (a crashed process
    takes no steps, whatever the script says).
    """

    def __init__(
        self,
        script: Sequence[int],
        fallback: Optional[SchedulingPolicy] = None,
    ):
        self._queue: List[int] = list(script)
        self._pos = 0
        self.fallback = fallback if fallback is not None else RoundRobinScheduler()

    def next_process(self, alive, time, rng):
        while self._pos < len(self._queue):
            candidate = self._queue[self._pos]
            self._pos += 1
            if candidate in alive:
                return candidate
        return self.fallback.next_process(alive, time, rng)
