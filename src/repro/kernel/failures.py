"""Failure patterns (Section 2.2 of the paper).

A failure pattern is a function ``F : N -> 2^Pi`` where ``F(t)`` is the set of
processes that have crashed through time ``t``.  Processes never recover, so
``F(t)`` is monotone in ``t``.  We represent a pattern compactly by the crash
time of each faulty process: ``p in F(t)`` iff ``crash_times[p] <= t``.

Time is the discrete global clock of the model; in our simulations the clock
ticks once per step, so crash times are expressed in step indices.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple


class FailurePattern:
    """An immutable crash-failure pattern over processes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of processes in the system (``n >= 1``).
    crash_times:
        Mapping from process id to the first time at which the process is
        crashed.  Processes absent from the mapping are correct.
    """

    __slots__ = ("_n", "_crash_times", "_faulty", "_correct", "_epochs")

    def __init__(self, n: int, crash_times: Optional[Mapping[int, int]] = None):
        if n < 1:
            raise ValueError(f"a system needs at least one process, got n={n}")
        times: Dict[int, int] = dict(crash_times or {})
        for pid, t in times.items():
            if not 0 <= pid < n:
                raise ValueError(f"crash time given for unknown process {pid}")
            if t < 0:
                raise ValueError(f"crash time of process {pid} is negative ({t})")
        self._n = n
        self._crash_times = times
        self._faulty = frozenset(times)
        self._correct = frozenset(p for p in range(n) if p not in times)
        self._epochs: Optional[Tuple[Tuple[int, Tuple[int, ...]], ...]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def no_failures(cls, n: int) -> "FailurePattern":
        """The failure-free pattern: ``F(t) = {}`` for all ``t``."""
        return cls(n, {})

    @classmethod
    def initial_crashes(cls, n: int, crashed: Iterable[int]) -> "FailurePattern":
        """A pattern in which ``crashed`` are down from time 0 onwards."""
        return cls(n, {p: 0 for p in crashed})

    # ------------------------------------------------------------------
    # The function F
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def processes(self) -> range:
        """Pi, the set of process ids."""
        return range(self._n)

    def crashed_at(self, t: int) -> FrozenSet[int]:
        """``F(t)``: the set of processes crashed through time ``t``."""
        return frozenset(p for p, ct in self._crash_times.items() if ct <= t)

    def is_crashed(self, p: int, t: int) -> bool:
        """Whether ``p in F(t)``."""
        ct = self._crash_times.get(p)
        return ct is not None and ct <= t

    def is_alive(self, p: int, t: int) -> bool:
        return not self.is_crashed(p, t)

    def alive_at(self, t: int) -> FrozenSet[int]:
        return frozenset(p for p in range(self._n) if not self.is_crashed(p, t))

    def alive_epochs(self) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        """The alive-set timeline as ``((from_time, alive_ids), ...)`` epochs.

        Because processes never recover, ``F`` changes value at most once per
        distinct crash time; the returned epochs enumerate exactly those
        changes (first epoch starts at 0, alive ids sorted).  The live system
        steps through this timeline with a cursor, replacing the per-step
        ``alive_at(t)`` set construction with an O(1) lookup.
        """
        if self._epochs is None:
            crashes_by_time: Dict[int, list] = {}
            for p, ct in self._crash_times.items():
                crashes_by_time.setdefault(ct, []).append(p)
            alive = set(range(self._n))
            epochs = []
            times = sorted(crashes_by_time)
            if not times or times[0] != 0:
                epochs.append((0, tuple(sorted(alive))))
            for ct in times:
                alive.difference_update(crashes_by_time[ct])
                epochs.append((ct, tuple(sorted(alive))))
            self._epochs = tuple(epochs)
        return self._epochs

    @property
    def faulty(self) -> FrozenSet[int]:
        """``faulty(F)``: processes that crash at some time."""
        return self._faulty

    @property
    def correct(self) -> FrozenSet[int]:
        """``correct(F) = Pi - faulty(F)``."""
        return self._correct

    def crash_time(self, p: int) -> Optional[int]:
        """The time at which ``p`` crashes, or ``None`` if ``p`` is correct."""
        return self._crash_times.get(p)

    @property
    def last_crash_time(self) -> int:
        """The time by which every faulty process has crashed (0 if none)."""
        if not self._crash_times:
            return 0
        return max(self._crash_times.values())

    @property
    def crash_times(self) -> Mapping[int, int]:
        return dict(self._crash_times)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailurePattern):
            return NotImplemented
        return self._n == other._n and self._crash_times == other._crash_times

    def __hash__(self) -> int:
        return hash((self._n, tuple(sorted(self._crash_times.items()))))

    def __repr__(self) -> str:
        if not self._crash_times:
            return f"FailurePattern(n={self._n}, failure-free)"
        crashes = ", ".join(
            f"{p}@{t}" for p, t in sorted(self._crash_times.items())
        )
        return f"FailurePattern(n={self._n}, crashes=[{crashes}])"


class DeferredCrashPattern:
    """A failure pattern whose crash *times* are fixed during the run.

    Scenario drivers (the Section 6.3 contamination run, the Theorem 7.1
    partition adversary) know upfront *which* processes are faulty but decide
    *when* to crash them based on how the run unfolds.  Formally the run they
    produce has an ordinary failure pattern — obtained post hoc via
    :meth:`freeze` — this class merely lets the driver pick the crash times
    online.

    ``doomed`` processes are alive until :meth:`trigger` is called for them;
    everything else mirrors :class:`FailurePattern`.
    """

    def __init__(self, n: int, doomed: Iterable[int]):
        self._n = n
        self._doomed = frozenset(doomed)
        for p in self._doomed:
            if not 0 <= p < n:
                raise ValueError(f"unknown process {p}")
        self._crash_times: Dict[int, int] = {}

    @property
    def n(self) -> int:
        return self._n

    @property
    def processes(self) -> range:
        return range(self._n)

    @property
    def faulty(self) -> FrozenSet[int]:
        return self._doomed

    @property
    def correct(self) -> FrozenSet[int]:
        return frozenset(p for p in range(self._n) if p not in self._doomed)

    def trigger(self, processes: Iterable[int], t: int) -> None:
        """Crash the given doomed processes at time ``t`` (idempotent)."""
        for p in processes:
            if p not in self._doomed:
                raise ValueError(f"process {p} was not declared doomed")
            self._crash_times.setdefault(p, t)

    def trigger_all(self, t: int) -> None:
        self.trigger(self._doomed, t)

    def is_crashed(self, p: int, t: int) -> bool:
        ct = self._crash_times.get(p)
        return ct is not None and ct <= t

    def is_alive(self, p: int, t: int) -> bool:
        return not self.is_crashed(p, t)

    def alive_at(self, t: int) -> FrozenSet[int]:
        return frozenset(p for p in range(self._n) if not self.is_crashed(p, t))

    def crashed_at(self, t: int) -> FrozenSet[int]:
        return frozenset(p for p in range(self._n) if self.is_crashed(p, t))

    def crash_time(self, p: int) -> Optional[int]:
        return self._crash_times.get(p)

    @property
    def last_crash_time(self) -> int:
        return max(self._crash_times.values(), default=0)

    def freeze(self, horizon: int) -> FailurePattern:
        """The ordinary pattern this run exhibited.

        Doomed processes not yet crashed are assigned ``horizon + 1`` (they
        crash right after everything observed; any time past the horizon
        yields the same finite run).
        """
        times = dict(self._crash_times)
        for p in self._doomed:
            times.setdefault(p, horizon + 1)
        return FailurePattern(self._n, times)
