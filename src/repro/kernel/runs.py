"""Runs of pure automata, run validation, and merging (Sections 2.6, 2.10).

A run is a tuple ``R = (F, H, I, S, T)``.  For pure automata the initial
configuration ``I`` is determined by the proposals (one initial state per
proposed value), so :class:`PureRun` carries the proposal map instead of raw
states.  :func:`validate_run` checks run properties (1)-(5);
:func:`mergeable` and :func:`merge_runs` implement Section 2.10's partition
machinery, whose Lemma 2.2 the test suite validates against real algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.kernel.automaton import Automaton, DeliveredMessage
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import Message
from repro.kernel.steps import MessageUid, Schedule, Step, participants

HistoryFn = Callable[[int, int], Any]  # (p, t) -> detector value


class PureSystemSimulator:
    """Applies schedules of a pure automaton to an initial configuration.

    Owns the configuration: per-process states, the message buffer (as a
    uid-keyed map), per-sender sequence counters, and the send-index map
    needed for causal-precedence computations.
    """

    def __init__(self, automaton: Automaton, n: int, proposals: Mapping[int, Any]):
        self.automaton = automaton
        self.n = n
        self.proposals = dict(proposals)
        missing = [p for p in range(n) if p not in self.proposals]
        if missing:
            raise ValueError(f"initial configuration lacks proposals for {missing}")
        self.reset()

    def reset(self) -> None:
        self.states: Dict[int, Any] = {
            p: self.automaton.initial_state(p, self.n, self.proposals[p])
            for p in range(self.n)
        }
        self.pending: Dict[MessageUid, Message] = {}
        self._seq: Dict[int, int] = {}
        self.send_indices: Dict[MessageUid, int] = {}
        self.steps_applied = 0
        self.messages_sent = 0

    def fork(self) -> "PureSystemSimulator":
        """An independent simulator at the current configuration.

        Process states are copied through
        :meth:`~repro.kernel.automaton.Automaton.copy_state` (transitions
        may mutate in place); messages are immutable and shared.  Forks are
        what the simulation trie stores as snapshots and restores from, so
        the original keeps behaving as if never forked.
        """
        twin = PureSystemSimulator.__new__(PureSystemSimulator)
        twin.automaton = self.automaton
        twin.n = self.n
        twin.proposals = self.proposals
        twin.states = {
            p: self.automaton.copy_state(s) for p, s in self.states.items()
        }
        twin.pending = dict(self.pending)
        twin._seq = dict(self._seq)
        twin.send_indices = dict(self.send_indices)
        twin.steps_applied = self.steps_applied
        twin.messages_sent = self.messages_sent
        return twin

    # ------------------------------------------------------------------
    # Applicability and application
    # ------------------------------------------------------------------

    def is_applicable(self, step: Step) -> bool:
        """Whether ``step`` is applicable to the current configuration."""
        if step.msg_uid is None:
            return True
        message = self.pending.get(step.msg_uid)
        return message is not None and message.dest == step.pid

    def apply_step(self, step: Step, time: int = 0) -> List[Message]:
        """Apply ``step``; return the messages it sent."""
        delivered: Optional[DeliveredMessage] = None
        if step.msg_uid is not None:
            message = self.pending.get(step.msg_uid)
            if message is None or message.dest != step.pid:
                raise ValueError(f"step {step!r} is not applicable")
            del self.pending[step.msg_uid]
            delivered = DeliveredMessage(message.sender, message.payload)
        outcome = self.automaton.transition(
            self.states[step.pid], step.pid, delivered, step.detector_value
        )
        self.states[step.pid] = outcome.state
        sent: List[Message] = []
        for dest, payload in outcome.sends:
            seq = self._seq.get(step.pid, 0)
            self._seq[step.pid] = seq + 1
            uid = (step.pid, seq)
            message = Message(step.pid, dest, payload, uid=uid, sent_at=time)
            self.pending[uid] = message
            self.send_indices[uid] = self.steps_applied
            sent.append(message)
        self.steps_applied += 1
        self.messages_sent += len(sent)
        return sent

    def run_schedule(
        self, schedule: Schedule, times: Optional[Sequence[int]] = None
    ) -> None:
        for i, step in enumerate(schedule):
            self.apply_step(step, time=times[i] if times is not None else i)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def oldest_pending_uid(self, pid: int) -> Optional[MessageUid]:
        """The uid of the oldest message pending for ``pid``.

        'Oldest' is by send order, the rule used in the canonical schedule
        construction of Lemma 4.10.
        """
        best: Optional[Message] = None
        best_index = -1
        for uid, message in self.pending.items():
            if message.dest != pid:
                continue
            index = self.send_indices[uid]
            if best is None or index < best_index:
                best, best_index = message, index
        return best.uid if best is not None else None

    def pending_count_for(self, pid: int) -> int:
        return sum(1 for m in self.pending.values() if m.dest == pid)

    def decision(self, pid: int) -> Optional[Any]:
        return self.automaton.decision(self.states[pid])

    def decided_pids(self) -> Dict[int, Any]:
        found = {}
        for p in range(self.n):
            value = self.decision(p)
            if value is not None:
                found[p] = value
        return found

    def snapshot(self, pid: int) -> Any:
        return self.automaton.snapshot(self.states[pid])


@dataclass
class PureRun:
    """A finite run ``(F, H, I, S, T)`` of a pure automaton.

    ``history`` is a callable ``H(p, t)``; ``proposals`` determines the
    initial configuration ``I``.
    """

    automaton: Automaton
    n: int
    proposals: Mapping[int, Any]
    pattern: FailurePattern
    history: HistoryFn
    schedule: Schedule
    times: Sequence[int]

    def simulator(self) -> PureSystemSimulator:
        sim = PureSystemSimulator(self.automaton, self.n, self.proposals)
        return sim

    def final_states(self) -> Dict[int, Any]:
        """Snapshot of every participant's state after applying ``S`` to ``I``."""
        sim = self.simulator()
        sim.run_schedule(self.schedule, self.times)
        return {p: sim.snapshot(p) for p in participants(self.schedule)}


def validate_run(run: PureRun) -> List[str]:
    """Check run properties (1)-(5); return human-readable violations."""
    violations: List[str] = []
    schedule, times = run.schedule, list(run.times)

    # Property (2): S and T have the same length.
    if len(schedule) != len(times):
        violations.append(
            f"property 2: |S|={len(schedule)} differs from |T|={len(times)}"
        )
        return violations

    # Property (4): T is nondecreasing.
    for i in range(1, len(times)):
        if times[i] < times[i - 1]:
            violations.append(
                f"property 4: T[{i}]={times[i]} < T[{i - 1}]={times[i - 1]}"
            )

    # Property (3): no steps after crashing; detector values follow H.
    for i, step in enumerate(schedule):
        if run.pattern.is_crashed(step.pid, times[i]):
            violations.append(
                f"property 3: process {step.pid} takes step {i} at time "
                f"{times[i]} after crashing"
            )
        expected = run.history(step.pid, times[i])
        if step.detector_value != expected:
            violations.append(
                f"property 3: step {i} of process {step.pid} saw detector "
                f"value {step.detector_value!r}, but H({step.pid}, {times[i]}) "
                f"= {expected!r}"
            )

    # Property (1): S applicable to I (simulate), gathering send indices for
    # property (5) along the way.
    sim = run.simulator()
    send_indices: Dict[MessageUid, int] = {}
    applicable = True
    for i, step in enumerate(schedule):
        if not sim.is_applicable(step):
            violations.append(f"property 1: step {i} ({step!r}) not applicable")
            applicable = False
            break
        sim.apply_step(step, time=times[i])
    if applicable:
        send_indices = sim.send_indices

        # Property (5): causal precedence implies strictly increasing times.
        last_step_of: Dict[int, int] = {}
        for j, step in enumerate(schedule):
            prev = last_step_of.get(step.pid)
            if prev is not None and times[j] <= times[prev]:
                violations.append(
                    f"property 5: steps {prev} and {j} of process {step.pid} "
                    f"have non-increasing times {times[prev]}, {times[j]}"
                )
            last_step_of[step.pid] = j
            if step.msg_uid is not None and step.msg_uid in send_indices:
                s = send_indices[step.msg_uid]
                if times[j] <= times[s]:
                    violations.append(
                        f"property 5: message {step.msg_uid} received at step "
                        f"{j} (t={times[j]}) no later than its send at step "
                        f"{s} (t={times[s]})"
                    )
    return violations


def mergeable(run0: PureRun, run1: PureRun) -> bool:
    """Whether two finite runs are mergeable (Section 2.10).

    Requires disjoint participant sets and a common initial configuration
    consistent with both proposal maps on their participants.  Both runs must
    share the failure pattern (and, semantically, the history; we compare
    the pattern and trust callers on the history, which is a function).
    """
    if run0.n != run1.n or run0.pattern != run1.pattern:
        return False
    p0 = participants(run0.schedule)
    p1 = participants(run1.schedule)
    return not (p0 & p1)


def merge_runs(
    run0: PureRun,
    run1: PureRun,
    rng: Optional[random.Random] = None,
) -> PureRun:
    """Merge two mergeable runs into one (Section 2.10).

    Steps are interleaved in nondecreasing time order; concurrent steps
    (equal times) are interleaved arbitrarily — deterministically run0-first,
    or randomly when ``rng`` is given (both orders are valid mergings).
    """
    if not mergeable(run0, run1):
        raise ValueError("runs are not mergeable")

    tagged: List[Tuple[int, int, int, Step]] = []
    for i, step in enumerate(run0.schedule):
        tagged.append((run0.times[i], 0, i, step))
    for i, step in enumerate(run1.schedule):
        tagged.append((run1.times[i], 1, i, step))
    if rng is not None:
        # Shuffle first so ties between the two runs land in random order;
        # the sort below is stable, so only tie order is affected.
        rng.shuffle(tagged)
    tagged.sort(key=lambda item: item[0])
    # The shuffle may have scrambled each run's internal order among steps
    # with equal times; re-impose per-run order inside every tie block.
    tagged = _reorder_ties(tagged)

    merged_steps = [item[3] for item in tagged]
    merged_times = [item[0] for item in tagged]

    p0 = participants(run0.schedule)
    p1 = participants(run1.schedule)
    proposals: Dict[int, Any] = {}
    for p in range(run0.n):
        if p in p1:
            proposals[p] = run1.proposals[p]
        elif p in p0:
            proposals[p] = run0.proposals[p]
        else:
            proposals[p] = run0.proposals[p]

    return PureRun(
        automaton=run0.automaton,
        n=run0.n,
        proposals=proposals,
        pattern=run0.pattern,
        history=run0.history,
        schedule=Schedule(merged_steps),
        times=merged_times,
    )


def _reorder_ties(
    tagged: List[Tuple[int, int, int, Step]]
) -> List[Tuple[int, int, int, Step]]:
    """Restore per-run step order within each equal-time block."""
    result: List[Tuple[int, int, int, Step]] = []
    i = 0
    while i < len(tagged):
        j = i
        while j < len(tagged) and tagged[j][0] == tagged[i][0]:
            j += 1
        block = tagged[i:j]
        # Keep the block's run pattern (which run occupies each slot) but
        # order each run's own steps by their original index.
        run_slots = [item[1] for item in block]
        per_run = {
            0: sorted((x for x in block if x[1] == 0), key=lambda x: x[2]),
            1: sorted((x for x in block if x[1] == 1), key=lambda x: x[2]),
        }
        cursors = {0: 0, 1: 0}
        for slot in run_slots:
            result.append(per_run[slot][cursors[slot]])
            cursors[slot] += 1
        i = j
    return result


def pure_run_from_live(
    result: "RunResultLike",
    automaton: Automaton,
    proposals: Mapping[int, Any],
    history: HistoryFn,
) -> PureRun:
    """Reconstruct the formal run ``(F, H, I, S, T)`` of a live execution.

    The live :class:`~repro.kernel.system.System` executes pure-automaton
    processes through the coroutine adapter; this function lifts its step
    trace back into the Section 2.6 formalism so ``validate_run`` can check
    properties (1)-(5) against the *same* failure pattern and history the
    system ran under.  A cross-check that the live executor and the formal
    model agree.

    Only meaningful for systems whose processes wrap a single shared pure
    automaton (message uids and sends must replay identically).
    """
    steps = []
    times = []
    for record in result.steps:
        uid = record.message.uid if record.message is not None else None
        steps.append(
            Step(pid=record.pid, msg_uid=uid, detector_value=record.detector_value)
        )
        times.append(record.time)
    return PureRun(
        automaton=automaton,
        n=result.n,
        proposals=dict(proposals),
        pattern=result.pattern,
        history=history,
        schedule=Schedule(steps),
        times=times,
    )
