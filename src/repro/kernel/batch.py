"""Batched multi-run engine: hundreds of independent runs per process.

Sweeps, the chaos fuzzer and extraction sampling all execute many
*independent* runs — same shape, different seeds or case specs.  The
interpreted :class:`~repro.kernel.system.System` pays per-step dispatch
costs (policy objects, coroutine adapters, per-entry aging objects) for
every one of them.  :class:`BatchSystem` advances many runs ("lanes") in a
single process with struct-of-arrays state and a fused step loop, and is
**bit-identical** to the interpreted engine: for every supported
configuration, a lane reproduces exactly the schedule, deliveries,
decisions and :class:`~repro.kernel.system.RunResult` that
``System.run()`` produces from the same seed.

Layout
------
Per-process state lives in flat arrays indexed by pid (detector-segment
cursors, message-queue heads, scheduler fairness counters, decision
flags) instead of per-process objects; batch-level control vectors (time,
budget, steps, decisions) are mirrored into numpy arrays when numpy is
available, with a pure-python fallback otherwise.  The per-step hot state
stays in Python lists on purpose: bit-identity pins every random draw to
the exact ``random.Random`` scalar streams the interpreted engine uses
(``{seed}/sched`` and ``{seed}/delivery/{p}``), which vectorized RNGs
cannot reproduce, and CPython scalar indexing into lists is faster than
into numpy arrays.  Numpy earns its keep on the control plane: merging
detector-history breakpoints, retiring lanes, and aggregate statistics.

Capability probe
----------------
:func:`probe_spec` routes each lane: supported configurations take the
fused fast path, everything else (scripted schedulers, blocking or custom
delivery policies, deferred/mutable crash patterns, coroutine processes,
non-piecewise-constant histories, enabled observability) runs on the
interpreted engine — same results, no speedup.  Fallbacks are counted in
:attr:`BatchSystem.stats` and, when observability is enabled, in the
``batch.fallback`` metric.  See ``docs/performance.md`` for the full
capability matrix.

Bit-identity invariants the fused loop preserves
------------------------------------------------
* scheduler draws come from ``random.Random(f"{seed}/sched")`` with
  ``rng.choice`` inlined as the exact ``getrandbits`` rejection loop;
* delivery draws come from ``random.Random(f"{seed}/delivery/{p}")`` in
  the same order (age check, lambda roll, uniform pick);
* message aging is O(1) via enqueue-time step notes instead of per-entry
  counters, provably equal to the interpreted aging rule;
* detector histories are pre-merged into per-process breakpoint arrays
  advanced by a monotone cursor (no per-step bisect);
* crash epochs advance by the same cursor rule as ``System.step``;
* the run loop replicates ``System._run_loop`` stop/extra-steps
  semantics, including the stop check before the first step.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.kernel.automaton import (
    Automaton,
    AutomatonProcess,
    DeliveredMessage,
    Process,
)
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import (
    CoalescingDelivery,
    DeliveryPolicy,
    FairRandomDelivery,
    Message,
    OldestFirstDelivery,
    PerSenderFifoDelivery,
)
from repro.kernel.scheduler import (
    RandomFairScheduler,
    RoundRobinScheduler,
    SchedulingPolicy,
    ScriptedScheduler,
    WeightedScheduler,
)
from repro.kernel.system import RunResult, StepRecord, System, all_correct_decided
from repro import obs as _obs

try:  # pragma: no cover - exercised via use_numpy in both states
    import numpy as _np
except ImportError:  # pragma: no cover - the baked toolchain ships numpy
    _np = None

UNKNOWN = "?"

__all__ = [
    "BatchSystem",
    "LaneSpec",
    "build_delivery",
    "build_scheduler",
    "probe_spec",
]


# ----------------------------------------------------------------------
# Serializable scheduler / delivery specs
# ----------------------------------------------------------------------
# The spec vocabulary started life in repro.chaos.space; it lives here now
# so the capability probe and the chaos fuzzer share one dialect
# (chaos.space re-exports the builders for compatibility).


def build_scheduler(spec: Sequence[Any]) -> SchedulingPolicy:
    """A fresh scheduler instance from its serializable spec."""
    kind = spec[0]
    if kind == "round-robin":
        return RoundRobinScheduler()
    if kind == "random-fair":
        return RandomFairScheduler(max_gap=spec[1])
    if kind == "weighted":
        weights = {int(p): w for p, w in spec[1]}
        return WeightedScheduler(weights, max_gap=spec[2])
    if kind == "scripted":
        fallback = build_scheduler(spec[2]) if len(spec) > 2 else None
        return ScriptedScheduler(list(spec[1]), fallback=fallback)
    raise ValueError(f"unknown scheduler spec {spec!r}")


def build_delivery(spec: Sequence[Any]) -> DeliveryPolicy:
    """A fresh delivery policy instance from its serializable spec."""
    kind = spec[0]
    if kind == "fair-random":
        return FairRandomDelivery(lambda_prob=spec[1], max_age=spec[2])
    if kind == "per-sender-fifo":
        return PerSenderFifoDelivery(lambda_prob=spec[1], max_age=spec[2])
    if kind == "oldest-first":
        return OldestFirstDelivery()
    if kind == "coalescing":
        inner = build_delivery(spec[1]) if len(spec) > 1 else None
        return CoalescingDelivery(inner=inner)
    raise ValueError(f"unknown delivery spec {spec!r}")


# ----------------------------------------------------------------------
# Lane specification
# ----------------------------------------------------------------------


@dataclass
class LaneSpec:
    """Everything one lane needs to reproduce one ``System.run()``.

    Exactly one process source must be given:

    * ``automaton`` + ``proposals`` — pure-automaton consensus lanes
      (``AutomatonProcess`` per pid), eligible for the fast path;
    * ``program="dag-builder"`` — A_DAG sampling lanes
      (:class:`repro.core.sampling.DagBuilder` per pid), eligible for the
      fast path;
    * ``processes_factory`` — arbitrary processes; always interpreted.

    ``scheduler`` / ``delivery`` are serializable spec tuples (see
    :func:`build_scheduler` / :func:`build_delivery`), or ``None`` for the
    kernel defaults.  Policy *instances* are rejected: they carry mutable
    cursors and cannot be shared or rebuilt per lane.

    ``stop`` is declarative: ``None`` (run the full budget) or
    ``"all-correct-decided"`` (the consensus stop condition), optionally
    with ``extra_steps`` — matching ``System.run``'s protocol.
    """

    pattern: FailurePattern
    history: Any
    seed: int
    max_steps: int
    automaton: Optional[Automaton] = None
    proposals: Optional[Mapping[int, Any]] = None
    program: Optional[str] = None
    processes_factory: Optional[Callable[[], Mapping[int, Process]]] = None
    scheduler: Optional[Tuple[Any, ...]] = None
    delivery: Optional[Tuple[Any, ...]] = None
    trace: str = "metrics"
    stop: Optional[str] = None
    extra_steps: int = 0

    def __post_init__(self) -> None:
        sources = sum(
            1
            for given in (self.automaton, self.program, self.processes_factory)
            if given is not None
        )
        if sources != 1:
            raise ValueError(
                "exactly one of automaton / program / processes_factory "
                "must be given"
            )
        if self.automaton is not None and self.proposals is None:
            raise ValueError("automaton lanes need proposals")
        if self.program is not None and self.program != "dag-builder":
            raise ValueError(f"unknown lane program {self.program!r}")
        if self.trace not in ("full", "metrics"):
            raise ValueError(f"unknown trace mode {self.trace!r}")
        if self.stop not in (None, "all-correct-decided"):
            raise ValueError(f"unknown stop condition {self.stop!r}")
        if isinstance(self.scheduler, SchedulingPolicy):
            raise ValueError("pass a scheduler spec tuple, not an instance")
        if isinstance(self.delivery, DeliveryPolicy):
            raise ValueError("pass a delivery spec tuple, not an instance")


# ----------------------------------------------------------------------
# Capability probe
# ----------------------------------------------------------------------

_FAST_SCHEDULERS = ("random-fair", "round-robin", "weighted")
_FAST_DELIVERIES = ("fair-random", "per-sender-fifo", "oldest-first")


def _segment_merge(per_component: List[Tuple[List[int], List[Any]]]):
    """Merge component breakpoint tables into one ``(times, values)`` pair.

    Values at merged time ``t`` are the tuple of component values holding
    at ``t`` — exactly ``PairedHistory.value``.  The gather runs on numpy
    when available (breakpoint counts are the one place a batch build does
    O(timeline) work per lane); the bisect fallback is value-identical.
    """
    if len(per_component) == 1:
        return per_component[0]
    # Numpy only pays off past a few dozen breakpoints; the typical
    # detector timeline has a handful, where small-array overhead loses
    # to bisect.
    if _np is not None and sum(len(times) for times, _ in per_component) >= 64:
        merged = _np.unique(
            _np.concatenate(
                [_np.asarray(times, dtype=_np.int64) for times, _ in per_component]
            )
        )
        columns = []
        for times, values in per_component:
            idx = (
                _np.searchsorted(
                    _np.asarray(times, dtype=_np.int64), merged, side="right"
                )
                - 1
            )
            columns.append([values[i] for i in idx.tolist()])
        merged_times = merged.tolist()
    else:
        merged_times = sorted({t for times, _ in per_component for t in times})
        columns = []
        for times, values in per_component:
            columns.append(
                [values[bisect_right(times, t) - 1] for t in merged_times]
            )
    merged_values = [tuple(col[i] for col in columns) for i in range(len(merged_times))]
    return merged_times, merged_values


def _history_breakpoints(history: Any, p: int):
    """Per-process ``(times, values)`` for piecewise-constant histories.

    Returns ``None`` for history types whose values cannot be proven
    piecewise-constant ahead of the run (functional, recorded, adaptive or
    injector-wrapped histories) — those lanes fall back.
    """
    from repro.detectors.base import ScheduleHistory
    from repro.detectors.paired import PairedHistory

    if type(history) is ScheduleHistory:
        times = history._times.get(p)
        if times is None:
            return None
        return list(times), list(history._values[p])
    if type(history) is PairedHistory:
        parts = []
        for component in history.components:
            part = _history_breakpoints(component, p)
            if part is None:
                return None
            parts.append(part)
        return _segment_merge(parts)
    return None


def _segment_tables(history: Any, n: int):
    """Breakpoint tables for all processes, or ``None`` if unsupported."""
    tables = []
    for p in range(n):
        table = _history_breakpoints(history, p)
        if table is None:
            return None
        tables.append(table)
    return tables


def probe_spec(spec: LaneSpec) -> Optional[str]:
    """Why ``spec`` cannot take the fast path, or ``None`` if it can.

    The returned reason string is recorded per lane in
    :attr:`BatchSystem.stats` and drives the ``batch.fallback`` metric.
    """
    return _probe(spec)[0]


def _probe(spec: LaneSpec):
    """``(reason, segment_tables)`` — tables are built once, here, and
    handed to the fast lane so the probe isn't paid twice per lane."""
    if _obs._ENABLED:
        # Fast lanes skip the kernel.* / consensus.* counters and spans the
        # interpreted engine records; with observability on, only the
        # interpreted path reproduces the telemetry byte-for-byte.
        return "obs-enabled", None
    if type(spec.pattern) is not FailurePattern:
        return "pattern", None
    if spec.processes_factory is not None:
        return "processes", None
    if spec.scheduler is not None and spec.scheduler[0] not in _FAST_SCHEDULERS:
        return "scheduler", None
    if spec.delivery is not None:
        kind = spec.delivery[0]
        if kind == "coalescing":
            if spec.program != "dag-builder":
                # Coalescing over non-DAG payloads depends on the duck-typed
                # coalescible predicate per payload; only DAG lanes make it
                # statically predictable.
                return "delivery", None
            if len(spec.delivery) > 1 and (
                spec.delivery[1][0] not in _FAST_DELIVERIES
            ):
                return "delivery", None
        elif kind not in _FAST_DELIVERIES:
            return "delivery", None
    if spec.automaton is not None and not _supported_automaton(spec.automaton):
        return "automaton", None
    tables = _segment_tables(spec.history, spec.pattern.n)
    if tables is None:
        return "history", None
    return None, tables


def _supported_automaton(automaton: Automaton) -> bool:
    # Any pure Automaton whose transition honours the documented contract
    # (deterministic in (state, msg, d)) replays exactly on the generic
    # fast engine; the contract is the Automaton interface itself.
    return isinstance(automaton, Automaton)


def _specialization_for(automaton: Automaton) -> str:
    """Which fast engine runs this automaton: ``"mr-quorum"`` or ``"generic"``.

    The specialized engine inlines the LeaderQuorumConsensus phase machine
    with QuorumMR's quorum hooks; it demands the *exact* types it was
    derived from (subclasses may override hooks).
    """
    from repro.consensus.quorum_mr import NaiveSigmaNuConsensus, QuorumMR

    if type(automaton) in (QuorumMR, NaiveSigmaNuConsensus):
        return "mr-quorum"
    return "generic"


# ----------------------------------------------------------------------
# Engine / policy dispatch codes (per-tick ints, not per-tick strings)
# ----------------------------------------------------------------------

_ENGINE_MR = 0
_ENGINE_GENERIC = 1
_ENGINE_DAG = 2

_SCHED_RF = 0
_SCHED_RR = 1
_SCHED_OBJ = 2

_DELIV_FAIR = 0
_DELIV_OLDEST = 1
_DELIV_PSF = 2

_MR_LEAD = 0
_MR_REP = 1
_MR_PROP = 2


class _FastLane:
    """Struct-of-arrays state of one fast-path lane.

    Per-process state is one flat list per variable indexed by pid — the
    batch replaces the interpreted engine's per-process objects
    (ProcessContext, _PendingEntry, policy dicts) with parallel arrays.
    """

    __slots__ = (
        "index", "spec", "n", "reason", "time", "budget", "remaining_extra",
        "sent", "delivered", "sched_rng", "dest_rngs", "epochs", "epoch_idx",
        "alive", "alive_set", "n_alive", "k_alive", "next_epoch_at",
        "sched_mode", "sched_obj", "max_gap", "sd", "last_sched", "rr_cursor",
        "deliv_mode", "lambda_prob", "max_age", "coalescing", "pending",
        "note_counts", "dest_steps", "seqs", "seg_times", "seg_values",
        "seg_idx", "parked", "engine", "states", "transition", "decision_of",
        "lambda_skip", "mr_x", "mr_round", "mr_phase", "mr_opened",
        "mr_decided", "mr_leads", "mr_reps", "mr_props", "mr_segments",
        "cores", "decisions", "decision_times", "has_decided",
        "undecided_correct", "check_stop", "extra_steps", "record_trace",
        "steps", "queried", "correct_set",
    )

    def __init__(self, index: int, spec: LaneSpec, tables):
        self.index = index
        self.spec = spec
        n = spec.pattern.n
        self.n = n
        self.reason: Optional[str] = None
        self.time = 0
        self.budget = spec.max_steps
        self.remaining_extra = -1  # -1 encodes _run_loop's None
        self.sent = 0
        self.delivered = 0
        seed = spec.seed
        self.sched_rng = random.Random(f"{seed}/sched")
        self.dest_rngs = [random.Random(f"{seed}/delivery/{p}") for p in range(n)]
        # Crash-epoch cursor (mirrors System's inlined _alive_at).
        self.epochs = spec.pattern.alive_epochs()
        self.epoch_idx = 0
        self.alive = self.epochs[0][1]
        self.alive_set = set(self.alive)
        self.n_alive = len(self.alive)
        self.k_alive = self.n_alive.bit_length()
        self.next_epoch_at = (
            self.epochs[1][0] if len(self.epochs) > 1 else None
        )
        # Scheduler dispatch.
        sspec = spec.scheduler
        self.sched_obj: Optional[SchedulingPolicy] = None
        self.sd = [0, 0]
        self.last_sched = [0] * n
        self.rr_cursor = 0
        if sspec is None:
            self.sched_mode = _SCHED_RF
            self.max_gap = 64
        elif sspec[0] == "random-fair":
            self.sched_mode = _SCHED_RF
            self.max_gap = sspec[1]
        elif sspec[0] == "round-robin":
            self.sched_mode = _SCHED_RR
            self.max_gap = 0
        else:  # weighted: exact rng.choices draws need the real policy
            self.sched_mode = _SCHED_OBJ
            self.sched_obj = build_scheduler(sspec)
            self.max_gap = 0
        self.sd[1] = self.max_gap + 1
        # Delivery dispatch.
        dspec = spec.delivery
        self.coalescing = False
        if dspec is not None and dspec[0] == "coalescing":
            self.coalescing = True
            dspec = dspec[1] if len(dspec) > 1 else None
        if dspec is None:
            self.deliv_mode = _DELIV_FAIR
            self.lambda_prob = 0.25
            self.max_age = 40
        elif dspec[0] == "fair-random":
            self.deliv_mode = _DELIV_FAIR
            self.lambda_prob = dspec[1]
            self.max_age = dspec[2]
        elif dspec[0] == "per-sender-fifo":
            self.deliv_mode = _DELIV_PSF
            self.lambda_prob = dspec[1]
            self.max_age = dspec[2]
        else:
            self.deliv_mode = _DELIV_OLDEST
            self.lambda_prob = 0.0
            self.max_age = 0
        # Message plane: entries are (sender, payload, enq_note, seq, msg)
        # tuples; enq_note is the destination's step-note count at enqueue,
        # so age == note_counts[dest] - enq_note with no per-entry aging.
        self.pending: List[List[tuple]] = [[] for _ in range(n)]
        self.note_counts = [0] * n
        self.dest_steps = [0] * n
        self.seqs = [0] * n
        # Detector plane: merged per-pid breakpoint arrays + monotone cursor.
        self.seg_times = [times for times, _ in tables]
        self.seg_values = [values for _, values in tables]
        self.seg_idx = [0] * n
        self.parked = [-1] * n
        # Engine state.
        self.decisions: Dict[int, Any] = {}
        self.decision_times: Dict[int, int] = {}
        self.has_decided = [False] * n
        self.correct_set = spec.pattern.correct
        self.check_stop = spec.stop == "all-correct-decided"
        self.undecided_correct = len(self.correct_set)
        self.extra_steps = spec.extra_steps
        self.record_trace = spec.trace == "full"
        self.steps: List[StepRecord] = []
        self.queried: Dict[int, List[Tuple[int, Any]]] = (
            {p: [] for p in range(n)} if self.record_trace else {}
        )
        self.states: List[Any] = []
        self.cores: List[Any] = []
        self.transition = None
        self.decision_of = None
        self.lambda_skip = False
        self.mr_x: List[Any] = []
        self.mr_round: List[int] = []
        self.mr_phase: List[int] = []
        self.mr_opened: List[bool] = []
        self.mr_decided: List[Any] = []
        self.mr_leads: List[Dict[int, Dict[int, Any]]] = []
        self.mr_reps: List[Dict[int, Dict[int, Any]]] = []
        self.mr_props: List[Dict[int, Dict[int, Any]]] = []
        self.mr_segments: List[List[tuple]] = []
        if spec.program == "dag-builder":
            from repro.core.dag import DagCore

            self.engine = _ENGINE_DAG
            self.cores = [DagCore(p, n) for p in range(n)]
        elif _specialization_for(spec.automaton) == "mr-quorum":
            self.engine = _ENGINE_MR
            proposals = spec.proposals
            self.mr_x = [proposals[p] for p in range(n)]
            self.mr_round = [1] * n
            self.mr_phase = [_MR_LEAD] * n
            self.mr_opened = [False] * n
            self.mr_decided = [None] * n
            self.mr_leads = [{} for _ in range(n)]
            self.mr_reps = [{} for _ in range(n)]
            self.mr_props = [{} for _ in range(n)]
            # Per-segment (leader, sorted-quorum-or-None, raw-d) tables:
            # quorum membership and unanimity loops run over the sorted
            # tuple, matching the frozenset hooks value-for-value.
            self.mr_segments = [
                [_mr_segment(v) for v in self.seg_values[p]] for p in range(n)
            ]
        else:
            self.engine = _ENGINE_GENERIC
            auto = spec.automaton
            self.states = [
                auto.initial_state(p, n, spec.proposals[p]) for p in range(n)
            ]
            self.transition = auto.transition
            self.decision_of = auto.decision
            self.lambda_skip = bool(getattr(type(auto), "lambda_quiescent", False))

    # -- epoch cursor ---------------------------------------------------

    def advance_epochs(self, t: int) -> None:
        epochs = self.epochs
        while self.next_epoch_at is not None and t >= self.next_epoch_at:
            self.epoch_idx += 1
            self.alive = epochs[self.epoch_idx][1]
            self.next_epoch_at = (
                epochs[self.epoch_idx + 1][0]
                if self.epoch_idx + 1 < len(epochs)
                else None
            )
        self.alive_set = set(self.alive)
        self.n_alive = len(self.alive)
        self.k_alive = self.n_alive.bit_length()

    # -- results --------------------------------------------------------

    def result(self) -> RunResult:
        spec = self.spec
        n = self.n
        if spec.program == "dag-builder":
            outputs: Dict[int, List[Tuple[int, Any]]] = {p: [] for p in range(n)}
            initial: Dict[int, Any] = {p: None for p in range(n)}
        else:
            outputs = {p: [] for p in range(n)}
            initial = {p: None for p in range(n)}
        # The interpreted engine assembles these dicts by iterating its
        # pid-keyed contexts, so insertion order is ascending pid — not
        # decision order.  Downstream consumers iterate the dicts (e.g.
        # the agreement checkers' grouping messages), so order matters
        # for byte-identity even though dict equality ignores it.
        decisions = {p: self.decisions[p] for p in sorted(self.decisions)}
        decision_times = {
            p: self.decision_times[p] for p in sorted(self.decision_times)
        }
        return RunResult(
            n=n,
            pattern=spec.pattern,
            steps=self.steps,
            decisions=decisions,
            decision_times=decision_times,
            outputs=outputs,
            initial_outputs=initial,
            queried=self.queried,
            stop_reason=self.reason or "manual",
            final_time=self.time,
            messages_sent=self.sent,
            messages_delivered=self.delivered,
            total_steps=self.time,
        )


def _mr_segment(value: Any) -> tuple:
    """One specialized quorum-MR segment: ``(leader, sorted_quorum, raw)``.

    ``sorted_quorum`` is ``None`` when the quorum is empty (the wait can
    never be satisfied in this segment — QuorumMR's ``quorum and ...``).
    """
    leader, quorum = value
    members = tuple(sorted(quorum))
    return (leader, members if members else None, value)


class _FallbackLane:
    """An interpreted lane: a real ``System`` built from the spec."""

    def __init__(self, index: int, spec: LaneSpec, reason: str):
        self.index = index
        self.spec = spec
        self.reason = reason
        self.processes: Optional[Mapping[int, Process]] = None

    def run(self) -> RunResult:
        spec = self.spec
        if spec.processes_factory is not None:
            processes = dict(spec.processes_factory())
        elif spec.program == "dag-builder":
            from repro.core.sampling import DagBuilder

            processes = {p: DagBuilder() for p in range(spec.pattern.n)}
        else:
            processes = {
                p: AutomatonProcess(spec.automaton, spec.proposals[p])
                for p in range(spec.pattern.n)
            }
        self.processes = processes
        system = System(
            processes,
            spec.pattern,
            spec.history,
            scheduler=(
                build_scheduler(spec.scheduler) if spec.scheduler else None
            ),
            delivery=build_delivery(spec.delivery) if spec.delivery else None,
            seed=spec.seed,
            trace=spec.trace,
        )
        stop = all_correct_decided if spec.stop == "all-correct-decided" else None
        return system.run(
            max_steps=spec.max_steps,
            stop_when=stop,
            extra_steps=spec.extra_steps,
        )

    def extras(self) -> Dict[int, Any]:
        if self.spec.program == "dag-builder" and self.processes is not None:
            return {p: proc.core for p, proc in self.processes.items()}
        return {}


class BatchSystem:
    """Advance many independent runs in one process, bit-identically.

    ``specs`` describe the lanes; :meth:`run` returns one
    :class:`RunResult` per lane, in spec order, each equal to what
    ``System.run()`` yields from the same configuration and seed.  Lanes
    the capability probe rejects execute on the interpreted engine
    (``stats["fallback_reasons"]`` says why).

    ``use_numpy`` forces the control plane on (requires numpy) or off;
    ``None`` auto-detects.  Numpy never changes results — it only
    accelerates history merging, retirement scans and statistics.
    """

    def __init__(
        self,
        specs: Sequence[LaneSpec],
        use_numpy: Optional[bool] = None,
        slice_ticks: int = 96,
    ):
        if use_numpy is None:
            use_numpy = _np is not None
        elif use_numpy and _np is None:
            raise ValueError("use_numpy=True but numpy is unavailable")
        self.use_numpy = use_numpy
        self.slice_ticks = slice_ticks
        self.specs = list(specs)
        self.lanes: List[Any] = []
        reasons: Dict[str, int] = {}
        for i, spec in enumerate(self.specs):
            reason, tables = _probe(spec)
            if reason is None:
                self.lanes.append(_FastLane(i, spec, tables))
            else:
                self.lanes.append(_FallbackLane(i, spec, reason))
                reasons[reason] = reasons.get(reason, 0) + 1
                if _obs._ENABLED:
                    _obs.metrics().inc("batch.fallback")
                    # Structured fallback reason: one event per demoted
                    # lane (tick = lane index), so a batch-vs-serial trace
                    # names exactly which lanes lost the fast path and why.
                    _obs.tracer().event(
                        "batch.fallback", tick=i, lane=i, reason=reason
                    )
        self.stats: Dict[str, Any] = {
            "lanes": len(self.lanes),
            "fast": sum(1 for l in self.lanes if isinstance(l, _FastLane)),
            "fallback": sum(
                1 for l in self.lanes if isinstance(l, _FallbackLane)
            ),
            "fallback_reasons": reasons,
            "steps": 0,
            # Filled by run(): per-wave active-lane and retirement curves.
            "waves": 0,
            "wave_occupancy": [],
            "wave_retired": [],
        }
        self._results: List[Optional[RunResult]] = [None] * len(self.lanes)

    # -- introspection ---------------------------------------------------

    def lane_modes(self) -> List[str]:
        """Per-lane routing: ``"fast"`` or ``"fallback:<reason>"``."""
        return [
            "fast" if isinstance(l, _FastLane) else f"fallback:{l.reason}"
            for l in self.lanes
        ]

    def extras(self, index: int) -> Dict[int, Any]:
        """Per-process engine extras of lane ``index`` (DAG lanes: cores)."""
        lane = self.lanes[index]
        if isinstance(lane, _FallbackLane):
            return lane.extras()
        if lane.engine == _ENGINE_DAG:
            return {p: core for p, core in enumerate(lane.cores)}
        return {}

    def control_vectors(self) -> Dict[str, Any]:
        """Batch-level control vectors (numpy arrays when enabled).

        ``time``/``steps`` per lane plus the per-lane decided-process
        counts — the decision vector the sweeps aggregate over.
        """
        times = [
            (r.final_time if r is not None else 0) for r in self._results
        ]
        decided = [
            (len(r.decisions) if r is not None else 0) for r in self._results
        ]
        if self.use_numpy:
            return {
                "time": _np.asarray(times, dtype=_np.int64),
                "decided": _np.asarray(decided, dtype=_np.int64),
            }
        return {"time": times, "decided": decided}

    # -- execution -------------------------------------------------------

    def run(self) -> List[RunResult]:
        """Execute every lane to completion; results in spec order.

        Alongside the results, :attr:`stats` gains the batch's execution
        shape: ``waves`` (fused-loop rounds), ``wave_occupancy`` (active
        fast lanes entering each wave) and ``wave_retired`` (lanes that
        finished during it) — the retirement curve that shows how much of
        the batch's width survives to the tail.  Deterministic, collected
        traced or not; under observability the run is additionally
        wrapped in a ``batch.run`` span with one ``batch.wave`` event per
        round.
        """
        tracer = _obs.tracer() if _obs._ENABLED else None
        with (
            tracer.span(
                "batch.run",
                lanes=self.stats["lanes"],
                fast=self.stats["fast"],
                fallback=self.stats["fallback"],
            )
            if tracer is not None
            else nullcontext()
        ):
            results = self._results
            fast: List[_FastLane] = []
            for lane in self.lanes:
                if isinstance(lane, _FallbackLane):
                    result = lane.run()
                    results[lane.index] = result
                    self.stats["steps"] += result.total_steps
                else:
                    fast.append(lane)
            slice_ticks = self.slice_ticks
            occupancy: List[int] = self.stats["wave_occupancy"]
            retired: List[int] = self.stats["wave_retired"]
            active = fast
            while active:
                occupancy.append(len(active))
                still: List[_FastLane] = []
                for lane in active:
                    _advance(lane, slice_ticks)
                    if lane.reason is None:
                        still.append(lane)
                    else:
                        results[lane.index] = lane.result()
                        self.stats["steps"] += lane.time
                retired.append(len(active) - len(still))
                if tracer is not None:
                    tracer.event(
                        "batch.wave",
                        tick=len(occupancy) - 1,
                        active=len(active),
                        retired=len(active) - len(still),
                    )
                active = still
            self.stats["waves"] = len(occupancy)
        return list(results)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# The fused step loop
# ----------------------------------------------------------------------


def _advance(lane: _FastLane, ticks: int) -> None:
    """Advance one fast lane by up to ``ticks`` steps.

    This is the hot loop; every branch mirrors one line of
    ``System.step`` / ``System._run_loop`` and the shipped policies, with
    per-step dispatch replaced by integer mode codes, ``rng.choice``
    replaced by the inlined ``getrandbits`` rejection draw it performs
    internally, and per-entry message aging replaced by enqueue-time step
    notes.  Deviating from the interpreted engine here is a bug; the
    oracle suite (``tests/kernel/test_batch.py``) enforces bit-identity.
    """
    t = lane.time
    budget = lane.budget
    remaining_extra = lane.remaining_extra
    check_stop = lane.check_stop
    extra_steps = lane.extra_steps
    record_trace = lane.record_trace
    engine = lane.engine
    sched_mode = lane.sched_mode
    deliv_mode = lane.deliv_mode
    coalescing = lane.coalescing
    n = lane.n
    alive = lane.alive
    n_alive = lane.n_alive
    k_alive = lane.k_alive
    alive_set = lane.alive_set
    next_epoch_at = lane.next_epoch_at
    sched_grb = lane.sched_rng.getrandbits
    max_gap = lane.max_gap
    sd = lane.sd
    last = lane.last_sched
    lambda_prob = lane.lambda_prob
    max_age = lane.max_age
    pending = lane.pending
    note_counts = lane.note_counts
    dest_steps = lane.dest_steps
    dest_rngs = lane.dest_rngs
    seqs = lane.seqs
    seg_times = lane.seg_times
    seg_values = lane.seg_values
    seg_idx = lane.seg_idx
    parked = lane.parked
    decisions = lane.decisions
    decision_times = lane.decision_times
    has_decided = lane.has_decided
    correct_set = lane.correct_set
    undecided = lane.undecided_correct
    steps = lane.steps
    queried = lane.queried
    sent = 0
    delivered_n = 0
    done = 0
    reason: Optional[str] = None

    if engine == _ENGINE_MR:
        mr_x = lane.mr_x
        mr_round = lane.mr_round
        mr_phase = lane.mr_phase
        mr_opened = lane.mr_opened
        mr_decided = lane.mr_decided
        mr_leads = lane.mr_leads
        mr_reps = lane.mr_reps
        mr_props = lane.mr_props
        mr_segments = lane.mr_segments
        from repro.consensus.mostefaoui_raynal import LEAD, PROP, REP

    while done < ticks:
        # ---- _run_loop: budget / stop / extra-steps protocol ----------
        if budget <= 0:
            reason = "max_steps"
            break
        if remaining_extra < 0 and check_stop and undecided == 0:
            if extra_steps <= 0:
                reason = "stop_condition"
                break
            remaining_extra = extra_steps
        if remaining_extra >= 0:
            if remaining_extra <= 0:
                reason = "stop_condition"
                break
            remaining_extra -= 1

        # ---- System.step: crash-epoch cursor --------------------------
        if next_epoch_at is not None and t >= next_epoch_at:
            lane.advance_epochs(t)
            alive = lane.alive
            alive_set = lane.alive_set
            n_alive = lane.n_alive
            k_alive = lane.k_alive
            next_epoch_at = lane.next_epoch_at
        if not n_alive:
            reason = "all_crashed"
            break

        # ---- scheduler -------------------------------------------------
        if sched_mode == _SCHED_RF:
            sd0 = sd[0] + 1
            sd[0] = sd0
            if sd0 >= sd[1]:
                threshold = sd0 - max_gap
                overdue = [p for p in alive if last[p] < threshold]
                if overdue:
                    pid = overdue[0]
                    last[pid] = sd0
                    sd[1] = sd0 + 1
                else:
                    low = last[alive[0]]
                    for p in alive:
                        lp = last[p]
                        if lp < low:
                            low = lp
                    sd[1] = low + max_gap + 1
                    r = sched_grb(k_alive)
                    while r >= n_alive:
                        r = sched_grb(k_alive)
                    pid = alive[r]
                    last[pid] = sd0
            else:
                r = sched_grb(k_alive)
                while r >= n_alive:
                    r = sched_grb(k_alive)
                pid = alive[r]
                last[pid] = sd0
        elif sched_mode == _SCHED_RR:
            n_rr = alive[-1] + 1
            cursor = lane.rr_cursor
            pid = alive[0]
            for _ in range(n_rr):
                candidate = cursor % n_rr
                cursor += 1
                if candidate in alive_set:
                    pid = candidate
                    break
            lane.rr_cursor = cursor
        else:
            pid = lane.sched_obj.next_process(alive, t, lane.sched_rng)

        # ---- delivery (with O(1) enqueue-note aging) -------------------
        nc = note_counts[pid] + 1
        note_counts[pid] = nc
        entries = pending[pid]
        if coalescing and entries:
            # CoalescingDelivery: drop, per sender, every DAG payload
            # older than the sender's newest one (probe guarantees all
            # payloads in this lane are DAGs).
            newest: Dict[int, int] = {}
            for e in entries:
                s = e[0]
                q = e[3]
                if q > newest.get(s, -1):
                    newest[s] = q
            i = 0
            while i < len(entries):
                e = entries[i]
                if e[3] < newest.get(e[0], -1):
                    del entries[i]
                else:
                    i += 1
        message = None
        if entries:
            if deliv_mode == _DELIV_FAIR:
                oldest = entries[0]
                if nc - oldest[2] >= max_age:
                    message = oldest
                    del entries[0]
                else:
                    rng = dest_rngs[pid]
                    if rng.random() >= lambda_prob:
                        ln = len(entries)
                        grb = rng.getrandbits
                        kk = ln.bit_length()
                        r = grb(kk)
                        while r >= ln:
                            r = grb(kk)
                        message = entries[r]
                        del entries[r]
            elif deliv_mode == _DELIV_OLDEST:
                message = entries[0]
                del entries[0]
            else:  # per-sender FIFO
                oldest = entries[0]
                if nc - oldest[2] >= max_age:
                    message = oldest
                    del entries[0]
                else:
                    rng = dest_rngs[pid]
                    if rng.random() >= lambda_prob:
                        senders = sorted({e[0] for e in entries})
                        ln = len(senders)
                        grb = rng.getrandbits
                        kk = ln.bit_length()
                        r = grb(kk)
                        while r >= ln:
                            r = grb(kk)
                        sender = senders[r]
                        for i, e in enumerate(entries):
                            if e[0] == sender:
                                message = e
                                del entries[i]
                                break
        dest_steps[pid] += 1
        if message is not None:
            delivered_n += 1

        # ---- detector segment cursor (monotone per pid) ---------------
        si = seg_idx[pid]
        times = seg_times[pid]
        nseg = len(times)
        if si + 1 < nseg and t >= times[si + 1]:
            si += 1
            while si + 1 < nseg and t >= times[si + 1]:
                si += 1
            seg_idx[pid] = si

        # ---- engines ---------------------------------------------------
        my_sends = None  # broadcast payloads (MR), or (dest, payload) list
        if engine == _ENGINE_MR:
            if message is None and parked[pid] == si:
                # Lambda-quiescence: the phase machine parked at a failed
                # wait with this very detector segment; re-running it is a
                # provable no-op (hooks are pure in (state, d)).
                d_raw = mr_segments[pid][si][2]
                if record_trace:
                    queried[pid].append((t, d_raw))
                    steps.append(
                        StepRecord(
                            index=len(steps),
                            time=t,
                            pid=pid,
                            message=None,
                            detector_value=d_raw,
                            sends=(),
                        )
                    )
                t += 1
                budget -= 1
                done += 1
                continue
            leader, quorum, d_raw = mr_segments[pid][si]
            if message is not None:
                tag, rnd_in, value = message[1]
                if tag == REP:
                    mr_reps[pid].setdefault(rnd_in, {})[message[0]] = value
                elif tag == PROP:
                    mr_props[pid].setdefault(rnd_in, {})[message[0]] = value
                else:
                    mr_leads[pid].setdefault(rnd_in, {})[message[0]] = value
            rnd = mr_round[pid]
            phase = mr_phase[pid]
            x = mr_x[pid]
            opened = mr_opened[pid]
            while True:
                if not opened:
                    payload = (LEAD, rnd, x)
                    if my_sends is None:
                        my_sends = [payload]
                    else:
                        my_sends.append(payload)
                    opened = True
                    continue
                if phase == _MR_LEAD:
                    lr = mr_leads[pid].get(rnd)
                    if lr is not None and leader in lr:
                        x = lr[leader]
                        phase = _MR_REP
                        payload = (REP, rnd, x)
                        if my_sends is None:
                            my_sends = [payload]
                        else:
                            my_sends.append(payload)
                        continue
                    break
                if phase == _MR_REP:
                    if quorum is None:
                        break
                    rr = mr_reps[pid].get(rnd)
                    if rr is None:
                        break
                    ready = True
                    for q in quorum:
                        if q not in rr:
                            ready = False
                            break
                    if not ready:
                        break
                    proposal = rr[quorum[0]]
                    for q in quorum:
                        if rr[q] != proposal:
                            proposal = UNKNOWN
                            break
                    phase = _MR_PROP
                    payload = (PROP, rnd, proposal)
                    if my_sends is None:
                        my_sends = [payload]
                    else:
                        my_sends.append(payload)
                    continue
                # PROP wait
                if quorum is None:
                    break
                pr = mr_props[pid].get(rnd)
                if pr is None:
                    break
                ready = True
                for q in quorum:
                    if q not in pr:
                        ready = False
                        break
                if not ready:
                    break
                first = pr[quorum[0]]
                unanimous = True
                non_unknown = None
                for q in quorum:
                    v = pr[q]
                    if v != first:
                        unanimous = False
                    if v != UNKNOWN and non_unknown is None:
                        non_unknown = v
                if non_unknown is not None:
                    x = non_unknown
                if mr_decided[pid] is None and unanimous and first != UNKNOWN:
                    mr_decided[pid] = x
                    decisions[pid] = x
                    decision_times[pid] = t
                    has_decided[pid] = True
                    if pid in correct_set:
                        undecided -= 1
                rnd += 1
                phase = _MR_LEAD
                opened = False
            mr_x[pid] = x
            mr_round[pid] = rnd
            mr_phase[pid] = phase
            mr_opened[pid] = opened
            parked[pid] = si
        elif engine == _ENGINE_GENERIC:
            d_raw = seg_values[pid][si]
            if message is None and lane.lambda_skip and parked[pid] == si:
                if record_trace:
                    queried[pid].append((t, d_raw))
                    steps.append(
                        StepRecord(
                            index=len(steps),
                            time=t,
                            pid=pid,
                            message=None,
                            detector_value=d_raw,
                            sends=(),
                        )
                    )
                t += 1
                budget -= 1
                done += 1
                continue
            delivered = (
                DeliveredMessage(message[0], message[1])
                if message is not None
                else None
            )
            outcome = lane.transition(lane.states[pid], pid, delivered, d_raw)
            lane.states[pid] = outcome.state
            if not has_decided[pid]:
                dec = lane.decision_of(outcome.state)
                if dec is not None:
                    decisions[pid] = dec
                    decision_times[pid] = t
                    has_decided[pid] = True
                    if pid in correct_set:
                        undecided -= 1
            if outcome.sends:
                my_sends = outcome.sends
            if lane.lambda_skip:
                parked[pid] = si
        else:  # _ENGINE_DAG
            d_raw = seg_values[pid][si]
            core = lane.cores[pid]
            if message is not None:
                core.absorb(message[1])
            core.sample(d_raw, t)
            dag = core.dag
            my_sends = [(dest, dag) for dest in range(n)]

        # ---- enqueue sends / trace ------------------------------------
        if record_trace:
            send_msgs: List[Message] = []
            if engine == _ENGINE_MR:
                if my_sends is not None:
                    for payload in my_sends:
                        seq = seqs[pid]
                        for dest in range(n):
                            msg_obj = Message(
                                pid, dest, payload, uid=(pid, seq), sent_at=t
                            )
                            pending[dest].append(
                                (pid, payload, note_counts[dest], seq, msg_obj)
                            )
                            send_msgs.append(msg_obj)
                            seq += 1
                            sent += 1
                        seqs[pid] = seq
            elif my_sends is not None:
                seq = seqs[pid]
                for dest, payload in my_sends:
                    msg_obj = Message(
                        pid, dest, payload, uid=(pid, seq), sent_at=t
                    )
                    pending[dest].append(
                        (pid, payload, note_counts[dest], seq, msg_obj)
                    )
                    send_msgs.append(msg_obj)
                    seq += 1
                    sent += 1
                seqs[pid] = seq
            queried[pid].append((t, d_raw))
            steps.append(
                StepRecord(
                    index=len(steps),
                    time=t,
                    pid=pid,
                    message=message[4] if message is not None else None,
                    detector_value=d_raw,
                    sends=tuple(send_msgs),
                )
            )
        elif my_sends is not None:
            # Metrics mode: delivery only reads entry[0..2]; the seq slot is
            # needed solely by coalescing lanes, so plain lanes enqueue
            # 3-tuples with no per-message arithmetic.
            if engine == _ENGINE_MR:
                for payload in my_sends:
                    for dest in range(n):
                        pending[dest].append((pid, payload, note_counts[dest]))
                    sent += n
            elif coalescing:
                seq = seqs[pid]
                for dest, payload in my_sends:
                    pending[dest].append(
                        (pid, payload, note_counts[dest], seq)
                    )
                    seq += 1
                    sent += 1
                seqs[pid] = seq
            else:
                for dest, payload in my_sends:
                    pending[dest].append((pid, payload, note_counts[dest]))
                    sent += 1
        t += 1
        budget -= 1
        done += 1

    lane.time = t
    lane.budget = budget
    lane.remaining_extra = remaining_extra
    lane.sent += sent
    lane.delivered += delivered_n
    lane.undecided_correct = undecided
    lane.reason = reason
