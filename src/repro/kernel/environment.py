"""Environments (Section 2.2): sets of failure patterns.

An environment describes the number and timing of failures that can occur.
The paper's headline results hold in *any* environment; its Section 7
separation result is about the environments ``E_t = {F : |faulty(F)| <= t}``.

An :class:`Environment` here is a named predicate over
:class:`~repro.kernel.failures.FailurePattern`, together with helpers to
sample patterns from the environment (for sweeps) and to enumerate all
crash-sets for small systems (for exhaustive tests).
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.kernel.failures import FailurePattern


class Environment:
    """A set of failure patterns over ``n`` processes."""

    def __init__(
        self,
        n: int,
        contains: Callable[[FailurePattern], bool],
        name: str,
        max_faulty: Optional[int] = None,
    ):
        self._n = n
        self._contains = contains
        self._name = name
        # An upper bound on |faulty(F)| over the environment, when known.
        # Used by samplers and by algorithms (like the from-scratch Sigma
        # implementation) that are parameterized by t.
        self._max_faulty = max_faulty

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def max_failures(cls, n: int, t: int) -> "Environment":
        """``E_t``: all patterns with at most ``t`` faulty processes."""
        if not 0 <= t <= n:
            raise ValueError(f"t must be in [0, n], got t={t} with n={n}")
        return cls(
            n,
            lambda pattern: len(pattern.faulty) <= t,
            name=f"E_{t}(n={n})",
            max_faulty=t,
        )

    @classmethod
    def any_failures(cls, n: int) -> "Environment":
        """The unrestricted environment: any number of failures.

        Consensus requires at least one correct process to decide anything,
        so like the paper we still rule out the pattern where everybody
        crashes (``correct(F)`` empty makes every property vacuous anyway).
        """
        return cls(
            n,
            lambda pattern: len(pattern.correct) >= 1,
            name=f"E_any(n={n})",
            max_faulty=n - 1,
        )

    @classmethod
    def majority_correct(cls, n: int) -> "Environment":
        """Patterns in which a majority of processes are correct."""
        t = (n - 1) // 2
        env = cls.max_failures(n, t)
        env._name = f"E_majority(n={n}, t={t})"
        return env

    # ------------------------------------------------------------------
    # Predicate interface
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def name(self) -> str:
        return self._name

    @property
    def max_faulty(self) -> Optional[int]:
        return self._max_faulty

    def __contains__(self, pattern: FailurePattern) -> bool:
        if pattern.n != self._n:
            return False
        return self._contains(pattern)

    # ------------------------------------------------------------------
    # Sampling and enumeration
    # ------------------------------------------------------------------

    def sample_pattern(
        self,
        rng: random.Random,
        max_crash_time: int = 100,
        faulty_count: Optional[int] = None,
    ) -> FailurePattern:
        """Sample a pattern from this environment.

        Crash times are drawn uniformly from ``[0, max_crash_time]``.  When
        ``faulty_count`` is given it overrides the random draw (and must be
        admissible for this environment).
        """
        bound = self._max_faulty if self._max_faulty is not None else self._n - 1
        if faulty_count is None:
            faulty_count = rng.randint(0, bound)
        crashed = rng.sample(range(self._n), faulty_count)
        pattern = FailurePattern(
            self._n,
            {p: rng.randint(0, max_crash_time) for p in crashed},
        )
        if pattern not in self:
            raise ValueError(
                f"sampled pattern {pattern!r} falls outside {self._name}; "
                f"check faulty_count={faulty_count}"
            )
        return pattern

    def enumerate_crash_sets(self) -> Iterator[FrozenSetOfInts]:
        """Yield every crash *set* admissible in this environment.

        Crash times are a separate (infinite) dimension; callers combine the
        sets yielded here with the crash times they care about.  Intended for
        small ``n`` (exhaustive tests).
        """
        for size in range(self._n + 1):
            for combo in itertools.combinations(range(self._n), size):
                pattern = FailurePattern.initial_crashes(self._n, combo)
                if pattern in self:
                    yield frozenset(combo)

    def enumerate_patterns(self, crash_times: Sequence[int]) -> Iterator[FailurePattern]:
        """Yield patterns whose crash sets are admissible, with every
        assignment of the given candidate crash times to crashed processes.

        Exponential; intended only for small ``n`` and few candidate times.
        """
        for crash_set in self.enumerate_crash_sets():
            members = sorted(crash_set)
            if not members:
                yield FailurePattern.no_failures(self._n)
                continue
            for times in itertools.product(crash_times, repeat=len(members)):
                yield FailurePattern(self._n, dict(zip(members, times)))

    def __repr__(self) -> str:
        return f"Environment({self._name})"


FrozenSetOfInts = frozenset


def spread_crash_times(
    n: int, crashed: Iterable[int], rng: random.Random, horizon: int
) -> FailurePattern:
    """Convenience: build a pattern crashing ``crashed`` at random times."""
    return FailurePattern(n, {p: rng.randint(0, horizon) for p in crashed})
