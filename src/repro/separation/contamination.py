"""The contamination scenario of Section 6.3, made executable.

Setup (n = 3): processes 0 and 1 are correct and propose ``v``; process 2 is
faulty and proposes ``w``.  The (Omega, Sigma^nu) history family:

* Sigma^nu quorums: ``0 -> {0}``, ``2 -> {2}`` (disjoint from everyone —
  legal, 2 is faulty), ``1 -> {0,1,2}`` until 2 crashes, then ``{0,1}``;
* Omega: process 2 always trusts itself; 0 and 1 trust 0, except during
  their *second* round, where they trust 2 — legal pre-stabilization noise.

Against the naive quorum algorithm (QuorumMR fed Sigma^nu) this plays out
exactly as the paper describes: 0 decides ``v`` alone in round 1 through its
quorum ``{0}``; 2 "decides" ``w`` through ``{2}``; in round 2 the leader
module points 0 and 1 at process 2, both adopt ``w``, 2 crashes, and 1 goes
on to decide ``w`` — a nonuniform-agreement violation between two *correct*
processes.

Against A_nuc, under the same history family, the LEAD message from 2
carries a quorum history showing ``{2}``, which misses ``{0} ∈ H[0]``; both
correct processes *distrust* 2, refuse the estimate, and decide ``v``.

The driver uses adaptive histories and a deferred crash (the formal pattern
and histories are frozen afterwards and re-validated by the independent
checkers), so the scenario is a genuine admissible run, not a hand-wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.consensus.interface import ConsensusOutcome
from repro.consensus.properties import PropertyReport, check_nonuniform_consensus
from repro.consensus.quorum_mr import NaiveSigmaNuConsensus
from repro.core.nuc import AnucProcess
from repro.detectors.base import AdaptiveHistory
from repro.detectors.checkers import (
    CheckResult,
    check_omega,
    check_sigma_nu,
    check_sigma_nu_plus,
    project_history,
)
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.failures import DeferredCrashPattern, FailurePattern
from repro.kernel.system import System

V, W = "v", "w"
PROPOSALS = {0: V, 1: V, 2: W}


@dataclass
class ContaminationReport:
    """What happened when an algorithm faced the contamination scenario."""

    algorithm: str
    decisions: Dict[int, Any]
    pattern: FailurePattern
    agreement: PropertyReport
    contaminated: bool
    crash_time: Optional[int]
    omega_check: CheckResult
    sigma_check: CheckResult
    distrust_events: List[Tuple[int, int]] = field(default_factory=list)
    steps: int = 0

    def __repr__(self) -> str:
        verdict = "CONTAMINATED" if self.contaminated else "safe"
        return (
            f"ContaminationReport({self.algorithm}: {verdict}, "
            f"decisions={self.decisions})"
        )


class _ScenarioDriver:
    """Adaptive (Omega, Sigma^nu) strategy + crash trigger for the scenario."""

    def __init__(self, algorithm: str, processes: Dict[int, Any], pattern: DeferredCrashPattern):
        self.algorithm = algorithm
        self.processes = processes
        self.pattern = pattern

    # -- probes --------------------------------------------------------

    def round_of(self, p: int) -> int:
        if self.algorithm == "naive":
            state = self.processes[p].state
            return state.round if state is not None else 1
        return max(1, self.processes[p].trace.rounds_started)

    def passed_round2_lead(self, p: int) -> bool:
        if self.algorithm == "naive":
            state = self.processes[p].state
            if state is None:
                return False
            return state.round > 2 or (state.round == 2 and state.phase != "LEAD")
        # A_nuc never adopts from 2; "engaged" means it distrusted 2.
        return any(q == 2 for _, q in self.processes[p].trace.distrust_events)

    def should_crash_two(self) -> bool:
        return self.passed_round2_lead(0) and self.passed_round2_lead(1)

    # -- the history ----------------------------------------------------

    def detector_value(self, p: int, t: int) -> Tuple[int, FrozenSet[int]]:
        leader = self._leader(p)
        quorum = self._quorum(p, t)
        return (leader, quorum)

    def _leader(self, p: int) -> int:
        if p == 2:
            return 2
        return 2 if self.round_of(p) == 2 else 0

    def _quorum(self, p: int, t: int) -> FrozenSet[int]:
        if p == 0:
            return frozenset([0])
        if p == 2:
            return frozenset([2])
        if self.pattern.is_crashed(2, t):
            return frozenset([0, 1])
        return frozenset([0, 1, 2])


def run_contamination_scenario(
    algorithm: str = "naive",
    seed: int = 0,
    max_steps: int = 30000,
) -> ContaminationReport:
    """Run the Section 6.3 scenario against ``"naive"`` or ``"anuc"``.

    Returns a report whose ``contaminated`` flag says whether nonuniform
    agreement was violated (expected ``True`` for the naive algorithm and
    ``False`` for A_nuc), along with post-hoc validations that the adaptive
    history really was a legal (Omega, Sigma^nu) history for the exhibited
    failure pattern.
    """
    if algorithm not in ("naive", "anuc"):
        raise ValueError(f"unknown algorithm {algorithm!r}")

    pattern = DeferredCrashPattern(3, doomed=[2])
    if algorithm == "naive":
        processes = {
            p: AutomatonProcess(NaiveSigmaNuConsensus(), PROPOSALS[p])
            for p in range(3)
        }
    else:
        processes = {p: AnucProcess(PROPOSALS[p]) for p in range(3)}

    driver = _ScenarioDriver(algorithm, processes, pattern)
    history = AdaptiveHistory(3, driver.detector_value)
    system = System(
        processes=processes,
        pattern=pattern,
        history=history,
        seed=seed,
    )

    crash_time: Optional[int] = None
    cooldown: Optional[int] = None
    for _ in range(max_steps):
        if crash_time is None and driver.should_crash_two():
            crash_time = system.time
            pattern.trigger([2], crash_time)
        decided = (
            system.contexts[0].decision is not None
            and system.contexts[1].decision is not None
        )
        # After both correct processes decide, keep running until their
        # rounds pass 2, so the adaptive Omega history visibly stabilizes
        # on leader 0 before the horizon (the finite run must be a prefix
        # of an admissible run with a *valid* Omega history).
        if decided and driver.round_of(0) >= 3 and driver.round_of(1) >= 3:
            if cooldown is None:
                cooldown = 60
            elif cooldown == 0:
                break
            else:
                cooldown -= 1
        if system.step() is None:
            break

    result = system.result(stop_reason="scenario")
    horizon = max(0, system.time - 1)
    frozen = pattern.freeze(horizon)
    outcome = ConsensusOutcome(
        n=3,
        pattern=frozen,
        proposals=dict(PROPOSALS),
        decisions=dict(result.decisions),
        decision_times=dict(result.decision_times),
    )
    agreement = check_nonuniform_consensus(outcome)

    recorded = history.recorded(horizon)
    omega_check = check_omega(project_history(recorded, 0), frozen, horizon)
    sigma_checker = check_sigma_nu if algorithm == "naive" else check_sigma_nu_plus
    sigma_check = sigma_checker(project_history(recorded, 1), frozen, horizon)

    distrust: List[Tuple[int, int]] = []
    if algorithm == "anuc":
        for p in range(3):
            distrust.extend(processes[p].trace.distrust_events)

    return ContaminationReport(
        algorithm=algorithm,
        decisions=dict(result.decisions),
        pattern=frozen,
        agreement=agreement,
        contaminated=not agreement.ok,
        crash_time=crash_time,
        omega_check=omega_check,
        sigma_check=sigma_check,
        distrust_events=distrust,
        steps=len(result.steps),
    )
