"""Implementing Sigma from scratch when t < n/2 (Theorem 7.1, IF direction).

The algorithm uses no failure detector at all.  It proceeds in asynchronous
rounds: initially output Pi; in round ``k`` broadcast ``(k, p)``, wait for
``n - t`` round-``k`` messages, and output the set of senders as the new
quorum.

With ``t < n/2`` every quorum is a majority, so any two intersect; since at
least ``n - t`` processes are correct the waits terminate, and eventually
only correct processes send, giving completeness.  With ``t >= n/2`` the
waits still terminate but quorums of ``n - t <= n/2`` processes need not
intersect — the partition adversary of :mod:`repro.separation.adversary`
exhibits exactly that failure.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.kernel.automaton import Process, ProcessContext


class FromScratchSigma(Process):
    """One process of the detector-free Sigma implementation for E_t."""

    def __init__(self, n: int, t: int):
        if not 0 <= t < n:
            raise ValueError(f"need 0 <= t < n, got t={t}, n={n}")
        self.n = n
        self.t = t

    def initial_output(self) -> Any:
        return frozenset(range(self.n))

    def program(self, ctx: ProcessContext) -> Generator:
        threshold = self.n - self.t
        k = 0
        while True:
            k += 1
            ctx.send_to_all(("RND", k, ctx.pid))
            while True:
                # Count from the full receive log: round-k messages that
                # arrived early (while we lagged in round k-1) still count.
                senders = {
                    m.sender
                    for m in ctx.log
                    if m.payload[0] == "RND" and m.payload[1] == k
                }
                if len(senders) >= threshold:
                    break
                yield from ctx.take_step()
            ctx.output(frozenset(sorted(senders)[:threshold]))
