"""The two-run partition adversary of Theorem 7.1 (ONLY IF direction).

For ``t >= n/2`` no algorithm transforms (Omega, Sigma^nu) to Sigma.  The
proof partitions Pi into A and B with ``|A|, |B| <= t`` and plays two runs:

* **R** — all of B crashes at time 0, A is correct.  The detector outputs
  the constant ``(min A, A)`` at A and ``(min B, B)`` at B (valid for this
  pattern).  Sigma-completeness forces some ``a in A`` to eventually output
  a quorum ``A' ⊆ A``, say at time ``tau``.

* **R'** — same detector outputs (also valid here), but now B is correct and
  its messages to A (and vice versa) are delayed past ``tau``; A crashes
  just after ``tau``.  Up to ``tau`` the processes of A cannot distinguish
  R' from R, so ``a`` again outputs ``A' ⊆ A``; Sigma-completeness at the
  correct B then forces some ``b`` to output ``B' ⊆ B``.  ``A' ∩ B' = ∅``
  violates Sigma's intersection property.

:func:`run_partition_adversary` executes this attack against *any* candidate
transformation (a process factory emitting quorums via ``ctx.output``).  The
simulator's determinism discipline — per-destination random streams, delivery
choices that depend only on locally observable state — makes the
indistinguishability argument hold literally: the A-side of R' replays the
A-side of R step for step, and the verdict double-checks that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, List, Optional, Tuple

from repro.detectors.base import FunctionalHistory
from repro.kernel.automaton import Process
from repro.kernel.failures import DeferredCrashPattern, FailurePattern
from repro.kernel.messages import BlockingPolicy, PerSenderFifoDelivery
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.system import System

TransformationFactory = Callable[[int], Process]


@dataclass
class AdversaryVerdict:
    """Outcome of the partition attack."""

    n: int
    t: int
    partition_a: FrozenSet[int]
    partition_b: FrozenSet[int]
    violated: bool
    reason: str
    tau: Optional[int] = None
    a_process: Optional[int] = None
    b_process: Optional[int] = None
    a_quorum: Optional[FrozenSet[int]] = None
    b_quorum: Optional[FrozenSet[int]] = None
    replay_consistent: bool = True
    notes: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        status = "VIOLATED" if self.violated else "survived"
        return (
            f"AdversaryVerdict(n={self.n}, t={self.t}, {status}: {self.reason})"
        )


def _partition(n: int) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    half = n // 2
    return frozenset(range(half)), frozenset(range(half, n))


def _static_history(part_a: FrozenSet[int], part_b: FrozenSet[int]):
    """The constant (Omega, Sigma^nu) history used in both runs."""
    leader_a, leader_b = min(part_a), min(part_b)

    def value(p: int, t: int):
        if p in part_a:
            return (leader_a, part_a)
        return (leader_b, part_b)

    return FunctionalHistory(value)


def run_partition_adversary(
    factory: TransformationFactory,
    n: int,
    t: int,
    seed: int = 0,
    max_steps_r: int = 4000,
    max_steps_r2: int = 12000,
) -> AdversaryVerdict:
    """Attack a candidate (Omega, Sigma^nu) -> Sigma transformation in E_t.

    ``factory(pid)`` builds the transformation process for ``pid``; its
    emitted ``ctx.output`` values are the Sigma quorums under attack.  For
    ``t >= n/2`` a verdict with ``violated=True`` demonstrates the
    Theorem 7.1 separation; for ``t < n/2`` a sound transformation survives
    (it never outputs a quorum inside a minority partition in run R).
    """
    part_a, part_b = _partition(n)
    if len(part_a) > t or len(part_b) > t:
        return AdversaryVerdict(
            n=n,
            t=t,
            partition_a=part_a,
            partition_b=part_b,
            violated=False,
            reason=(
                f"no partition with both sides <= t exists (t={t} < n/2); "
                "the adversary does not apply"
            ),
        )
    history = _static_history(part_a, part_b)

    # ------------------------------------------------------------------
    # Run R: B crashes at time 0.
    # ------------------------------------------------------------------
    pattern_r = FailurePattern(n, {p: 0 for p in part_b})
    system_r = System(
        processes={p: factory(p) for p in range(n)},
        pattern=pattern_r,
        history=history,
        scheduler=RoundRobinScheduler(),
        delivery=PerSenderFifoDelivery(),
        seed=seed,
    )

    def a_contained_output(system: System) -> Optional[Tuple[int, int, FrozenSet[int]]]:
        for p in sorted(part_a):
            for when, quorum in system.contexts[p].outputs:
                if frozenset(quorum) <= part_a:
                    return p, when, frozenset(quorum)
        return None

    system_r.run(
        max_steps=max_steps_r,
        stop_when=lambda s: a_contained_output(s) is not None,
    )
    hit = a_contained_output(system_r)
    if hit is None:
        return AdversaryVerdict(
            n=n,
            t=t,
            partition_a=part_a,
            partition_b=part_b,
            violated=False,
            reason=(
                "in run R (B down from the start) no process of A ever "
                "output a quorum contained in A within the budget — the "
                "transformation never exposed a partition-local quorum"
            ),
        )
    a_pid, tau, a_quorum = hit
    a_outputs_r = list(system_r.contexts[a_pid].outputs)

    # ------------------------------------------------------------------
    # Run R': B correct, cross-partition traffic blocked until A replays
    # its R behaviour, then A crashes and the links open.
    # ------------------------------------------------------------------
    pattern_r2 = DeferredCrashPattern(n, doomed=part_a)
    blocking = BlockingPolicy(
        inner=PerSenderFifoDelivery(),
        blocked=lambda m: (m.sender in part_a) != (m.dest in part_a),
    )
    system_r2 = System(
        processes={p: factory(p) for p in range(n)},
        pattern=pattern_r2,
        history=history,
        scheduler=RoundRobinScheduler(),
        delivery=blocking,
        seed=seed,
    )

    def a_replayed(system: System) -> bool:
        outputs = system.contexts[a_pid].outputs
        return any(frozenset(q) == a_quorum for _, q in outputs)

    system_r2.run(max_steps=max_steps_r2, stop_when=a_replayed)
    notes: List[str] = []
    replay_consistent = a_replayed(system_r2)
    if not replay_consistent:
        notes.append(
            "A-side replay diverged: a never reproduced its R-quorum in R'"
        )
        return AdversaryVerdict(
            n=n,
            t=t,
            partition_a=part_a,
            partition_b=part_b,
            violated=False,
            reason="replay divergence (simulator determinism assumption broken)",
            tau=tau,
            a_process=a_pid,
            a_quorum=a_quorum,
            replay_consistent=False,
            notes=notes,
        )
    a_values_r = [frozenset(q) for _, q in a_outputs_r]
    a_values_r2 = [frozenset(q) for _, q in system_r2.contexts[a_pid].outputs]
    if a_values_r2 != a_values_r[: len(a_values_r2)]:
        notes.append("A-side output prefixes differ between R and R'")

    # Crash A now and open the partition: B must reach completeness alone.
    t_star = system_r2.time
    pattern_r2.trigger_all(t_star)
    blocking.release(t_star)

    def b_contained_output(system: System) -> Optional[Tuple[int, int, FrozenSet[int]]]:
        for p in sorted(part_b):
            for when, quorum in system.contexts[p].outputs:
                if frozenset(quorum) <= part_b:
                    return p, when, frozenset(quorum)
        return None

    system_r2.run(
        max_steps=max_steps_r2,
        stop_when=lambda s: b_contained_output(s) is not None,
    )
    hit_b = b_contained_output(system_r2)
    if hit_b is None:
        return AdversaryVerdict(
            n=n,
            t=t,
            partition_a=part_a,
            partition_b=part_b,
            violated=False,
            reason=(
                "after A crashed, no process of B output a quorum contained "
                "in B within the budget — the transformation gave up "
                "Sigma-completeness instead of intersection"
            ),
            tau=tau,
            a_process=a_pid,
            a_quorum=a_quorum,
            replay_consistent=replay_consistent,
            notes=notes,
        )
    b_pid, _, b_quorum = hit_b
    disjoint = not (a_quorum & b_quorum)
    return AdversaryVerdict(
        n=n,
        t=t,
        partition_a=part_a,
        partition_b=part_b,
        violated=disjoint,
        reason=(
            f"run R' contains quorums {sorted(a_quorum)} (at {a_pid}) and "
            f"{sorted(b_quorum)} (at {b_pid}); "
            + ("disjoint — Sigma intersection violated" if disjoint else "they intersect")
        ),
        tau=tau,
        a_process=a_pid,
        b_process=b_pid,
        a_quorum=a_quorum,
        b_quorum=b_quorum,
        replay_consistent=replay_consistent,
        notes=notes,
    )
