"""Section 7: comparing (Omega, Sigma^nu) with (Omega, Sigma), plus the
Section 6.3 contamination scenario that separates the naive quorum algorithm
from A_nuc.
"""

from repro.separation.adversary import AdversaryVerdict, run_partition_adversary
from repro.separation.contamination import (
    ContaminationReport,
    run_contamination_scenario,
)
from repro.separation.from_scratch_sigma import FromScratchSigma

__all__ = [
    "AdversaryVerdict",
    "ContaminationReport",
    "FromScratchSigma",
    "run_contamination_scenario",
    "run_partition_adversary",
]
