"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``consensus``      run A_nuc (or the full (Ω, Σν) stack) on a configurable
                   system and print decisions, verdicts and optionally a
                   step transcript
``experiment``     run one of the EXP-1..EXP-9 sweeps and print its table
``sweep``          run a declarative TOML/CSV sweep spec through the
                   content-addressed result store (only moved rows execute)
``store``          inspect/maintain the result store: ``ls``, ``gc``,
                   ``diff SPEC`` (what a sweep would re-run right now)
``contamination``  play the Section 6.3 scenario against naive / A_nuc
``adversary``      run the Theorem 7.1 partition adversary for (n, t)
``extract``        run the necessity transformation T_{D -> Σν} and report
                   the emitted quorums and checker verdicts
``reproduce``      run all nine experiments and print one combined report
``trace``          inspect a JSONL trace written by ``--trace-out``
                   (timeline, per-span aggregates, counter totals);
                   ``trace diff A B`` attributes tick/wall deltas per
                   span path, ``trace flame FILE`` draws an ASCII
                   flamegraph
``obs``            ``obs report`` writes a self-contained HTML run
                   observatory (traces + perf trajectory sparklines)
``lint``           run the determinism & model-fidelity static analysis
                   (rule catalog in docs/linting.md)
``chaos``          run the fault-injection matrix, fuzz single configs, or
                   replay a shrunk ``repro-counterexample/1`` artifact
``serve``          run the consensus service against wall clocks with a
                   newline-JSON TCP front (production mode)
``load``           play a seeded load spec against an in-process service
                   on the logical clock; print latency/throughput report

Every command is a thin veneer over the public library API; the CLI exists
so the reproduction can be poked without writing Python.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Dict, List, Optional, Sequence

from contextlib import contextmanager

from repro.analysis.trace import decision_summary, transcript
from repro.kernel.failures import FailurePattern


@contextmanager
def _maybe_traced(args, label: str):
    """Trace the command body into ``args.trace_out`` when requested."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        yield
        return
    from repro import obs
    from repro.obs.export import environment_stamp, write_trace

    tracer = obs.enable(label=label)
    try:
        yield
    finally:
        obs.disable()
        count = write_trace(
            trace_out,
            tracer,
            # Export-time read after obs.disable(); not a hot-path write.
            registry=obs.metrics(),  # repro: noqa RPR301 -- trace export runs once, after tracing ends
            meta={"command": label, "environment": environment_stamp()},
        )
        print(f"(trace: {count} records -> {trace_out})")


def _parse_crashes(items: Sequence[str]) -> Dict[int, int]:
    crashes: Dict[int, int] = {}
    for item in items:
        try:
            pid_text, time_text = item.split(":", 1)
            crashes[int(pid_text)] = int(time_text)
        except ValueError as exc:
            raise SystemExit(
                f"bad --crash {item!r}: expected '<pid>:<time>'"
            ) from exc
    return crashes


def _pattern_from_args(args) -> FailurePattern:
    return FailurePattern(args.n, _parse_crashes(args.crash))


def cmd_consensus(args) -> int:
    from repro.consensus import check_nonuniform_consensus, consensus_outcome
    from repro.harness.runner import run_nuc, run_stack

    pattern = _pattern_from_args(args)
    rng = random.Random(args.seed)
    proposals = {p: rng.choice(args.values) for p in range(args.n)}
    if args.algorithm == "stack":
        outcome = run_stack(pattern, proposals, seed=args.seed)
    else:
        outcome = run_nuc(pattern, proposals, seed=args.seed)
    print(f"pattern   : {pattern}")
    print(f"proposals : {proposals}")
    print(decision_summary(outcome.result))
    print(f"verdict   : {outcome.nonuniform}")
    if args.algorithm == "stack":
        print(f"emulated Sigma^nu+ : {outcome.boosted_check}")
    if args.transcript:
        print("\n--- transcript (first steps) ---")
        print(transcript(outcome.result, limit=args.transcript))
    return 0 if outcome.nonuniform.ok else 1


def cmd_experiment(args) -> int:
    from repro.harness import experiments

    runners = {
        "exp1": experiments.exp1_nuc_sufficiency,
        "exp2": experiments.exp2_boosting,
        "exp3": experiments.exp3_extraction,
        "exp4": experiments.exp4_separation,
        "exp5": experiments.exp5_contamination,
        "exp6": experiments.exp6_merging,
        "exp7": experiments.exp7_scaling,
        "exp8": experiments.exp8_exhaustive,
        "exp9": experiments.exp9_registers,
    }
    quick_overrides = {
        "exp1": dict(ns=(2, 3), seeds=(0,)),
        "exp2": dict(ns=(2, 3), seeds=(0,)),
        "exp3": dict(ns=(3,), seeds=(0,)),
        "exp4": dict(cases=((2, 1), (4, 2), (3, 1)), seeds=(0,)),
        "exp5": dict(seeds=(0,)),
        "exp6": dict(seeds=range(3)),
        "exp7": dict(ns=(2, 3), seeds=(0,)),
        "exp8": dict(n=3, crash_times=(0,), seeds=(0,)),
        "exp9": dict(seeds=(0,)),
    }
    runner = runners[args.name]
    kwargs = dict(quick_overrides[args.name]) if args.quick else {}
    kwargs["jobs"] = args.jobs
    store = None
    if args.store:
        from repro.store import ResultStore

        store = ResultStore(args.store_dir)
        kwargs["store"] = store
    with _maybe_traced(args, f"experiment:{args.name}"):
        table = runner(**kwargs)
    print(table.render())
    if store is not None:
        from repro.store.cli import _stats_line

        print(_stats_line(store))
    return 0


def cmd_contamination(args) -> int:
    from repro.separation.contamination import run_contamination_scenario

    report = run_contamination_scenario(args.algorithm, seed=args.seed)
    print(f"algorithm  : {report.algorithm}")
    print(f"decisions  : {report.decisions}")
    print(f"agreement  : {report.agreement}")
    print(f"crash of 2 : t={report.crash_time}")
    print(
        f"history ok : omega={bool(report.omega_check)} "
        f"sigma={bool(report.sigma_check)}"
    )
    if report.distrust_events:
        print(f"distrusts  : {len(report.distrust_events)} events")
    expected = (args.algorithm == "naive") == report.contaminated
    print(
        "outcome    : "
        + ("CONTAMINATED" if report.contaminated else "safe")
        + (" (as the paper predicts)" if expected else " (UNEXPECTED)")
    )
    return 0 if expected else 1


def cmd_adversary(args) -> int:
    from repro.separation.adversary import run_partition_adversary
    from repro.separation.from_scratch_sigma import FromScratchSigma

    n, t = args.n, args.t
    verdict = run_partition_adversary(
        lambda pid: FromScratchSigma(n, t), n, t, seed=args.seed
    )
    print(verdict)
    if verdict.a_quorum is not None and verdict.b_quorum is not None:
        print(
            f"  A' = {sorted(verdict.a_quorum)} at p{verdict.a_process} "
            f"(tau={verdict.tau}); B' = {sorted(verdict.b_quorum)} "
            f"at p{verdict.b_process}"
        )
    expected = verdict.violated == (t >= n / 2)
    return 0 if expected else 1


def cmd_extract(args) -> int:
    from repro.consensus import QuorumMR
    from repro.detectors import Omega, PairedDetector, Sigma
    from repro.harness.runner import run_extraction

    pattern = _pattern_from_args(args)
    detector = PairedDetector(Omega(), Sigma("pivot"))
    with _maybe_traced(args, "extract"):
        outcome = run_extraction(QuorumMR(), detector, pattern, seed=args.seed)
    print(f"pattern : {pattern}")
    for p in range(args.n):
        quorums = [sorted(q) for _, q in outcome.result.outputs[p]]
        print(f"  p{p}: {quorums[:8]}" + (" ..." if len(quorums) > 8 else ""))
    print(f"Sigma^nu (Thm 5.4): {outcome.sigma_nu_check}")
    print(f"Sigma    (Thm 5.8): {outcome.sigma_check}")
    return 0 if outcome.sigma_nu_check.ok else 1


def cmd_reproduce(args) -> int:
    from repro.harness import experiments

    plan = [
        ("EXP-1 (Thms 6.27/6.28)", experiments.exp1_nuc_sufficiency,
         dict(ns=(2, 3, 4), seeds=(0, 1)) if args.quick else {}),
        ("EXP-2 (Thm 6.7)", experiments.exp2_boosting,
         dict(ns=(2, 3, 4), seeds=(0, 1)) if args.quick else {}),
        ("EXP-3 (Thms 5.4/5.8)", experiments.exp3_extraction,
         dict(ns=(3,), seeds=(0, 1)) if args.quick else {}),
        ("EXP-4 (Thm 7.1)", experiments.exp4_separation,
         dict(seeds=(0,)) if args.quick else {}),
        ("EXP-5 (Section 6.3)", experiments.exp5_contamination,
         dict(seeds=(0, 1)) if args.quick else {}),
        ("EXP-6 (Lemma 2.2)", experiments.exp6_merging,
         dict(seeds=range(5)) if args.quick else {}),
        ("EXP-7 (cost profile)", experiments.exp7_scaling,
         dict(ns=(2, 3, 4), seeds=(0,)) if args.quick else {}),
        ("EXP-8 (exhaustive small n)", experiments.exp8_exhaustive,
         dict(n=3, crash_times=(0, 25), seeds=(0,)) if args.quick else {}),
        ("EXP-9 (register gap)", experiments.exp9_registers,
         dict(seeds=(0, 1)) if args.quick else {}),
    ]
    sections = []
    for label, runner, kwargs in plan:
        print(f"running {label} ...", flush=True)
        table = runner(**kwargs, jobs=args.jobs)
        sections.append(table.render())
    report = (
        "REPRODUCTION REPORT\n"
        "The weakest failure detector to solve nonuniform consensus\n"
        "(Eisler, Hadzilacos, Toueg; PODC 2005)\n"
        + "=" * 70 + "\n\n"
        + "\n\n".join(sections)
        + "\n"
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report)
    print()
    print(report)
    if args.output:
        print(f"(written to {args.output})")
    return 0


def _read_validated_trace(path: str, force: bool):
    """Parse + schema-check one trace; ``None`` signals a fatal error."""
    from repro.obs.export import read_trace, validate_trace

    records = read_trace(path)
    errors = validate_trace(records)
    if errors:
        print(f"{path}: invalid trace, {len(errors)} schema error(s)")
        for error in errors:
            print(f"  - {error}")
        if not force:
            return None
    return records


def cmd_trace(args) -> int:
    """Dispatch ``repro trace [diff|flame] ...``.

    The positional grammar keeps the original ``repro trace FILE`` form
    working: a target that is not a subaction is treated as the file to
    render.
    """
    if args.target == "diff":
        return _trace_diff(args)
    if args.target == "flame":
        return _trace_flame(args)
    if args.rest:
        raise SystemExit(
            f"unexpected extra argument(s) {args.rest!r}; usage: "
            f"repro trace FILE | repro trace diff A B | repro trace flame FILE"
        )
    from repro.obs.inspect import render_trace

    records = _read_validated_trace(args.target, args.force)
    if records is None:
        return 1
    print(
        render_trace(
            records,
            top=args.top,
            width=args.width,
            max_rows=args.max_rows,
            timeline=not args.no_timeline,
        )
    )
    return 0


def _trace_diff(args) -> int:
    """``repro trace diff A B`` — per-span-path attribution of deltas."""
    from repro.obs.analyze import diff_traces, render_diff

    if len(args.rest) != 2:
        raise SystemExit("usage: repro trace diff TRACE_A TRACE_B")
    a_records = _read_validated_trace(args.rest[0], args.force)
    b_records = _read_validated_trace(args.rest[1], args.force)
    if a_records is None or b_records is None:
        return 1
    diff = diff_traces(
        a_records,
        b_records,
        wall_tol_ms=args.tolerance_ms,
        wall_rel_tol=args.rel_tolerance,
    )
    print(render_diff(diff, top=args.top, show_all=args.all))
    if args.expect_equal_ticks and not diff.tick_exact:
        print(
            "\nFAIL: logical-tick deltas found between traces that were "
            "expected identical (nondeterminism or a changed workload)"
        )
        return 1
    return 0


def _trace_flame(args) -> int:
    """``repro trace flame FILE`` — ASCII flamegraph over span paths."""
    from repro.obs.analyze import render_flame

    if len(args.rest) != 1:
        raise SystemExit("usage: repro trace flame TRACE")
    records = _read_validated_trace(args.rest[0], args.force)
    if records is None:
        return 1
    print(
        render_flame(
            records,
            width=args.width,
            by=args.by,
            max_rows=args.max_rows,
        )
    )
    return 0


def cmd_obs(args) -> int:
    """``repro obs report`` — write the self-contained HTML observatory."""
    from repro.obs.report import write_report

    if args.action != "report":  # pragma: no cover - argparse choices
        raise SystemExit(f"unknown obs action {args.action!r}")
    store_dir = args.store_dir
    if store_dir is None and not args.no_store:
        from repro.store.store import default_store_root

        store_dir = default_store_root()
    path = write_report(
        args.output,
        traces=args.trace,
        bench_kernel=args.bench_kernel,
        bench_extraction=args.bench_extraction,
        store_dir=store_dir,
        title=args.title,
    )
    print(f"(report written to {path})")
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import cmd_lint as run

    return run(args)


def _print_matrix_verdict(verdict) -> None:
    status = "ok " if verdict.ok else "FAIL"
    found = ",".join(sorted(verdict.found)) or "-"
    expected = ",".join(sorted(verdict.expected)) or "-"
    print(
        f"  {status} {verdict.config:<22} found={found:<42} "
        f"expected={expected} cases={verdict.cases}"
    )
    if not verdict.ok and verdict.sample:
        print(f"       sample: {verdict.sample}")


def cmd_chaos(args) -> int:
    from repro.chaos import CONFIGS

    if args.replay:
        from repro.chaos import replay_counterexample

        with _maybe_traced(args, "chaos:replay"):
            reproduced, outcome, document = replay_counterexample(args.replay)
        print(f"artifact : {args.replay}")
        print(f"config   : {document['config']}")
        print(f"property : {document['property']}")
        print(f"recorded : {document['message']}")
        if reproduced:
            live = next(
                v
                for v in outcome.violations
                if v.property == document["property"]
            )
            print(f"replayed : {live.message}")
            print(f"verdict  : reproduced in {outcome.steps} steps")
            return 0
        print("verdict  : NOT reproduced (checkers accepted the replay)")
        return 1

    if args.list:
        for name, config in CONFIGS.items():
            tag = "injected" if config.injector else "honest"
            print(f"  {name:<22} [{tag}] {config.description}")
        return 0

    names = args.config or None
    if names:
        unknown = [name for name in names if name not in CONFIGS]
        if unknown:
            raise SystemExit(
                f"unknown chaos config(s) {unknown}; "
                f"see 'python -m repro chaos --list'"
            )

    from repro.chaos.matrix import run_matrix

    with _maybe_traced(args, "chaos:matrix"):
        report = run_matrix(
            seed=args.seed,
            budget=args.budget,
            jobs=args.jobs,
            shrink=args.shrink,
            names=names,
        )
    print(f"chaos injection matrix (seed={report.seed})")
    for verdict in report.verdicts:
        _print_matrix_verdict(verdict)
        if verdict.shrink is not None:
            result = verdict.shrink
            print(
                f"       shrunk: {len(result.script)}-step script "
                f"(from {result.original_schedule_len}), "
                f"{result.evaluations} evaluations"
            )
            if args.out:
                from pathlib import Path

                from repro.chaos import save_counterexample

                path = (
                    Path(args.out)
                    / f"{verdict.config}-{result.property.replace(' ', '-')}"
                    f"-seed{report.seed}.json"
                )
                save_counterexample(result, path)
                print(f"       saved : {path}")
    print("matrix exact" if report.ok else "matrix NOT exact")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Run the service on wall clocks behind the TCP front."""
    import asyncio

    from repro.service import ConsensusService, ServiceConfig, TickClock
    from repro.service.net import serve_tcp

    config = ServiceConfig(
        n=args.n,
        seed=args.seed,
        batch_size=args.batch_size,
        queue_depth=args.queue_depth,
        read_mode=args.read_mode,
        crash_times=_parse_crashes(args.crash),
    )

    async def main() -> None:
        loop = asyncio.get_running_loop()
        service = ConsensusService(config, TickClock(loop))
        service.start()
        server = await serve_tcp(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(
            f"consensus service on {host}:{port} "
            f"(n={config.n}, batch={config.batch_size}, "
            f"reads={config.read_mode})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\n(service stopped)")
    return 0


def cmd_load(args) -> int:
    """Seeded load against an in-process service on the logical clock."""
    from repro.harness.load import LoadSpec, run_service_load
    from repro.service import ServiceConfig

    config = ServiceConfig(
        n=args.n,
        seed=args.seed,
        batch_size=args.batch_size,
        queue_depth=args.queue_depth,
        read_mode=args.read_mode,
        crash_times=_parse_crashes(args.crash),
    )
    spec = LoadSpec(
        mode=args.mode,
        clients=args.clients,
        commands=args.commands,
        arrival_every=args.arrival_every,
        think_ticks=args.think_ticks,
        seed=args.seed,
    )
    with _maybe_traced(args, "service:load"):
        report, service = run_service_load(
            config, spec, read_every=args.read_every
        )
    row = report.to_row()
    print(
        f"service load report (n={config.n}, batch={config.batch_size}, "
        f"mode={spec.mode}, seed={spec.seed})"
    )
    for key in (
        "submitted",
        "committed",
        "shed",
        "timed_out",
        "batches",
        "ticks",
        "kernel_steps",
        "commands_per_kstep",
        "latency_p50_ticks",
        "latency_p99_ticks",
        "latency_max_ticks",
        "wall_seconds",
    ):
        print(f"  {key:<20}: {row[key]}")
    print(f"  applied_digest      : {row['applied_digest'][:16]}…")
    invariants = service.invariants
    print(
        "  invariants          : "
        + ("ok" if invariants.ok else f"FAIL {invariants.violations[:2]}")
    )
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(row, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"(report written to {args.json_out})")
    return 0 if invariants.ok and report.timed_out == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of 'The weakest failure detector to "
            "solve nonuniform consensus' (Eisler, Hadzilacos, Toueg)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    consensus = sub.add_parser(
        "consensus", help="run A_nuc or the full (Omega, Sigma^nu) stack"
    )
    consensus.add_argument("--n", type=int, default=4)
    consensus.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="PID:TIME",
        help="crash a process at a time (repeatable)",
    )
    consensus.add_argument("--seed", type=int, default=0)
    consensus.add_argument(
        "--algorithm", choices=["anuc", "stack"], default="anuc"
    )
    consensus.add_argument(
        "--values", nargs="+", default=["red", "blue"], help="proposal pool"
    )
    consensus.add_argument(
        "--transcript",
        type=int,
        default=0,
        metavar="N",
        help="print the first N transcript lines",
    )
    consensus.set_defaults(func=cmd_consensus)

    experiment = sub.add_parser("experiment", help="run an EXP-1..EXP-9 sweep")
    experiment.add_argument(
        "name", choices=[f"exp{i}" for i in range(1, 10)]
    )
    experiment.add_argument(
        "--quick", action="store_true", help="small parameterization"
    )
    experiment.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (default 1 = serial; "
        "results are identical for every N)",
    )
    experiment.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a repro-trace/1 JSONL trace of the sweep "
        "(inspect with 'repro trace FILE')",
    )
    experiment.add_argument(
        "--store",
        action="store_true",
        help="serve unchanged rows from the content-addressed result store "
        "(benchmarks/results/store; see docs/sweeps.md)",
    )
    experiment.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root (default: benchmarks/results/store)",
    )
    experiment.set_defaults(func=cmd_experiment)

    from repro.store.cli import cmd_store, cmd_sweep

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative TOML/CSV sweep spec through the result store",
    )
    sweep.add_argument("spec", help="sweep spec file (.toml or .csv)")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; tables identical for "
        "every N)",
    )
    sweep.add_argument(
        "--batch",
        action="store_true",
        help="pack plannable tasks into the batched kernel (BatchSystem)",
    )
    sweep.add_argument(
        "--no-store",
        action="store_true",
        help="execute every row; do not read or write the result store",
    )
    sweep.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root (default: benchmarks/results/store)",
    )
    sweep.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="also write the rendered table(s) to FILE (byte-comparable "
        "across warm/cold runs)",
    )
    sweep.add_argument(
        "--stats-json",
        default=None,
        metavar="FILE",
        help="write hit/miss/invalidated counts and the table digest as JSON",
    )
    sweep.add_argument(
        "--require-warm",
        type=float,
        default=None,
        metavar="RATE",
        help="exit 1 unless the store hit rate reached RATE (e.g. 0.95; "
        "the CI warm-cache gate)",
    )
    sweep.set_defaults(func=cmd_sweep)

    store = sub.add_parser(
        "store", help="inspect/maintain the content-addressed result store"
    )
    store.add_argument(
        "action",
        choices=["ls", "gc", "diff"],
        help="ls: list records; gc: collect stale records; diff: what a "
        "spec's sweep would re-run right now",
    )
    store.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="sweep spec file (required for 'diff')",
    )
    store.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root (default: benchmarks/results/store)",
    )
    store.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    store.add_argument(
        "--all",
        action="store_true",
        help="gc: remove every object record, not just stale ones",
    )
    store.add_argument(
        "--dry-run",
        action="store_true",
        help="gc: report what would be removed without deleting",
    )
    store.add_argument(
        "--verbose", action="store_true", help="gc: list removed records"
    )
    store.add_argument(
        "--counters",
        action="store_true",
        help="diff: compare stored row telemetry (counter deltas between "
        "the current and the displaced code signature)",
    )
    store.set_defaults(func=cmd_store)

    contamination = sub.add_parser(
        "contamination", help="the Section 6.3 scenario"
    )
    contamination.add_argument(
        "algorithm", choices=["naive", "anuc"], nargs="?", default="naive"
    )
    contamination.add_argument("--seed", type=int, default=0)
    contamination.set_defaults(func=cmd_contamination)

    adversary = sub.add_parser(
        "adversary", help="the Theorem 7.1 partition adversary"
    )
    adversary.add_argument("--n", type=int, default=4)
    adversary.add_argument("--t", type=int, default=2)
    adversary.add_argument("--seed", type=int, default=0)
    adversary.set_defaults(func=cmd_adversary)

    extract = sub.add_parser(
        "extract", help="run T_{D -> Sigma^nu} over (Omega, Sigma)/quorum-MR"
    )
    extract.add_argument("--n", type=int, default=3)
    extract.add_argument(
        "--crash", action="append", default=[], metavar="PID:TIME"
    )
    extract.add_argument("--seed", type=int, default=0)
    extract.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a repro-trace/1 JSONL trace of the extraction run",
    )
    extract.set_defaults(func=cmd_extract)

    reproduce = sub.add_parser(
        "reproduce", help="run all nine experiments; print one report"
    )
    reproduce.add_argument(
        "--quick", action="store_true", help="small parameterization"
    )
    reproduce.add_argument(
        "--output", default=None, metavar="FILE", help="also write the report"
    )
    reproduce.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep (default 1 = serial)",
    )
    reproduce.set_defaults(func=cmd_reproduce)

    trace = sub.add_parser(
        "trace",
        help="inspect (FILE), compare (diff A B) or flame (flame FILE) "
        "JSONL traces written by --trace-out",
    )
    trace.add_argument(
        "target",
        help="a repro-trace/1 or /2 JSONL file, or the subaction "
        "'diff' / 'flame'",
    )
    trace.add_argument(
        "rest",
        nargs="*",
        help="trace file(s) for 'diff' (two) and 'flame' (one)",
    )
    trace.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="rows in the aggregate / diff tables (by self ticks)",
    )
    trace.add_argument(
        "--width", type=int, default=64, metavar="COLS",
        help="timeline / flamegraph bar width in columns",
    )
    trace.add_argument(
        "--max-rows", type=int, default=40, metavar="N",
        help="maximum timeline/flamegraph rows before truncation",
    )
    trace.add_argument(
        "--no-timeline", action="store_true", help="skip the ASCII timeline"
    )
    trace.add_argument(
        "--force", action="store_true",
        help="render even if schema validation fails",
    )
    trace.add_argument(
        "--tolerance-ms", type=float, default=5.0, metavar="MS",
        help="diff: absolute wall-clock noise floor per span path",
    )
    trace.add_argument(
        "--rel-tolerance", type=float, default=0.25, metavar="FRAC",
        help="diff: relative wall-clock noise floor (fraction of the "
        "larger side)",
    )
    trace.add_argument(
        "--expect-equal-ticks", action="store_true",
        help="diff: exit 1 on any logical-tick delta (same-seed "
        "determinism check)",
    )
    trace.add_argument(
        "--all", action="store_true",
        help="diff: list every compared path, not just significant ones",
    )
    trace.add_argument(
        "--by", choices=["ticks", "wall"], default=None,
        help="flame: weight axis (default: ticks, falling back to wall "
        "when the trace has no tick extent)",
    )
    trace.set_defaults(func=cmd_trace)

    obs = sub.add_parser(
        "obs",
        help="observability tooling: 'report' writes a self-contained "
        "HTML run observatory",
    )
    obs.add_argument("action", choices=["report"])
    obs.add_argument(
        "--trace",
        action="append",
        default=[],
        metavar="FILE",
        help="include this JSONL trace (repeatable)",
    )
    obs.add_argument(
        "--bench-kernel",
        default="BENCH_kernel.json",
        metavar="FILE",
        help="committed kernel benchmark report (default BENCH_kernel.json)",
    )
    obs.add_argument(
        "--bench-extraction",
        default="BENCH_extraction.json",
        metavar="FILE",
        help="committed extraction benchmark report",
    )
    obs.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="result store root to scan for shelved bench baselines "
        "(default: benchmarks/results/store)",
    )
    obs.add_argument(
        "--no-store",
        action="store_true",
        help="skip the bench shelf; chart only the committed reports",
    )
    obs.add_argument(
        "--output",
        default="obs-report.html",
        metavar="FILE",
        help="output HTML path (default obs-report.html)",
    )
    obs.add_argument(
        "--title", default="repro run observatory", help="report title"
    )
    obs.set_defaults(func=cmd_obs)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection matrix / schedule fuzzing / replay",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--budget",
        type=int,
        default=None,
        help="per-config step budget override",
    )
    chaos.add_argument(
        "--matrix",
        action="store_true",
        help="run the full injection matrix (the default action)",
    )
    chaos.add_argument(
        "--config",
        action="append",
        default=[],
        help="restrict to named config(s); repeatable",
    )
    chaos.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="replay a repro-counterexample/1 JSON artifact",
    )
    chaos.add_argument(
        "--jobs", type=int, default=1, help="parallel matrix workers"
    )
    chaos.add_argument(
        "--shrink",
        action="store_true",
        help="shrink each primary violation to a minimal scripted prefix",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for shrunk counterexample artifacts",
    )
    chaos.add_argument(
        "--list", action="store_true", help="list matrix configs and exit"
    )
    chaos.add_argument("--trace-out", default=None)
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run the consensus service (wall clock, newline-JSON TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7707)
    serve.add_argument("--n", type=int, default=3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--batch-size", type=int, default=4)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument(
        "--read-mode",
        choices=["majority", "local"],
        default="majority",
        help="majority: certified reads only; local: serve a replica's "
        "decided (uncertified) state — unsafe, demo only",
    )
    serve.add_argument(
        "--crash", action="append", default=[], metavar="PID:TIME"
    )
    serve.set_defaults(func=cmd_serve)

    load = sub.add_parser(
        "load",
        help="seeded load against an in-process service (logical clock)",
    )
    load.add_argument("--n", type=int, default=3)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--batch-size", type=int, default=4)
    load.add_argument("--queue-depth", type=int, default=64)
    load.add_argument(
        "--read-mode", choices=["majority", "local"], default="majority"
    )
    load.add_argument(
        "--crash", action="append", default=[], metavar="PID:TIME"
    )
    load.add_argument(
        "--mode",
        choices=["open", "closed"],
        default="open",
        help="open: rate-driven arrivals (shed on backpressure); "
        "closed: commit-driven clients with think time",
    )
    load.add_argument("--clients", type=int, default=8)
    load.add_argument("--commands", type=int, default=64)
    load.add_argument(
        "--arrival-every",
        type=int,
        default=2,
        metavar="TICKS",
        help="open loop: mean ticks between arrivals (0 = burst)",
    )
    load.add_argument(
        "--think-ticks", type=int, default=1, metavar="TICKS",
        help="closed loop: ticks between a commit and the next send",
    )
    load.add_argument(
        "--read-every", type=int, default=0, metavar="N",
        help="issue a certified read every N commits (0 = never)",
    )
    load.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="also write the report row as JSON",
    )
    load.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a repro-trace JSONL of the run "
        "(inspect with 'repro trace flame FILE')",
    )
    load.set_defaults(func=cmd_load)

    lint = sub.add_parser(
        "lint",
        help="determinism & model-fidelity static analysis (RPR rules)",
    )
    from repro.lint.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
