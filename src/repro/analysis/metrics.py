"""Per-run metrics extracted from live run results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.simtrie import merge_counter_dicts
from repro.kernel.system import RunResult
from repro import obs as _obs


@dataclass
class RunMetrics:
    """Cost and progress figures of one live run."""

    steps: int
    messages_sent: int
    messages_delivered: int
    decided_correct: int
    correct_count: int
    first_decision_time: Optional[int]
    last_decision_time: Optional[int]
    outputs_emitted: int
    #: Decisions across *all* processes (faulty deciders included), unlike
    #: ``decided_correct`` which counts only the correct ones.
    decided_total: int = 0

    @property
    def all_correct_decided(self) -> bool:
        return self.decided_correct == self.correct_count

    @property
    def messages_per_step(self) -> float:
        return self.messages_sent / self.steps if self.steps else 0.0


def collect_metrics(result: RunResult) -> RunMetrics:
    correct = result.pattern.correct
    decided = [p for p in result.decisions if p in correct]
    times = [
        t for p, t in result.decision_times.items() if p in correct
    ]
    outputs = sum(max(0, len(v) - 1) for v in result.outputs.values())
    return RunMetrics(
        steps=result.step_count,
        messages_sent=result.messages_sent,
        messages_delivered=result.messages_delivered,
        decided_correct=len(decided),
        correct_count=len(correct),
        first_decision_time=min(times) if times else None,
        last_decision_time=max(times) if times else None,
        outputs_emitted=outputs,
        decided_total=len(result.decisions),
    )


def collect_search_counters(processes: Iterable[object]) -> Optional[Dict[str, int]]:
    """Sum the search-work counters of every process exposing them.

    The extraction trie (:mod:`repro.core.simtrie`) and the boosting
    closed-path memo both publish per-process counters through a
    ``search_counters()`` method; this merges them across a run's processes
    into one dict for reports and benchmark JSON.  ``None`` when no process
    exposes counters (e.g. the from-scratch search path).
    """
    dicts = []
    for proc in processes:
        getter = getattr(proc, "search_counters", None)
        if getter is None:
            continue
        counters = getter()
        if counters:
            dicts.append(counters)
    merged = merge_counter_dicts(dicts)
    if merged and _obs._ENABLED:
        _obs.metrics().absorb(merged, prefix="search.")
    return merged


def message_breakdown(result: RunResult) -> Dict[str, int]:
    """Messages sent per tag (LEAD/REP/PROP/SAW/ACK/..., DAGs as 'DAG').

    Channel-wrapped payloads (the stack's ('B', ...) / ('C', ...)) are
    unwrapped first; untagged payloads count as 'other'.
    """
    counts: Dict[str, int] = {}
    for record in result.steps:
        for message in record.sends:
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and isinstance(payload[0], str)
                and len(payload[0]) == 1
            ):
                payload = payload[1]
            if hasattr(payload, "frontier") and hasattr(payload, "add_local_sample"):
                tag = "DAG"
            elif isinstance(payload, tuple) and payload and isinstance(payload[0], str):
                tag = payload[0]
            else:
                tag = "other"
            counts[tag] = counts.get(tag, 0) + 1
    return counts
