"""Metrics, aggregation, tables, transcripts and bounded model checking."""

from repro.analysis.metrics import RunMetrics, collect_metrics
from repro.analysis.modelcheck import (
    ExplorationReport,
    agreement_invariant,
    conjoin,
    explore,
    validity_invariant,
)
from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import Table
from repro.analysis.trace import decision_summary, transcript

__all__ = [
    "ExplorationReport",
    "RunMetrics",
    "Summary",
    "Table",
    "agreement_invariant",
    "collect_metrics",
    "conjoin",
    "decision_summary",
    "explore",
    "summarize",
    "transcript",
    "validity_invariant",
]
