"""Small numeric aggregation helpers for experiment sweeps."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __repr__(self) -> str:
        return (
            f"Summary(n={self.count}, mean={self.mean:.2f}, std={self.std:.2f}, "
            f"min={self.minimum:.2f}, med={self.median:.2f}, "
            f"max={self.maximum:.2f})"
        )


def summarize(values: Iterable[float]) -> Summary:
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        return Summary(0, math.nan, math.nan, math.nan, math.nan, math.nan)
    n = len(data)
    mean = sum(data) / n
    var = sum((v - mean) ** 2 for v in data) / n
    mid = n // 2
    median = data[mid] if n % 2 else (data[mid - 1] + data[mid]) / 2
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=data[0],
        median=median,
        maximum=data[-1],
    )


def rate(successes: int, total: int) -> float:
    """A success rate in [0, 1] (NaN when total is zero)."""
    return successes / total if total else math.nan
