"""Human-readable transcripts of live runs.

Turns a :class:`~repro.kernel.system.RunResult` into annotated text: one
line per step (who stepped, what was received, the detector value, what was
sent), with decision and crash markers.  Message payloads are summarized —
DAG payloads print as ``DAG[size]`` rather than dumping hundreds of samples.

Intended for debugging crafted scenarios and for the examples; everything
here is presentation-only.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.kernel.system import RunResult, StepRecord


def summarize_payload(payload: Any, limit: int = 60) -> str:
    """A short, stable rendering of a message payload."""
    if hasattr(payload, "add_local_sample") and hasattr(payload, "frontier"):
        return f"DAG[{len(payload)}]"
    if isinstance(payload, tuple) and len(payload) == 2 and hasattr(
        payload[1], "frontier"
    ):
        return f"({payload[0]}, DAG[{len(payload[1])}])"
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        parts = [str(payload[0])]
        for item in payload[1:]:
            parts.append(_short(item))
        text = "(" + ", ".join(parts) + ")"
    else:
        text = _short(payload)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


def _short(item: Any) -> str:
    if isinstance(item, frozenset):
        return "{" + ",".join(str(x) for x in sorted(item)) + "}"
    if isinstance(item, dict):
        return f"hist[{sum(len(v) for v in item.values())}]"
    return repr(item)


def summarize_detector(value: Any) -> str:
    if isinstance(value, tuple):
        return "(" + ", ".join(_short(v) for v in value) + ")"
    return _short(value)


def format_step(record: StepRecord) -> str:
    """One transcript line for a step."""
    recv = "λ"
    if record.message is not None:
        recv = (
            f"{record.message.sender}->"
            f"{summarize_payload(record.message.payload)}"
        )
    sends = ""
    if record.sends:
        dests = {}
        for message in record.sends:
            key = summarize_payload(message.payload)
            dests.setdefault(key, []).append(message.dest)
        rendered = [
            f"{payload} to {sorted(ds)}" for payload, ds in dests.items()
        ]
        sends = "  sends " + "; ".join(rendered)
    return (
        f"t={record.time:<5} p{record.pid} "
        f"d={summarize_detector(record.detector_value)} "
        f"recv {recv}{sends}"
    )


def transcript(
    result: RunResult,
    start: int = 0,
    limit: Optional[int] = None,
    pids: Optional[Iterable[int]] = None,
) -> str:
    """The annotated transcript of (a window of) a run."""
    wanted = set(pids) if pids is not None else None
    lines: List[str] = []
    decisions = {
        t: (p, v)
        for p, v in result.decisions.items()
        for t in [result.decision_times.get(p)]
        if t is not None
    }
    crash_times = {
        result.pattern.crash_time(p): p
        for p in result.pattern.faulty
        if result.pattern.crash_time(p) is not None
    }
    count = 0
    for record in result.steps:
        if record.time < start:
            continue
        if wanted is not None and record.pid not in wanted:
            continue
        if record.time in crash_times and crash_times[record.time] is not None:
            lines.append(f"--- process {crash_times[record.time]} crashes ---")
            crash_times[record.time] = None  # only once
        lines.append(format_step(record))
        if record.time in decisions:
            p, v = decisions[record.time]
            lines.append(f"*** process {p} DECIDES {v!r} ***")
        count += 1
        if limit is not None and count >= limit:
            lines.append(f"... ({len(result.steps)} steps total)")
            break
    return "\n".join(lines)


def decision_summary(result: RunResult) -> str:
    """One line per process: decision, time, correctness."""
    lines = []
    for p in range(result.n):
        status = "correct" if p in result.pattern.correct else "faulty "
        if p in result.decisions:
            lines.append(
                f"p{p} ({status}): decided {result.decisions[p]!r} "
                f"at t={result.decision_times.get(p)}"
            )
        else:
            lines.append(f"p{p} ({status}): undecided")
    return "\n".join(lines)
