"""Plain-text tables for experiment reports.

The benchmarks and examples print their results through this module so that
EXPERIMENTS.md and the console output stay in the same format.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


class Table:
    """A fixed-column table with an optional title and notes."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.notes: List[str] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} "
                f"columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(str(x) for x in sorted(value)) + "}"
    return str(value)
