"""Bounded exhaustive exploration of tiny systems (model-checking flavour).

Sampled runs (the harness) cover many schedules of big-ish systems; this
module covers *all* schedules of tiny ones, up to a step bound: from the
initial configuration, branch over every enabled step — each alive process
times each pending message for it (plus lambda) — and check a safety
invariant in every reachable configuration.

Configurations are deduplicated by a canonical digest (process-state
snapshots + multiset of pending messages), which collapses the many
interleavings that lead to the same configuration and keeps small instances
tractable.  Detector values are taken from a time-indexed history like
everywhere else; the exploration clock advances one tick per step, exactly
as in the live system.

This is *bounded* checking: it proves safety of every run prefix up to
``max_depth`` steps, not of infinite runs — the right tool for agreement
and validity (violations are finitely witnessed), not for termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.simtrie import DigestCache
from repro.kernel.automaton import Automaton, DeliveredMessage
from repro.kernel.failures import FailurePattern
from repro import obs as _obs

HistoryFn = Callable[[int, int], Any]


@dataclass
class Violation:
    """A reachable configuration breaking the invariant."""

    depth: int
    trace: List[str]
    detail: str


@dataclass
class ExplorationReport:
    """Outcome of one bounded exploration."""

    configurations: int
    transitions: int
    max_depth: int
    truncated: bool
    violation: Optional[Violation] = None
    digest_hits: int = 0  # state snapshots served by the digest cache

    @property
    def ok(self) -> bool:
        return self.violation is None

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"VIOLATION@{self.violation.depth}"
        return (
            f"ExplorationReport({status}, configs={self.configurations}, "
            f"transitions={self.transitions}, depth<={self.max_depth})"
        )


class _LiveState:
    """A mutable exploration state: automaton states + pending messages."""

    __slots__ = ("states", "pending", "seq", "time")

    def __init__(self, states, pending, seq, time):
        self.states = states  # dict pid -> state
        self.pending = pending  # list of Message-like tuples
        self.seq = seq  # dict pid -> next send seq
        self.time = time


def explore(
    automaton: Automaton,
    pattern: FailurePattern,
    proposals: Mapping[int, Any],
    history: HistoryFn,
    invariant: Callable[[Dict[int, Any], "_MessageView"], Optional[str]],
    max_depth: int = 8,
    max_configs: int = 200_000,
    digest_cache: Optional[DigestCache] = None,
) -> ExplorationReport:
    """Explore every schedule prefix up to ``max_depth`` steps.

    ``invariant(decisions, view)`` receives the per-process decision map and
    a read-only view of the configuration; returning a string marks a
    violation (the string is the explanation), ``None`` means fine.

    Exploration is depth-first with global deduplication on a configuration
    digest, so equivalent interleavings are visited once.  Successor
    configurations copy only the stepping process's state (transitions may
    mutate in place; the others are shared by reference), and a
    ``digest_cache`` memoizes per-state snapshot digests by identity —
    shared states cost their ``repr`` once instead of once per
    configuration.  ``None`` uses a private cache; pass one to share it
    across related explorations of the same automaton.
    """
    if not _obs._ENABLED:
        return _explore_impl(
            automaton, pattern, proposals, history, invariant,
            max_depth, max_configs, digest_cache,
        )
    with _obs.tracer().span(
        "modelcheck.explore", n=pattern.n, max_depth=max_depth
    ) as span:
        report = _explore_impl(
            automaton, pattern, proposals, history, invariant,
            max_depth, max_configs, digest_cache,
        )
        span.set(
            configurations=report.configurations,
            transitions=report.transitions,
            truncated=report.truncated,
            ok=report.ok,
        )
        reg = _obs.metrics()
        reg.inc("modelcheck.explorations")
        reg.inc("modelcheck.configurations", report.configurations)
        reg.inc("modelcheck.transitions", report.transitions)
        reg.inc("modelcheck.digest_hits", report.digest_hits)
        return report


def _explore_impl(
    automaton: Automaton,
    pattern: FailurePattern,
    proposals: Mapping[int, Any],
    history: HistoryFn,
    invariant: Callable[[Dict[int, Any], "_MessageView"], Optional[str]],
    max_depth: int = 8,
    max_configs: int = 200_000,
    digest_cache: Optional[DigestCache] = None,
) -> ExplorationReport:
    if digest_cache is None:
        digest_cache = DigestCache()
    n = pattern.n

    def initial() -> _LiveState:
        states = {
            p: automaton.initial_state(p, n, proposals[p]) for p in range(n)
        }
        return _LiveState(states=states, pending=[], seq={}, time=0)

    def digest(state: _LiveState) -> Tuple:
        # repr-normalize snapshots: automaton states may embed unhashable
        # structures (dict-valued message payloads); equal reprs collapse
        # equal configurations, unequal ones merely cost extra exploration.
        # The cache is identity-keyed — sound because stored states are
        # never mutated (apply copies the stepping state before stepping).
        snaps = tuple(
            digest_cache.lookup(state.states[p], automaton) for p in range(n)
        )
        msgs = tuple(
            sorted((m[0], m[1], repr(m[2])) for m in state.pending)
        )
        return (snaps, msgs, state.time)

    def successors(state: _LiveState):
        alive = [p for p in range(n) if pattern.is_alive(p, state.time)]
        for pid in alive:
            choices: List[Optional[int]] = [None]
            for i, (sender, dest, payload) in enumerate(state.pending):
                if dest == pid:
                    choices.append(i)
            for choice in choices:
                yield pid, choice

    def apply(state: _LiveState, pid: int, choice: Optional[int]) -> _LiveState:
        # Only the stepping process's state can change; copy it (transition
        # may mutate in place) and share the rest by reference.
        states = dict(state.states)
        states[pid] = automaton.copy_state(states[pid])
        new = _LiveState(
            states=states,
            pending=list(state.pending),
            seq=dict(state.seq),
            time=state.time + 1,
        )
        delivered = None
        if choice is not None:
            sender, dest, payload = new.pending.pop(choice)
            delivered = DeliveredMessage(sender, payload)
        d = history(pid, state.time)
        outcome = automaton.transition(new.states[pid], pid, delivered, d)
        new.states[pid] = outcome.state
        for dest, payload in outcome.sends:
            new.pending.append((pid, dest, payload))
        return new

    def decisions_of(state: _LiveState) -> Dict[int, Any]:
        found = {}
        for p in range(n):
            value = automaton.decision(state.states[p])
            if value is not None:
                found[p] = value
        return found

    root = initial()
    seen: Set[Tuple] = {digest(root)}
    configurations = 1
    transitions = 0
    truncated = False

    stack: List[Tuple[_LiveState, int, List[str]]] = [(root, 0, [])]
    while stack:
        state, depth, trace = stack.pop()
        problem = invariant(decisions_of(state), _MessageView(state.pending))
        if problem is not None:
            return ExplorationReport(
                configurations=configurations,
                transitions=transitions,
                max_depth=max_depth,
                truncated=truncated,
                violation=Violation(depth=depth, trace=trace, detail=problem),
                digest_hits=digest_cache.hits,
            )
        if depth >= max_depth:
            continue
        for pid, choice in successors(state):
            transitions += 1
            nxt = apply(state, pid, choice)
            key = digest(nxt)
            if key in seen:
                continue
            if configurations >= max_configs:
                truncated = True
                continue
            seen.add(key)
            configurations += 1
            label = f"p{pid}:" + ("λ" if choice is None else f"m{choice}")
            stack.append((nxt, depth + 1, trace + [label]))

    return ExplorationReport(
        configurations=configurations,
        transitions=transitions,
        max_depth=max_depth,
        truncated=truncated,
        digest_hits=digest_cache.hits,
    )


class _MessageView:
    """Read-only view of pending messages for invariants."""

    def __init__(self, pending):
        self._pending = tuple(pending)

    def __len__(self) -> int:
        return len(self._pending)

    def payloads(self) -> List[Any]:
        return [payload for _, _, payload in self._pending]


# ----------------------------------------------------------------------
# Ready-made invariants
# ----------------------------------------------------------------------


def agreement_invariant(correct: FrozenSet[int], uniform: bool = False):
    """No two (correct) deciders disagree."""

    def check(decisions: Dict[int, Any], view) -> Optional[str]:
        relevant = {
            p: v
            for p, v in decisions.items()
            if uniform or p in correct
        }
        values = set(relevant.values())
        if len(values) > 1:
            return f"deciders disagree: {relevant}"
        return None

    return check


def validity_invariant(proposed: FrozenSet[Any]):
    """Every decided value was proposed."""

    def check(decisions: Dict[int, Any], view) -> Optional[str]:
        for p, v in decisions.items():
            if v not in proposed:
                return f"process {p} decided unproposed value {v!r}"
        return None

    return check


def conjoin(*invariants):
    def check(decisions, view) -> Optional[str]:
        for invariant in invariants:
            problem = invariant(decisions, view)
            if problem is not None:
                return problem
        return None

    return check
