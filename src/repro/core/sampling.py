"""A_DAG (Fig. 1): the DAG-building algorithm as a live process.

Each iteration of the loop — receive a message, query the detector, update
the DAG, broadcast it — is one model step, exactly as the paper notes.  The
transformations embed this loop verbatim; :class:`DagBuilder` is the
standalone version used to study the DAG machinery itself (Observations
4.1-4.4, Lemmas 4.5-4.8).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.dag import DagCore
from repro.kernel.automaton import Process, ProcessContext


class DagBuilder(Process):
    """Pure A_DAG: builds and broadcasts a DAG of detector samples."""

    def __init__(self) -> None:
        self.core: DagCore = None  # type: ignore[assignment]

    def program(self, ctx: ProcessContext) -> Generator:
        core = DagCore(ctx.pid, ctx.n)
        self.core = core  # exposed for inspection by tests and drivers
        while True:
            obs = yield from ctx.take_step()  # line 5: receive a message
            if obs.message is not None:  # line 7: G_p <- G_p ∪ m
                core.absorb(obs.message.payload)
            core.sample(obs.detector_value, obs.time)  # lines 6, 8-10
            ctx.send_to_all(core.dag)  # line 11
