"""A_DAG (Fig. 1): the DAG-building algorithm as a live process.

Each iteration of the loop — receive a message, query the detector, update
the DAG, broadcast it — is one model step, exactly as the paper notes.  The
transformations embed this loop verbatim; :class:`DagBuilder` is the
standalone version used to study the DAG machinery itself (Observations
4.1-4.4, Lemmas 4.5-4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.dag import DagCore, SampleDAG
from repro.kernel.automaton import Process, ProcessContext


class DagBuilder(Process):
    """Pure A_DAG: builds and broadcasts a DAG of detector samples."""

    def __init__(self) -> None:
        self.core: DagCore = None  # type: ignore[assignment]

    def program(self, ctx: ProcessContext) -> Generator:
        core = DagCore(ctx.pid, ctx.n)
        self.core = core  # exposed for inspection by tests and drivers
        while True:
            obs = yield from ctx.take_step()  # line 5: receive a message
            if obs.message is not None:  # line 7: G_p <- G_p ∪ m
                core.absorb(obs.message.payload)
            core.sample(obs.detector_value, obs.time)  # lines 6, 8-10
            ctx.send_to_all(core.dag)  # line 11


@dataclass
class DagRun:
    """One finished A_DAG run: its kernel result and per-process DAGs."""

    seed: int
    result: Any  # RunResult
    cores: Dict[int, DagCore]

    @property
    def dags(self) -> Dict[int, SampleDAG]:
        return {p: core.dag for p, core in self.cores.items()}


def sample_dag_runs(
    detector,
    pattern,
    seeds: Sequence[int],
    max_steps: int,
    delivery: Optional[Tuple[Any, ...]] = ("coalescing",),
    scheduler: Optional[Tuple[Any, ...]] = None,
    batch: bool = True,
    use_numpy: Optional[bool] = None,
) -> List[DagRun]:
    """Bulk-sample detector histories into DAGs-of-samples, one run per seed.

    This is the sampling front half of the extraction transformations: each
    seed draws its own detector history (via the shared
    :func:`~repro.detectors.base.sample_history_cached` cache) and runs
    A_DAG over it, yielding per-process :class:`SampleDAG`\\ s whose fresh
    parts feed the deciding-schedule search (Fig. 2 lines 14-17).

    ``batch=True`` (the default) packs all seeds into one
    :class:`~repro.kernel.batch.BatchSystem` — DAG lanes are fast-path
    eligible, so hundreds of seeds advance per tick sweep — and is
    bit-identical to the serial path: same schedules, same ``RunResult``
    per seed, same DAG node sets.  ``scheduler``/``delivery`` are lane spec
    tuples (see :func:`repro.kernel.batch.build_delivery`); the default
    coalescing delivery mirrors the extraction harness.
    """
    from repro.detectors.base import sample_history_cached

    if batch:
        from repro.kernel.batch import BatchSystem, LaneSpec

        specs = [
            LaneSpec(
                pattern=pattern,
                history=sample_history_cached(detector, pattern, seed),
                seed=seed,
                max_steps=max_steps,
                program="dag-builder",
                scheduler=scheduler,
                delivery=delivery,
                trace="metrics",
            )
            for seed in seeds
        ]
        engine = BatchSystem(specs, use_numpy=use_numpy)
        results = engine.run()
        return [
            DagRun(seed=seed, result=result, cores=engine.extras(i))
            for i, (seed, result) in enumerate(zip(seeds, results))
        ]

    from repro.kernel.batch import build_delivery, build_scheduler
    from repro.kernel.system import System

    runs: List[DagRun] = []
    for seed in seeds:
        history = sample_history_cached(detector, pattern, seed)
        processes = {p: DagBuilder() for p in range(pattern.n)}
        system = System(
            processes,
            pattern,
            history,
            seed=seed,
            scheduler=(
                build_scheduler(scheduler) if scheduler is not None else None
            ),
            delivery=(
                build_delivery(delivery) if delivery is not None else None
            ),
            trace="metrics",
        )
        result = system.run(max_steps=max_steps)
        runs.append(
            DagRun(
                seed=seed,
                result=result,
                cores={p: proc.core for p, proc in processes.items()},
            )
        )
    return runs
