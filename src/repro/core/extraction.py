"""T_{D -> Sigma^nu} (Fig. 2): the necessity transformation.

Given any algorithm ``A`` that uses detector ``D`` to solve (binary)
nonuniform consensus, each process runs A_DAG over ``D`` and, from the fresh
part of its DAG (descendants of the barrier ``u_p``), looks for two simulated
schedules — one from the all-0 initial configuration, one from the all-1
configuration — in both of which it decides.  When found, it outputs

    ``participants(S_0) ∪ participants(S_1)``

as its next Sigma^nu quorum and refreshes the barrier (lines 17-19).

* Completeness follows from the freshness barrier: after all crashes, fresh
  samples are all of correct processes (Lemma 5.2).
* Nonuniform intersection follows from the merging argument (Lemma 5.3): two
  disjoint deciding schedules from I_0 and I_1 would merge into one run of
  ``A`` deciding 0 and 1 — and the test suite *performs* that merge with
  Lemma 2.2 whenever it can, as a deep differential check.

The same algorithm transforms any ``D`` that solves *uniform* consensus into
full Sigma (Theorem 5.8); only the checker changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, List, Mapping, Optional, Tuple

from repro.core.dag import DagCore, Sample, SampleDAG
from repro.core.simtrie import IncrementalExtractionEngine
from repro.core.simulation import PathSimulation, find_deciding_schedule
from repro.kernel.automaton import Automaton, Process, ProcessContext
# Aliased: ``obs`` is the observation local inside program() below.
from repro import obs as obslib


@dataclass
class ExtractionSearch:
    """Tuning knobs for the deciding-schedule search.

    ``search_growth`` throttles how often the (exponential-in-n) subset
    search runs: only after the fresh subgraph gained at least that many new
    samples since the last attempt.  Found schedules stay valid as the DAG
    grows (``Sch`` is monotone — Lemma 4.5/4.11), so each initial
    configuration's schedule is cached until the barrier moves.

    ``use_trie`` routes the search through the incremental simulation trie
    (:mod:`repro.core.simtrie`): chains share simulated prefixes between
    attempts and between the I_0 and I_1 configurations, and subsets whose
    fresh samples are unchanged since a failed attempt are skipped.  The
    results are identical to the from-scratch search (oracle-tested);
    ``snapshot_stride`` tunes how densely simulator snapshots are cached.
    """

    search_growth: int = 12
    max_path_len: int = 2000
    minimize_participants: bool = True
    max_subset_size: Optional[int] = None  # cap candidate quorum size
    use_trie: bool = True
    snapshot_stride: int = 8


@dataclass
class _QuorumEvidence:
    """Why a quorum was output: the two deciding simulations."""

    quorum: FrozenSet[int]
    sim0: PathSimulation
    sim1: PathSimulation
    barrier: Sample


class SigmaNuExtractor(Process):
    """One process of ``T_{D -> Sigma^nu}``.

    Parameters
    ----------
    subject:
        The consensus algorithm ``A`` (a pure automaton) that solves
        nonuniform consensus using the ambient detector ``D``.
    values:
        The two proposal values of binary consensus (default ``(0, 1)``).
    search:
        Schedule-search tuning.
    """

    def __init__(
        self,
        subject: Automaton,
        n: int,
        values: Tuple[Any, Any] = (0, 1),
        search: Optional[ExtractionSearch] = None,
    ):
        self.subject = subject
        self.n = n
        self.values = values
        self.search = search if search is not None else ExtractionSearch()
        self.evidence: List[_QuorumEvidence] = []
        self.core: Optional[DagCore] = None
        self.engine: Optional[IncrementalExtractionEngine] = (
            IncrementalExtractionEngine(
                subject, n, snapshot_stride=self.search.snapshot_stride
            )
            if self.search.use_trie
            else None
        )

    def initial_output(self) -> Any:
        # Line 2: Sigma^nu-output_p <- Pi.
        return frozenset(range(self.n))

    def search_counters(self) -> Optional[Dict[str, int]]:
        """The trie's work counters (``None`` on the from-scratch path)."""
        return self.engine.counters.as_dict() if self.engine else None

    def _find(
        self,
        proposals: Mapping[int, Any],
        fresh: List[Sample],
        target: int,
        barrier: Sample,
    ) -> Optional[PathSimulation]:
        if not obslib._ENABLED:
            return self._find_impl(proposals, fresh, target, barrier)
        obslib.metrics().inc("extract.find_calls")
        with obslib.tracer().span(
            "extract.find",
            value=next(iter(proposals.values()), None),
            fresh=len(fresh),
            pid=target,
        ) as span:
            found = self._find_impl(proposals, fresh, target, barrier)
            span.set(found=found is not None)
            return found

    def _find_impl(
        self,
        proposals: Mapping[int, Any],
        fresh: List[Sample],
        target: int,
        barrier: Sample,
    ) -> Optional[PathSimulation]:
        search = self.search
        if self.engine is not None:
            return self.engine.find_deciding_schedule(
                proposals,
                fresh,
                target,
                barrier=barrier,
                max_path_len=search.max_path_len,
                minimize_participants=search.minimize_participants,
                max_subset_size=search.max_subset_size,
            )
        return find_deciding_schedule(
            self.subject,
            self.n,
            proposals,
            fresh,
            target=target,
            max_path_len=search.max_path_len,
            minimize_participants=search.minimize_participants,
            max_subset_size=search.max_subset_size,
        )

    def program(self, ctx: ProcessContext) -> Generator:
        core = DagCore(ctx.pid, ctx.n)
        self.core = core
        search = self.search
        proposals0 = {p: self.values[0] for p in range(ctx.n)}
        proposals1 = {p: self.values[1] for p in range(ctx.n)}

        barrier: Optional[Sample] = None
        cached: Dict[int, Optional[PathSimulation]] = {0: None, 1: None}
        last_search_size = -(10**9)
        # The fresh subgraph (line 14) is maintained incrementally: DAG
        # nodes are insertion-ordered and only ever appended (dict update
        # keeps existing positions), so scanning nodes past the last-seen
        # index finds exactly the new samples.  Whether a sample descends
        # from the barrier never changes, so old verdicts stay valid; a
        # barrier move resets the scan.
        fresh: List[Sample] = []
        scanned = 0

        while True:
            obs = yield from ctx.take_step()  # line 6
            if obs.message is not None:  # line 8
                core.absorb(obs.message.payload)
            own = core.sample(obs.detector_value, obs.time)  # lines 7, 9-11
            ctx.send_to_all(core.dag)  # line 12
            if core.k == 1:  # line 13
                barrier = own
                cached = {0: None, 1: None}
                last_search_size = -(10**9)
                fresh = []
                scanned = 0
            assert barrier is not None

            # Throttle: the schedule search is the expensive part, so only
            # run it after the DAG has grown enough to plausibly matter.
            if len(core.dag) - last_search_size < search.search_growth:
                continue
            last_search_size = len(core.dag)
            nodes = core.dag.nodes()  # line 14: G_p | u_p, incrementally
            is_ancestor = SampleDAG.is_ancestor
            for s in nodes[scanned:]:
                if is_ancestor(barrier, s) or s.key == barrier.key:
                    fresh.append(s)
            scanned = len(nodes)

            # Lines 15-17: look for deciding schedules from I_0 and I_1.
            # Both configurations search through the same trie: the interned
            # chain structure is shared, only the per-configuration caches
            # (steps, decisions, snapshots) differ.
            if obslib._ENABLED:
                obslib.metrics().inc("extract.search_ticks")
                with obslib.tracer().span(
                    "extract.search_tick",
                    tick=obs.time,
                    pid=ctx.pid,
                    dag=len(core.dag),
                    fresh=len(fresh),
                ):
                    for index, proposals in ((0, proposals0), (1, proposals1)):
                        if cached[index] is None:
                            cached[index] = self._find(
                                proposals, fresh, ctx.pid, barrier
                            )
            else:
                for index, proposals in ((0, proposals0), (1, proposals1)):
                    if cached[index] is None:
                        cached[index] = self._find(
                            proposals, fresh, ctx.pid, barrier
                        )
            sim0, sim1 = cached[0], cached[1]
            if sim0 is None or sim1 is None:
                continue

            # Lines 18-19: output the union of participants, move the barrier.
            quorum = sim0.participants | sim1.participants
            ctx.output(quorum)
            if obslib._ENABLED:
                obslib.metrics().inc("extract.quorums")
                obslib.tracer().event(
                    "extract.quorum",
                    tick=obs.time,
                    pid=ctx.pid,
                    quorum=sorted(quorum),
                )
            self.evidence.append(
                _QuorumEvidence(quorum=quorum, sim0=sim0, sim1=sim1, barrier=barrier)
            )
            barrier = own
            cached = {0: None, 1: None}
            last_search_size = -(10**9)
            fresh = []
            scanned = 0
