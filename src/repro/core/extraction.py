"""T_{D -> Sigma^nu} (Fig. 2): the necessity transformation.

Given any algorithm ``A`` that uses detector ``D`` to solve (binary)
nonuniform consensus, each process runs A_DAG over ``D`` and, from the fresh
part of its DAG (descendants of the barrier ``u_p``), looks for two simulated
schedules — one from the all-0 initial configuration, one from the all-1
configuration — in both of which it decides.  When found, it outputs

    ``participants(S_0) ∪ participants(S_1)``

as its next Sigma^nu quorum and refreshes the barrier (lines 17-19).

* Completeness follows from the freshness barrier: after all crashes, fresh
  samples are all of correct processes (Lemma 5.2).
* Nonuniform intersection follows from the merging argument (Lemma 5.3): two
  disjoint deciding schedules from I_0 and I_1 would merge into one run of
  ``A`` deciding 0 and 1 — and the test suite *performs* that merge with
  Lemma 2.2 whenever it can, as a deep differential check.

The same algorithm transforms any ``D`` that solves *uniform* consensus into
full Sigma (Theorem 5.8); only the checker changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, List, Mapping, Optional, Tuple

from repro.core.dag import DagCore, Sample, SampleDAG
from repro.core.simulation import PathSimulation, find_deciding_schedule
from repro.kernel.automaton import Automaton, Process, ProcessContext


@dataclass
class ExtractionSearch:
    """Tuning knobs for the deciding-schedule search.

    ``search_growth`` throttles how often the (exponential-in-n) subset
    search runs: only after the fresh subgraph gained at least that many new
    samples since the last attempt.  Found schedules stay valid as the DAG
    grows (``Sch`` is monotone — Lemma 4.5/4.11), so each initial
    configuration's schedule is cached until the barrier moves.
    """

    search_growth: int = 12
    max_path_len: int = 2000
    minimize_participants: bool = True
    max_subset_size: Optional[int] = None  # cap candidate quorum size


@dataclass
class _QuorumEvidence:
    """Why a quorum was output: the two deciding simulations."""

    quorum: FrozenSet[int]
    sim0: PathSimulation
    sim1: PathSimulation
    barrier: Sample


class SigmaNuExtractor(Process):
    """One process of ``T_{D -> Sigma^nu}``.

    Parameters
    ----------
    subject:
        The consensus algorithm ``A`` (a pure automaton) that solves
        nonuniform consensus using the ambient detector ``D``.
    values:
        The two proposal values of binary consensus (default ``(0, 1)``).
    search:
        Schedule-search tuning.
    """

    def __init__(
        self,
        subject: Automaton,
        n: int,
        values: Tuple[Any, Any] = (0, 1),
        search: Optional[ExtractionSearch] = None,
    ):
        self.subject = subject
        self.n = n
        self.values = values
        self.search = search if search is not None else ExtractionSearch()
        self.evidence: List[_QuorumEvidence] = []
        self.core: Optional[DagCore] = None

    def initial_output(self) -> Any:
        # Line 2: Sigma^nu-output_p <- Pi.
        return frozenset(range(self.n))

    def program(self, ctx: ProcessContext) -> Generator:
        core = DagCore(ctx.pid, ctx.n)
        self.core = core
        search = self.search
        proposals0 = {p: self.values[0] for p in range(ctx.n)}
        proposals1 = {p: self.values[1] for p in range(ctx.n)}

        barrier: Optional[Sample] = None
        cached: Dict[int, Optional[PathSimulation]] = {0: None, 1: None}
        last_search_size = -(10**9)

        while True:
            obs = yield from ctx.take_step()  # line 6
            if obs.message is not None:  # line 8
                core.absorb(obs.message.payload)
            own = core.sample(obs.detector_value, obs.time)  # lines 7, 9-11
            ctx.send_to_all(core.dag)  # line 12
            if core.k == 1:  # line 13
                barrier = own
                cached = {0: None, 1: None}
                last_search_size = -(10**9)
            assert barrier is not None

            # Throttle: the schedule search is the expensive part, so only
            # run it after the DAG has grown enough to plausibly matter.
            if len(core.dag) - last_search_size < search.search_growth:
                continue
            last_search_size = len(core.dag)
            fresh = core.dag.descendants(barrier)  # line 14

            # Lines 15-17: look for deciding schedules from I_0 and I_1.
            for index, proposals in ((0, proposals0), (1, proposals1)):
                if cached[index] is None:
                    cached[index] = find_deciding_schedule(
                        self.subject,
                        ctx.n,
                        proposals,
                        fresh,
                        target=ctx.pid,
                        max_path_len=search.max_path_len,
                        minimize_participants=search.minimize_participants,
                        max_subset_size=search.max_subset_size,
                    )
            sim0, sim1 = cached[0], cached[1]
            if sim0 is None or sim1 is None:
                continue

            # Lines 18-19: output the union of participants, move the barrier.
            quorum = sim0.participants | sim1.participants
            ctx.output(quorum)
            self.evidence.append(
                _QuorumEvidence(quorum=quorum, sim0=sim0, sim1=sim1, barrier=barrier)
            )
            barrier = own
            cached = {0: None, 1: None}
            last_search_size = -(10**9)
