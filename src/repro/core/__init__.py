"""The paper's contribution: DAGs of samples, simulated schedules, the
necessity transformation ``T_{D -> Sigma^nu}``, the booster
``T_{Sigma^nu -> Sigma^nu+}``, and the consensus algorithm ``A_nuc``.
"""

from repro.core.boosting import ClosedPathMemo, SigmaNuPlusBooster
from repro.core.dag import BalancedChainBuilder, DagCore, Sample, SampleDAG
from repro.core.extraction import ExtractionSearch, SigmaNuExtractor
from repro.core.nuc import AnucProcess
from repro.core.nuc_automaton import AnucAutomaton
from repro.core.sampling import DagBuilder
from repro.core.simtrie import (
    DigestCache,
    IncrementalExtractionEngine,
    SimulationTrie,
    TrieCounters,
    merge_counter_dicts,
)
from repro.core.simulation import (
    PathSimulation,
    canonical_schedule,
    find_deciding_schedule,
)
from repro.core.stack import StackedNucProcess

__all__ = [
    "AnucAutomaton",
    "AnucProcess",
    "BalancedChainBuilder",
    "ClosedPathMemo",
    "DagBuilder",
    "DagCore",
    "DigestCache",
    "ExtractionSearch",
    "IncrementalExtractionEngine",
    "PathSimulation",
    "Sample",
    "SampleDAG",
    "SigmaNuExtractor",
    "SigmaNuPlusBooster",
    "SimulationTrie",
    "StackedNucProcess",
    "TrieCounters",
    "canonical_schedule",
    "find_deciding_schedule",
    "merge_counter_dicts",
]
