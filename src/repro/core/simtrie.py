"""Incremental simulation trie: memoized ``Sch(G, I)`` prefixes.

The extraction search (Fig. 2 lines 14-17) and its cousins re-simulate the
subject algorithm ``A`` along DAG chains over and over: every search tick
rebuilds each candidate subset's balanced chain and replays it from a fresh
:class:`~repro.kernel.runs.PureSystemSimulator`, for both the all-0 and the
all-1 initial configuration.  But the object being recomputed is a *tree of
runs sharing prefixes* — the simulation forest of the CHT-style derivations —
and chains only ever grow as the DAG grows, so almost all of that work is
repeated verbatim.

:class:`SimulationTrie` makes the forest explicit.  Nodes are interned step
prefixes keyed by sample keys ``(pid, k)`` (globally unique and
deterministic, so a key sequence pins down the whole simulation); per
initial configuration each node caches

* the :class:`~repro.kernel.steps.Step` taken to reach it (message receipt
  is deterministic under the oldest-message rule of Lemma 4.10),
* the decision, if any, that the stepping process reached at it, and
* every ``snapshot_stride`` levels, a forked simulator snapshot.

:meth:`SimulationTrie.simulate` then reproduces
:func:`~repro.core.simulation.canonical_schedule` *exactly* — same schedule,
same path truncation, same decisions — while replaying only the suffix past
the longest cached prefix.  Chains that were already simulated in full are
answered with zero simulator work, which is also how failed searches are
pruned: by Sch-monotonicity (Lemmas 4.5/4.11) a chain that did not let the
target decide still does not at any prefix, and the cached decision deltas
witness this directly.

:class:`IncrementalExtractionEngine` adds the subset-level pruning of
``T_{D -> Sigma^nu}``: it tracks, per candidate subset, a signature of the
fresh samples available to it at the last failed attempt and skips the
subset while the signature is unchanged (same samples => same balanced
chain => same failure).  The I_0 and I_1 searches share one trie — the node
structure is common; only the per-configuration caches differ.

Two further reuses of the same machinery live here:

* :class:`PathTrie` — the bare interned prefix tree — also serves the
  closed-path search of ``T_{Sigma^nu -> Sigma^nu+}``
  (:mod:`repro.core.boosting`), caching the ``trusted(g)`` unions along
  cascade chains whose deep prefixes are stable across ticks.
* :class:`DigestCache` — identity-keyed state digests — serves the bounded
  explorer (:func:`repro.analysis.modelcheck.explore`), collapsing the
  digest cost of configurations that share unchanged per-process states.

Counters for all of it (prefix hit-rate, steps simulated vs. replayed for
free, subsets pruned) surface through :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.dag import BalancedChainBuilder, Sample, SampleKey
from repro.kernel.automaton import Automaton
from repro.kernel.runs import PureSystemSimulator
from repro.kernel.steps import Schedule, Step


@dataclass
class TrieCounters:
    """Work accounting for the incremental engine.

    ``steps_simulated`` are genuine simulator transitions; ``steps_replayed``
    are cached steps re-applied from the nearest snapshot (no delivery
    search); ``steps_from_cache`` were served without touching a simulator
    at all.  ``known_failure_hits`` are whole queries answered negatively
    from cached decision deltas; ``subsets_pruned`` candidate subsets were
    skipped before even building a chain.
    """

    queries: int = 0
    prefix_hits: int = 0
    cached_results: int = 0
    known_failure_hits: int = 0
    steps_simulated: int = 0
    steps_replayed: int = 0
    steps_from_cache: int = 0
    subsets_pruned: int = 0
    subsets_tried: int = 0
    snapshots_stored: int = 0
    snapshot_restores: int = 0
    nodes_created: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {k: int(v) for k, v in self.__dict__.items()}

    def add(self, other: Mapping[str, int]) -> None:
        for k, v in other.items():
            if hasattr(self, k):
                setattr(self, k, getattr(self, k) + v)

    @property
    def prefix_hit_rate(self) -> float:
        return self.prefix_hits / self.queries if self.queries else 0.0

    @property
    def free_step_rate(self) -> float:
        """Fraction of all requested steps not simulated from scratch."""
        total = self.steps_simulated + self.steps_replayed + self.steps_from_cache
        if not total:
            return 0.0
        return (self.steps_replayed + self.steps_from_cache) / total


class _Node:
    """One interned prefix.  Per-configuration caches are keyed by the
    small integers handed out by :meth:`SimulationTrie.config_index`."""

    __slots__ = ("children", "steps", "dstep", "snaps", "acc")

    def __init__(self) -> None:
        self.children: Dict[SampleKey, "_Node"] = {}
        self.steps: Dict[int, Step] = {}
        self.dstep: Dict[int, Tuple[int, Any]] = {}
        self.snaps: Dict[int, PureSystemSimulator] = {}
        self.acc: Any = None  # generic accumulator (boosting: trusted union)


class PathTrie:
    """An interned prefix tree over sample keys.

    The bare structure shared by the simulation trie and the boosting
    closed-path memo: both walk chains of :class:`~repro.core.dag.Sample`
    and cache per-node facts that depend only on the prefix.
    """

    __slots__ = ("root", "node_count")

    def __init__(self) -> None:
        self.root = _Node()
        self.node_count = 0

    def child(self, node: _Node, key: SampleKey) -> Tuple[_Node, bool]:
        """The child of ``node`` under ``key``, created if absent."""
        got = node.children.get(key)
        if got is not None:
            return got, False
        made = _Node()
        node.children[key] = made
        self.node_count += 1
        return made, True


class DigestCache:
    """Identity-keyed memo of state digests (``repr`` of snapshots).

    Sound because the kernel never mutates a state object once it has been
    stored in a configuration: transitions receive a fresh copy
    (:meth:`~repro.kernel.automaton.Automaton.copy_state`).  Cached objects
    are pinned so ids cannot be recycled underneath the memo.
    """

    __slots__ = ("_byid", "_pin", "hits", "misses")

    def __init__(self) -> None:
        self._byid: Dict[int, str] = {}
        self._pin: List[Any] = []
        self.hits = 0
        self.misses = 0

    def lookup(self, state: Any, automaton: Automaton) -> str:
        key = id(state)  # repro: noqa RPR104 -- identity memo over pinned states; ids never ordered or persisted
        got = self._byid.get(key)
        if got is not None:
            self.hits += 1
            return got
        value = repr(automaton.snapshot(state))
        self._byid[key] = value
        self._pin.append(state)
        self.misses += 1
        return value

    def __len__(self) -> int:
        return len(self._byid)


class SimulationTrie:
    """Per-(automaton, n) prefix tree of cached simulations.

    One trie serves every initial configuration of the automaton — register
    each with :meth:`config_index`; the structure (nodes, children) is
    shared, the step/decision/snapshot caches are per configuration.

    ``snapshot_stride`` controls how often a forked simulator is stored
    along freshly simulated chains (plus one at every chain's end, the
    likeliest future extension point).  ``snapshot_budget`` caps the total
    number of stored snapshots; past it, caching degrades gracefully to
    steps-only (queries replay from the deepest existing snapshot).
    """

    def __init__(
        self,
        automaton: Automaton,
        n: int,
        snapshot_stride: int = 8,
        snapshot_budget: int = 4096,
    ):
        self.automaton = automaton
        self.n = n
        self.snapshot_stride = max(1, snapshot_stride)
        self.snapshot_budget = snapshot_budget
        self.trie = PathTrie()
        self.counters = TrieCounters()
        self.digests = DigestCache()  # shared with modelcheck.explore
        self._configs: Dict[Tuple[Any, ...], int] = {}
        self._proposals: List[Dict[int, Any]] = []
        self._root_decided: List[Dict[int, Any]] = []

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------

    def config_index(self, proposals: Mapping[int, Any]) -> int:
        """Intern an initial configuration; returns its small index."""
        key = tuple(proposals.get(p) for p in range(self.n))
        got = self._configs.get(key)
        if got is not None:
            return got
        index = len(self._proposals)
        self._configs[key] = index
        self._proposals.append(dict(proposals))
        sim = PureSystemSimulator(self.automaton, self.n, proposals)
        self._root_decided.append(sim.decided_pids())
        return index

    # ------------------------------------------------------------------
    # The trie-backed canonical schedule
    # ------------------------------------------------------------------

    def simulate(
        self,
        proposals: Mapping[int, Any],
        path: Sequence[Sample],
        target: Optional[int] = None,
        stop_on_target_decision: bool = True,
    ):
        """Trie-backed :func:`~repro.core.simulation.canonical_schedule`.

        Returns a :class:`~repro.core.simulation.PathSimulation` equal to
        the from-scratch one for the same arguments (the oracle tests
        compare them field by field); only the work differs.
        """
        from repro.core.simulation import PathSimulation

        cfg = self.config_index(proposals)
        c = self.counters
        c.queries += 1

        decided = dict(self._root_decided[cfg])
        decided_at: Optional[int] = None
        steps: List[Step] = []
        node = self.trie.root
        snap_sim: Optional[PureSystemSimulator] = None
        snap_depth = 0
        i = 0

        # Phase 1: descend the cached prefix — no simulator needed.
        while i < len(path):
            child = node.children.get(path[i].key)
            if child is None or cfg not in child.steps:
                break
            steps.append(child.steps[cfg])
            delta = child.dstep.get(cfg)
            if delta is not None:
                decided[delta[0]] = delta[1]
            node = child
            i += 1
            snap = child.snaps.get(cfg)
            if snap is not None:
                snap_sim, snap_depth = snap, i
            if target is not None and decided_at is None and target in decided:
                decided_at = i
                if stop_on_target_decision:
                    c.cached_results += 1
                    c.steps_from_cache += i
                    return PathSimulation(
                        schedule=Schedule(steps),
                        path=tuple(path[:i]),
                        participants=frozenset(s.pid for s in path[:i]),
                        decisions=decided,
                        target_decided_at=i,
                    )

        if i == len(path):
            # The whole chain was already simulated — served for free.  With
            # a target this is the known-failure fast path (Sch-monotone:
            # no prefix of a non-deciding chain decides either).
            c.cached_results += 1
            c.steps_from_cache += i
            if target is not None and decided_at is None:
                c.known_failure_hits += 1
            return PathSimulation(
                schedule=Schedule(steps),
                path=tuple(path),
                participants=frozenset(s.pid for s in path),
                decisions=decided,
                target_decided_at=decided_at,
            )

        # Phase 2: restore the nearest snapshot and replay cached steps.
        if snap_sim is not None:
            sim = snap_sim.fork()
            c.snapshot_restores += 1
        else:
            sim = PureSystemSimulator(self.automaton, self.n, proposals)
        for j in range(snap_depth, i):
            sim.apply_step(steps[j], time=j)
        c.steps_replayed += i - snap_depth
        c.steps_from_cache += snap_depth
        if i > 0:
            c.prefix_hits += 1

        # Phase 3: simulate the new suffix, growing the trie as we go.
        used: List[Sample] = list(path[:i])
        while i < len(path):
            sample = path[i]
            uid = sim.oldest_pending_uid(sample.pid)
            step = Step(pid=sample.pid, msg_uid=uid, detector_value=sample.d)
            sim.apply_step(step, time=i)
            steps.append(step)
            used.append(sample)
            child, created = self.trie.child(node, sample.key)
            if created:
                c.nodes_created += 1
            child.steps[cfg] = step
            if sample.pid not in decided:
                value = sim.decision(sample.pid)
                if value is not None:
                    decided[sample.pid] = value
                    child.dstep[cfg] = (sample.pid, value)
            node = child
            i += 1
            c.steps_simulated += 1
            if target is not None and decided_at is None and target in decided:
                decided_at = i
                if stop_on_target_decision:
                    break
            if (
                i % self.snapshot_stride == 0
                and cfg not in child.snaps
                and c.snapshots_stored < self.snapshot_budget
            ):
                child.snaps[cfg] = sim.fork()
                c.snapshots_stored += 1

        # Always snapshot an undecided chain's end: chains extend as the DAG
        # grows, so the tip is the likeliest future restore point.  Decided
        # chains end the search (the barrier moves), so skip those.  The
        # simulator is not stepped further, so it is stored without forking.
        if (
            decided_at is None
            and cfg not in node.snaps
            and c.snapshots_stored < self.snapshot_budget
        ):
            node.snaps[cfg] = sim
            c.snapshots_stored += 1

        return PathSimulation(
            schedule=Schedule(steps),
            path=tuple(used),
            participants=frozenset(s.pid for s in used),
            decisions=decided,
            target_decided_at=decided_at,
        )

    def search(
        self,
        proposals: Mapping[int, Any],
        path: Sequence[Sample],
        target: int,
        cursor: Optional["SearchCursor"] = None,
    ):
        """:meth:`simulate` specialised for the deciding-schedule search.

        Returns the exact :class:`~repro.core.simulation.PathSimulation` when
        ``target`` decides along ``path`` and ``None`` when it does not.
        Failures — the overwhelmingly common case while the search waits for
        the DAG to grow — skip materialising the schedule, path tuple and
        participant set entirely; successes defer to :meth:`simulate` (by
        then fully cached, so the exact result costs one cached descent).

        A ``cursor`` (owned by the caller, one per repeatedly-searched
        chain) makes retries O(new suffix): on failure the search stores its
        position — depth, trie node, decisions so far, nearest snapshot —
        and the next call resumes there instead of descending from the root.
        The caller must discard the cursor if the chain changed at or below
        ``cursor.depth`` since the cursor was last written (see
        ``BalancedChainBuilder.stable_since``).
        """
        cfg = self.config_index(proposals)
        c = self.counters
        c.queries += 1
        if cursor is not None and cursor.node is not None:
            i = cursor.depth
            node = cursor.node
            decided = cursor.decided
            snap_sim = cursor.snap_sim
            snap_depth = cursor.snap_depth
            tail = cursor.tail
            if i:
                c.prefix_hits += 1
                c.steps_from_cache += i  # resumed without re-descending
        else:
            i = 0
            node = self.trie.root
            decided = dict(self._root_decided[cfg])
            snap_sim = None
            snap_depth = 0
            tail = []  # cached steps past the deepest snapshot
        if target in decided:
            c.queries -= 1  # the exact rerun re-counts this query
            return self.simulate(proposals, path, target)

        # Phase 1: cached descent, tracking decisions but not steps.
        descended = i
        while i < len(path):
            child = node.children.get(path[i].key)
            if child is None:
                break
            step = child.steps.get(cfg)
            if step is None:
                break
            delta = child.dstep.get(cfg)
            node = child
            i += 1
            if delta is not None:
                decided[delta[0]] = delta[1]
                if delta[0] == target:
                    c.queries -= 1
                    return self.simulate(proposals, path, target)
            snap = child.snaps.get(cfg)
            if snap is not None:
                snap_sim, snap_depth = snap, i
                tail = []
            else:
                tail.append(step)
        if i > descended:
            if descended == 0:
                c.prefix_hits += 1
            c.steps_from_cache += i - descended

        if i == len(path):
            # Fully cached and the target never decided: known failure
            # (Sch-monotone — no prefix of a non-deciding chain decides).
            c.cached_results += 1
            c.known_failure_hits += 1
            self._save_cursor(cursor, i, node, decided, snap_sim, snap_depth, tail)
            return None

        # Phase 2: restore the nearest snapshot, replay the tail.
        if snap_sim is not None:
            sim = snap_sim.fork()
            c.snapshot_restores += 1
        else:
            sim = PureSystemSimulator(self.automaton, self.n, proposals)
        for j, step in enumerate(tail):
            sim.apply_step(step, time=snap_depth + j)
        c.steps_replayed += len(tail)

        # Phase 3: simulate the new suffix, growing the trie.
        while i < len(path):
            sample = path[i]
            uid = sim.oldest_pending_uid(sample.pid)
            step = Step(pid=sample.pid, msg_uid=uid, detector_value=sample.d)
            sim.apply_step(step, time=i)
            child, created = self.trie.child(node, sample.key)
            if created:
                c.nodes_created += 1
            child.steps[cfg] = step
            if sample.pid not in decided:
                value = sim.decision(sample.pid)
                if value is not None:
                    decided[sample.pid] = value
                    child.dstep[cfg] = (sample.pid, value)
            node = child
            i += 1
            c.steps_simulated += 1
            if target in decided:
                # Success: everything up to here is now cached; the exact
                # simulation is a pure descent.
                c.queries -= 1
                return self.simulate(proposals, path, target)
            snap = child.snaps.get(cfg)
            if (
                snap is None
                and i % self.snapshot_stride == 0
                and c.snapshots_stored < self.snapshot_budget
            ):
                snap = child.snaps[cfg] = sim.fork()
                c.snapshots_stored += 1
            if snap is not None:
                snap_sim, snap_depth = snap, i
                tail = []
            else:
                tail.append(step)

        # Failed, undecided chain: keep the tip state (chains extend as the
        # DAG grows, so it is the likeliest future restore point).  The
        # simulator is not used further, so it is stored without forking.
        if cfg not in node.snaps and c.snapshots_stored < self.snapshot_budget:
            node.snaps[cfg] = sim
            c.snapshots_stored += 1
            snap_sim, snap_depth = sim, i
            tail = []
        self._save_cursor(cursor, i, node, decided, snap_sim, snap_depth, tail)
        return None

    @staticmethod
    def _save_cursor(
        cursor: Optional["SearchCursor"],
        depth: int,
        node: _Node,
        decided: Dict[int, Any],
        snap_sim: Optional[PureSystemSimulator],
        snap_depth: int,
        tail: List[Step],
    ) -> None:
        if cursor is None:
            return
        cursor.depth = depth
        cursor.node = node
        cursor.decided = decided
        cursor.snap_sim = snap_sim
        cursor.snap_depth = snap_depth
        cursor.tail = tail


class SearchCursor:
    """Resumable position of a (so far) failed search along one chain.

    Owned by the caller of :meth:`SimulationTrie.search`, one per chain
    being retried as the DAG grows; all fields are written by the search
    itself.  ``decided`` accumulates the decision map along the prefix
    (sound to carry forward because a failed search's prefix never made the
    target decide, and other processes' decisions are irrevocable).
    """

    __slots__ = (
        "depth",
        "node",
        "decided",
        "snap_sim",
        "snap_depth",
        "tail",
        "clock",
    )

    def __init__(self) -> None:
        self.depth = 0
        self.node: Optional[_Node] = None
        self.decided: Optional[Dict[int, Any]] = None
        self.snap_sim: Optional[PureSystemSimulator] = None
        self.snap_depth = 0
        self.tail: List[Step] = []
        #: ``BalancedChainBuilder.clock`` at the last save; validity of the
        #: cursor requires ``stable_since(clock) >= depth`` — no rewind has
        #: touched the chain at or below the cursor since it was written.
        self.clock = 0


class IncrementalExtractionEngine:
    """Incremental deciding-schedule search for ``T_{D -> Sigma^nu}``.

    Wraps one :class:`SimulationTrie` (shared between the I_0 and I_1
    searches) and adds subset-level pruning: per (configuration, target,
    subset) it remembers a *signature* of the fresh samples the subset had
    at its last failed attempt — the per-member sample counts.  Fresh
    subgraphs only grow under a fixed barrier, so an unchanged signature
    means the identical filtered sample set, hence the identical balanced
    chain, hence the identical failure; the subset is skipped before any
    chain is built.  Moving the freshness barrier (Fig. 2 lines 17-19)
    resets every signature, so no schedule is ever justified by pre-barrier
    samples — the trie itself is barrier-agnostic (keyed by full chains),
    so it needs no invalidation.
    """

    def __init__(
        self,
        automaton: Automaton,
        n: int,
        snapshot_stride: int = 8,
        snapshot_budget: int = 4096,
    ):
        self.trie = SimulationTrie(
            automaton, n, snapshot_stride=snapshot_stride,
            snapshot_budget=snapshot_budget,
        )
        self._barrier_key: Optional[SampleKey] = None
        # (config, target, subset) -> total fresh samples at last failure.
        self._failed: Dict[Tuple[int, int, FrozenSet[int]], int] = {}
        # Per-subset incremental chain builders.  Chains are independent of
        # the initial configuration, so I_0 and I_1 share them; a subset's
        # fresh samples only grow under a fixed barrier (the builder's
        # precondition), so the cache is cleared whenever the barrier moves.
        self._chains: Dict[FrozenSet[int], BalancedChainBuilder] = {}
        # Per-(config, target, subset) search cursors; invalidated when the
        # subset's chain changes below the cursor and on barrier moves.
        self._cursors: Dict[
            Tuple[int, int, FrozenSet[int]], SearchCursor
        ] = {}

    @property
    def counters(self) -> TrieCounters:
        return self.trie.counters

    def _chain_for(
        self,
        subset: FrozenSet[int],
        by_pid: Mapping[int, List[Sample]],
    ) -> Sequence[Sample]:
        """The subset's balanced chain, maintained incrementally."""
        builder = self._chains.get(subset)
        if builder is None:
            builder = self._chains[subset] = BalancedChainBuilder()
        builder.extend_grouped({pid: by_pid[pid] for pid in sorted(subset)})
        return builder.chain()

    def find_deciding_schedule(
        self,
        proposals: Mapping[int, Any],
        fresh_nodes: Sequence[Sample],
        target: int,
        barrier: Optional[Sample] = None,
        max_path_len: int = 2000,
        minimize_participants: bool = True,
        max_subset_size: Optional[int] = None,
    ):
        """Incremental :func:`~repro.core.simulation.find_deciding_schedule`.

        Equivalent to the from-scratch search (same subset order, same
        result, including the returned simulation object's fields); the
        signature and trie caches only skip work that is provably repeated.
        """
        from repro.core.simulation import _capped_subset, _subsets_containing

        barrier_key = barrier.key if barrier is not None else None
        if barrier_key != self._barrier_key:
            self._barrier_key = barrier_key
            self._failed.clear()
            self._chains.clear()
            self._cursors.clear()

        by_pid: Dict[int, List[Sample]] = {}
        for s in fresh_nodes:
            by_pid.setdefault(s.pid, []).append(s)
        for bucket in by_pid.values():
            bucket.sort(key=lambda s: s.k)
        counts = {pid: len(bucket) for pid, bucket in by_pid.items()}
        present = sorted(counts)
        if target not in present:
            return None
        cfg = self.trie.config_index(proposals)
        c = self.counters

        if not minimize_participants:
            subset = _capped_subset(present, target, counts, max_subset_size)
            chain = self._chain_for(subset, by_pid)
            if len(chain) > max_path_len:
                chain = chain[:max_path_len]
            return self.trie.search(proposals, chain, target)

        for subset in _subsets_containing(present, target, max_subset_size):
            sig_key = (cfg, target, subset)
            # Per-member fresh counts are nondecreasing under a fixed
            # barrier, so their sum is unchanged iff every one is — iff the
            # subset's filtered sample set (hence its balanced chain, hence
            # the attempt's outcome) is identical to the failed attempt's.
            signature = sum(counts[p] for p in subset)
            if self._failed.get(sig_key) == signature:
                c.subsets_pruned += 1
                continue
            c.subsets_tried += 1
            builder = self._chains.get(subset)
            if builder is None:
                builder = self._chains[subset] = BalancedChainBuilder()
            builder.extend_grouped({pid: by_pid[pid] for pid in sorted(subset)})
            chain = builder.chain()
            # The chain may have skipped every target sample (all landed
            # incomparable); without a target step it cannot decide.
            if len(chain) > max_path_len:
                chain = chain[:max_path_len]
                has_target = any(s.pid == target for s in chain)
            else:
                has_target = builder.pid_count(target) > 0
            if not has_target:
                self._failed[sig_key] = signature
                continue
            cursor = self._cursors.get(sig_key)
            if (
                cursor is not None
                and builder.stable_since(cursor.clock) < cursor.depth
            ):
                cursor = None  # the chain changed at or below the cursor
            if cursor is None:
                cursor = self._cursors[sig_key] = SearchCursor()
            result = self.trie.search(proposals, chain, target, cursor=cursor)
            if result is not None:
                return result
            cursor.clock = builder.clock
            self._failed[sig_key] = signature
        return None


def merge_counter_dicts(
    dicts: Sequence[Mapping[str, int]]
) -> Optional[Dict[str, int]]:
    """Sum per-process counter dicts; ``None`` when there are none."""
    merged: Dict[str, int] = {}
    found = False
    for d in dicts:
        if not d:
            continue
        found = True
        for k, v in d.items():
            merged[k] = merged.get(k, 0) + int(v)
    return merged if found else None
