"""Simulated schedules of an algorithm A from a DAG of samples (Section 4.2).

A path ``g = (p1,d1,k1), (p2,d2,k2), ...`` of a DAG of D-samples determines
schedules of ``A``: process ``p1`` steps first seeing ``d1``, then ``p2``
seeing ``d2``, and so on, with message deliveries free.  ``Sch(G, I)`` is
the set of schedules compatible with some path of ``G`` and applicable to
initial configuration ``I``.

Enumerating ``Sch`` is exponential; the proofs only ever need *one* deciding
schedule, and Lemma 4.10 exhibits a canonical one: follow the path and
deliver, at each step, the **oldest** pending message to the stepping process
(or lambda).  :func:`canonical_schedule` implements exactly that rule.

:func:`find_deciding_schedule` searches for a deciding schedule with few
participants by restricting the path to samples of candidate process subsets
(smallest first) — recovering the interesting, small quorums that
``T_{D -> Sigma^nu}`` extracts when the subject algorithm can decide inside
a small quorum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.dag import (
    Sample,
    SampleDAG,
    balanced_chain,
    chain_over_processes,
    greedy_chain,
)
from repro.kernel.automaton import Automaton
from repro.kernel.runs import PureSystemSimulator
from repro.kernel.steps import Schedule, Step


@dataclass
class PathSimulation:
    """Result of simulating A along one DAG path."""

    schedule: Schedule
    path: Tuple[Sample, ...]
    participants: FrozenSet[int]
    decisions: Dict[int, Any]
    target_decided_at: Optional[int]  # schedule length when target decided

    @property
    def target_decided(self) -> bool:
        return self.target_decided_at is not None


def canonical_schedule(
    automaton: Automaton,
    n: int,
    proposals: Mapping[int, Any],
    path: Sequence[Sample],
    target: Optional[int] = None,
    stop_on_target_decision: bool = True,
) -> PathSimulation:
    """Simulate ``A`` along ``path`` with oldest-message delivery.

    This constructs the schedule of Lemma 4.10: compatible with the path,
    applicable to the initial configuration given by ``proposals``, receiving
    at each step the oldest pending message to the stepping process (lambda
    when none).  When ``target`` is given and decides, simulation can stop
    early and the deciding prefix is reported.
    """
    sim = PureSystemSimulator(automaton, n, proposals)
    steps: List[Step] = []
    used_path: List[Sample] = []
    target_decided_at: Optional[int] = None
    for sample in path:
        uid = sim.oldest_pending_uid(sample.pid)
        step = Step(pid=sample.pid, msg_uid=uid, detector_value=sample.d)
        sim.apply_step(step, time=len(steps))
        steps.append(step)
        used_path.append(sample)
        if (
            target is not None
            and target_decided_at is None
            and sim.decision(target) is not None
        ):
            target_decided_at = len(steps)
            if stop_on_target_decision:
                break
    schedule = Schedule(steps)
    return PathSimulation(
        schedule=schedule,
        path=tuple(used_path),
        participants=frozenset(s.pid for s in used_path),
        decisions=sim.decided_pids(),
        target_decided_at=target_decided_at,
    )


def _subsets_containing(
    pool: Sequence[int], anchor: int, max_size: Optional[int] = None
) -> Iterable[FrozenSet[int]]:
    """Subsets of ``pool`` containing ``anchor``, smallest first.

    Every yielded subset has at most ``max_size`` members (the anchor
    included); a cap below 1 cannot admit even the singleton ``{anchor}``
    and is rejected rather than silently yielding nothing.
    """
    if max_size is not None and max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    rest = [p for p in pool if p != anchor]
    limit = len(rest) if max_size is None else min(len(rest), max_size - 1)
    for size in range(0, limit + 1):
        for combo in itertools.combinations(rest, size):
            yield frozenset((anchor,) + combo)


def _capped_subset(
    present: Sequence[int],
    target: int,
    counts: Mapping[int, int],
    max_subset_size: Optional[int],
) -> FrozenSet[int]:
    """The process set for a single (non-minimizing) attempt.

    Respects ``max_subset_size`` — previously the non-minimizing mode
    ignored the cap entirely — by keeping ``target`` plus the best-sampled
    other processes (deterministically: most fresh samples first, then
    lowest pid).
    """
    if max_subset_size is not None and max_subset_size < 1:
        raise ValueError(f"max_subset_size must be >= 1, got {max_subset_size}")
    if max_subset_size is None or len(present) <= max_subset_size:
        return frozenset(present)
    rest = sorted(
        (p for p in present if p != target),
        key=lambda p: (-counts.get(p, 0), p),
    )
    return frozenset([target] + rest[: max_subset_size - 1])


def find_deciding_schedule(
    automaton: Automaton,
    n: int,
    proposals: Mapping[int, Any],
    fresh_nodes: Sequence[Sample],
    target: int,
    max_path_len: int = 2000,
    minimize_participants: bool = True,
    max_subset_size: Optional[int] = None,
    trie: Optional["SimulationTrie"] = None,
) -> Optional[PathSimulation]:
    """Find a schedule in ``Sch(G|u, I)`` in which ``target`` decides.

    ``fresh_nodes`` are the descendants of the freshness barrier ``u`` (in
    topological order or not; they are re-sorted).  When
    ``minimize_participants`` is set, candidate process subsets containing
    ``target`` are tried smallest-first so the returned schedule (and hence
    the extracted quorum) is small; otherwise a single attempt over the
    (``max_subset_size``-capped) processes present is made.

    When a :class:`~repro.core.simtrie.SimulationTrie` is supplied, chains
    are simulated through it — identical results, with prefixes past the
    longest cached one replayed for free.  For the fully incremental search
    (delta-based subset pruning across attempts) use
    :class:`~repro.core.simtrie.IncrementalExtractionEngine` instead.

    Returns ``None`` when no deciding schedule exists over these samples —
    the caller waits for the DAG to grow (Lemma 5.1 guarantees eventual
    success for correct processes).
    """
    counts: Dict[int, int] = {}
    for s in fresh_nodes:
        counts[s.pid] = counts.get(s.pid, 0) + 1
    present = sorted(counts)
    if target not in present:
        return None

    def simulate(chain: Sequence[Sample]) -> PathSimulation:
        if trie is not None:
            return trie.simulate(proposals, chain, target)
        return canonical_schedule(automaton, n, proposals, chain, target)

    if not minimize_participants:
        subset = _capped_subset(present, target, counts, max_subset_size)
        chain = balanced_chain(
            [s for s in fresh_nodes if s.pid in subset]
        )[:max_path_len]
        result = simulate(chain)
        return result if result.target_decided else None

    for subset in _subsets_containing(present, target, max_subset_size):
        filtered = [s for s in fresh_nodes if s.pid in subset]
        # Cheap precheck: without a fresh sample of the target the chain
        # cannot contain a target step, so skip before building the chain.
        if not any(s.pid == target for s in filtered):
            continue
        chain = balanced_chain(filtered)[:max_path_len]
        if not any(s.pid == target for s in chain):
            continue
        result = simulate(chain)
        if result.target_decided:
            return result
    return None
