"""A_nuc (Figs. 4-5): nonuniform consensus from (Omega, Sigma^nu+).

The algorithm is the Mostéfaoui-Raynal three-phase round structure with
Sigma^nu+ quorums in place of majorities, hardened against *contamination*
(Section 6.3) by three mechanisms:

* **Quorum histories** ``H_p[r]`` — every process accumulates all quorums it
  knows other processes have seen, both from its own Sigma^nu+ samples
  (``get_quorum``, line 49) and from the histories piggybacked on LEAD and
  PROP messages and on SAW notifications.

* **Distrust** (lines 51-53) — ``p`` considers ``q'`` *faulty* if some quorum
  of ``q'`` misses some quorum of ``p``'s own; ``p`` *distrusts* ``q`` if
  ``q``'s quorums miss the quorums of anyone ``p`` does not consider faulty.
  A process never adopts a leader estimate from, nor decides through, a
  distrusted process.

* **Quorum awareness** (SAW/ACK, lines 31-42) — before deciding through
  quorum ``Q`` in round ``k``, ``p`` must know that every member of ``Q``
  inserted ``Q`` into its history in a round ``< k`` (``seen_p[Q] < k_p``),
  which guarantees every correct process learns ``{Q ∈ H[p]}`` with the
  round-``k`` proposals and can later distrust any process whose quorums
  missed ``Q``.

Detector value per step: the pair ``(leader, quorum)`` of
``(Omega, Sigma^nu+)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.kernel.automaton import DeliveredMessage, Process, ProcessContext

UNKNOWN = "?"

LEAD = "LEAD"
REP = "REP"
PROP = "PROP"
SAW = "SAW"
ACK = "ACK"

Quorum = FrozenSet[int]
QuorumHistory = Dict[int, Set[Quorum]]


def snapshot_history(history: QuorumHistory) -> Dict[int, FrozenSet[Quorum]]:
    """An immutable copy of a quorum history, safe to put in a message."""
    return {r: frozenset(quorums) for r, quorums in history.items() if quorums}


def distrusts(history: QuorumHistory, pid: int, q: int, n: int) -> bool:
    """Fig. 5 lines 51-53.

    ``F_p``: processes with a quorum missing one of ``p``'s own quorums.
    ``p`` distrusts ``q`` iff some process ``r`` outside ``F_p`` has a quorum
    disjoint from one of ``q``'s quorums.
    """
    mine = history.get(pid, set())
    considered_faulty = {
        q2
        for q2 in range(n)
        if any(not (quorum & own) for quorum in history.get(q2, ()) for own in mine)
    }
    q_quorums = history.get(q, set())
    for r in range(n):
        if r in considered_faulty:
            continue
        for r_quorum in history.get(r, ()):
            for q_quorum in q_quorums:
                if not (q_quorum & r_quorum):
                    return True
    return False


def considers_faulty(history: QuorumHistory, pid: int) -> FrozenSet[int]:
    """The set ``F_p`` (line 52), exposed for analysis and tests."""
    mine = history.get(pid, set())
    return frozenset(
        q2
        for q2 in history
        if any(not (quorum & own) for quorum in history.get(q2, ()) for own in mine)
    )


@dataclass
class AnucTrace:
    """Diagnostics exposed by a process for tests and experiments."""

    rounds_started: int = 0
    quorums_used: List[Tuple[int, Quorum]] = field(default_factory=list)
    distrust_events: List[Tuple[int, int]] = field(default_factory=list)
    decided_round: Optional[int] = None


class AnucProcess(Process):
    """One process of A_nuc.  ``proposal`` is this process's input value.

    Ablation switches (for the EXP-5 ablation study; both default on):

    * ``enable_distrust=False`` removes the distrust checks of lines 18 and
      28 — estimates are adopted unconditionally and any quorum is accepted
      in phase 3.  The result is essentially the naive Sigma^nu algorithm
      and falls to the Section 6.3 contamination scenario.
    * ``enable_quorum_awareness=False`` removes the ``seen[Q] < k`` decide
      gate of line 30 (decisions no longer wait for the SAW/ACK round
      trip).  Safe on benign schedules but forfeits the quorum-awareness
      property Lemma 6.24 needs.
    """

    def __init__(
        self,
        proposal: Any,
        enable_distrust: bool = True,
        enable_quorum_awareness: bool = True,
    ):
        self.proposal = proposal
        self.enable_distrust = enable_distrust
        self.enable_quorum_awareness = enable_quorum_awareness
        self.trace = AnucTrace()
        self.history: QuorumHistory = {}

    def program(self, ctx: ProcessContext) -> Generator:
        n = ctx.n
        pid = ctx.pid
        trace = self.trace

        # --- initialize (Fig. 4 lines 1-11) ----------------------------
        state = _Vars(x=self.proposal, k=0)
        history: QuorumHistory = {q: set() for q in range(n)}
        self.history = history
        sent: Dict[Quorum, bool] = {}
        acks: Dict[Quorum, Set[int]] = {}
        round_no: Dict[Quorum, int] = {}
        seen: Dict[Quorum, int] = {}  # absent key = infinity

        # --- upon-receipt handlers (lines 35-42, run within any step) --
        def handler(message: DeliveredMessage) -> bool:
            tag = message.payload[0]
            if tag == SAW:
                _, q, quorum = message.payload
                history[q].add(quorum)  # line 36
                ctx.send(message.sender, (ACK, pid, quorum, state.k))  # line 37
                return True
            if tag == ACK:
                _, q, quorum, k = message.payload
                acks.setdefault(quorum, set()).add(q)  # line 40
                round_no[quorum] = max(round_no.get(quorum, 0), k)  # line 41
                if acks[quorum] == set(quorum):  # line 42
                    seen[quorum] = round_no[quorum]
                return True
            return False

        ctx.add_handler(handler)

        # --- helpers ----------------------------------------------------
        def import_history(incoming: Dict[int, FrozenSet[Quorum]]) -> None:
            for r, quorums in incoming.items():  # lines 44-46
                history[r] |= quorums

        def get_quorum() -> Quorum:
            _leader, quorum = ctx.detector_value  # line 48
            quorum = frozenset(quorum)
            history[pid].add(quorum)  # line 49
            return quorum

        def messages(tag: str, rnd: int) -> Dict[int, DeliveredMessage]:
            found: Dict[int, DeliveredMessage] = {}
            for m in ctx.log:
                if m.payload[0] == tag and m.payload[1] == rnd:
                    found.setdefault(m.sender, m)
            return found

        # --- main loop (lines 13-33) -------------------------------------
        while True:
            state.k += 1  # line 14
            trace.rounds_started = state.k
            ctx.send_to_all((LEAD, state.k, state.x, snapshot_history(history)))

            # Phase 1 (lines 16-18): wait for the current leader's message.
            while True:
                yield from ctx.take_step()
                leader, _ = ctx.detector_value
                lead_msg = messages(LEAD, state.k).get(leader)
                if lead_msg is not None:
                    break
            import_history(lead_msg.payload[3])  # line 17
            if not self.enable_distrust or not distrusts(
                history, pid, leader, n
            ):  # line 18
                state.x = lead_msg.payload[2]
            else:
                trace.distrust_events.append((state.k, leader))

            # Phase 2 (lines 19-24): collect reports from a quorum.
            ctx.send_to_all((REP, state.k, state.x))
            while True:
                yield from ctx.take_step()
                quorum = get_quorum()
                reports = messages(REP, state.k)
                if quorum and quorum <= set(reports):
                    break
            values = {reports[q].payload[2] for q in quorum}
            if len(values) == 1:
                (proposal,) = values
            else:
                proposal = UNKNOWN
            ctx.send_to_all((PROP, state.k, proposal, snapshot_history(history)))

            # Phase 3 (lines 25-28): collect proposals from a quorum none of
            # whose members is distrusted.
            while True:
                while True:
                    yield from ctx.take_step()
                    quorum = get_quorum()
                    proposals = messages(PROP, state.k)
                    if quorum and quorum <= set(proposals):
                        break
                for q in quorum:  # line 27
                    import_history(proposals[q].payload[3])
                if not self.enable_distrust:
                    break
                bad = [q for q in quorum if distrusts(history, pid, q, n)]
                if not bad:
                    break
                for q in bad:
                    trace.distrust_events.append((state.k, q))
            trace.quorums_used.append((state.k, quorum))

            # Lines 29-30: adopt, then maybe decide.
            quorum_values = {q: proposals[q].payload[2] for q in quorum}
            non_unknown = sorted(
                (q, v) for q, v in quorum_values.items() if v != UNKNOWN
            )
            if non_unknown:
                state.x = non_unknown[0][1]
            unanimous = (
                len({v for v in quorum_values.values()}) == 1
                and next(iter(quorum_values.values())) != UNKNOWN
            )
            aware = (
                not self.enable_quorum_awareness
                or seen.get(quorum, _INF) < state.k
            )
            if unanimous and aware and ctx.decision is None:
                # Decisions are irrevocable; once decided, the process keeps
                # participating but never re-enters a deciding state.
                trace.decided_round = state.k
                ctx.decide(state.x)

            # Lines 31-33: announce first use of this quorum.
            if not sent.get(quorum):
                ctx.send_each(sorted(quorum), (SAW, pid, quorum))
                sent[quorum] = True


_INF = float("inf")


@dataclass
class _Vars:
    """Mutable cell for variables shared with the upon-receipt handlers."""

    x: Any
    k: int
