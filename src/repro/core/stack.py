"""Theorem 6.28: solving nonuniform consensus with (Omega, Sigma^nu).

The composition runs, at every process, the booster
``T_{Sigma^nu -> Sigma^nu+}`` *concurrently* with ``A_nuc``; A_nuc reads its
Sigma^nu+ module not from a real detector but from the booster's emulated
``output_p`` variable, exactly as the theorem's proof prescribes.

:class:`StackedNucProcess` realizes the concurrency by multiplexing the two
sub-programs inside one model process: each step's observation is split —
the booster sees the Sigma^nu component of the ambient ``(Omega, Sigma^nu)``
detector, A_nuc sees ``(Omega, booster's current output)`` — and each
sub-program's messages are tagged so they reach the right peer sub-program.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.core.boosting import SigmaNuPlusBooster
from repro.core.nuc import AnucProcess
from repro.kernel.automaton import (
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
)

_BOOST = "B"
_NUC = "C"


class StackedNucProcess(Process):
    """One process of the full (Omega, Sigma^nu) nonuniform consensus stack."""

    def __init__(self, proposal: Any, n: int, check_growth: int = 1):
        self.proposal = proposal
        self.n = n
        self.booster = SigmaNuPlusBooster(n, check_growth=check_growth)
        self.nuc = AnucProcess(proposal)

    def initial_output(self) -> Any:
        # Expose the booster's emulated Sigma^nu+ output as this process's
        # output, so runs of the stack also validate Theorem 6.7's claim.
        return self.booster.initial_output()

    def program(self, ctx: ProcessContext) -> Generator:
        boost_ctx = ProcessContext(ctx.pid, ctx.n)
        nuc_ctx = ProcessContext(ctx.pid, ctx.n)
        boost_rt = CoroutineRuntime(self.booster, boost_ctx)
        nuc_rt = CoroutineRuntime(self.nuc, nuc_ctx)
        current_quorum = self.booster.initial_output()
        outputs_seen = 0

        while True:
            obs = yield from ctx.take_step()
            omega_value, sigma_nu_value = obs.detector_value

            boost_msg: Optional[DeliveredMessage] = None
            nuc_msg: Optional[DeliveredMessage] = None
            if obs.message is not None:
                channel, payload = obs.message.payload
                wrapped = DeliveredMessage(obs.message.sender, payload)
                if channel == _BOOST:
                    boost_msg = wrapped
                else:
                    nuc_msg = wrapped

            # The booster sub-step runs first so A_nuc reads the freshest
            # emulated quorum within the same step.
            boost_sends = boost_rt.step(
                Observation(
                    message=boost_msg,
                    detector_value=sigma_nu_value,
                    time=obs.time,
                )
            )
            if len(boost_ctx.outputs) > outputs_seen:
                outputs_seen = len(boost_ctx.outputs)
                current_quorum = boost_ctx.outputs[-1][1]
                ctx.output(current_quorum)

            nuc_sends = nuc_rt.step(
                Observation(
                    message=nuc_msg,
                    detector_value=(omega_value, current_quorum),
                    time=obs.time,
                )
            )
            if nuc_ctx.decision is not None and ctx.decision is None:
                ctx.decide(nuc_ctx.decision)

            for dest, payload in boost_sends:
                ctx.send(dest, (_BOOST, payload))
            for dest, payload in nuc_sends:
                ctx.send(dest, (_NUC, payload))
