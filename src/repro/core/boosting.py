"""T_{Sigma^nu -> Sigma^nu+} (Fig. 3): boosting Sigma^nu to Sigma^nu+.

Each process runs A_DAG over Sigma^nu and looks, in the fresh part of its
DAG (descendants of the barrier ``u_p``), for a path ``g`` with

    ``trusted(g) ⊆ participants(g)``  and  ``p ∈ participants(g)``,

where ``participants(g)`` are the processes whose samples lie on ``g`` and
``trusted(g)`` is the union of the Sigma^nu quorums carried by those samples
(Fig. 3 lines 15-19).  When found it outputs ``participants(g)`` and moves
the freshness barrier.

Finding such a path needs no enumeration.  Because the DAG is transitively
closed and every node stores its ancestry *frontier* (the newest sample of
each process below it — see :mod:`repro.core.dag`), a chain containing one
recent sample of each process in a candidate set ``S`` can be built by a
**frontier cascade**: start from ``p``'s newest fresh sample, then repeatedly
descend to the newest sample of a still-missing process recorded in the
current node's frontier.  Consecutive picks are ancestors by construction,
so the result is a genuine DAG path.  The candidate set starts at ``{p}``
and is widened by the quorums the chain trusts until closure — mirroring how
Lemma 6.1's proof finds its path (a fresh segment containing every correct
process, whose quorums have stabilized inside ``correct(F)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, List, Optional, Sequence, Tuple

from repro.core.dag import DagCore, Sample, SampleDAG
from repro.core.simtrie import PathTrie
from repro.kernel.automaton import Process, ProcessContext
# Aliased: ``obs`` is the observation local inside program() below.
from repro import obs as obslib


def trusted(path: Sequence[Sample]) -> FrozenSet[int]:
    """``trusted(g)``: union of the quorums in the samples of ``g``."""
    result: set = set()
    for sample in path:
        result |= set(sample.d)
    return frozenset(result)


class ClosedPathMemo:
    """Memoized ``trusted(g)`` along interned cascade chains.

    Reuses the simulation trie's bare prefix tree
    (:class:`~repro.core.simtrie.PathTrie`): chains are interned **top
    first** — cascades for successive candidate sets all end at the same
    newest sample and often share their upper segment — and each trie node
    caches the union of quorums along its prefix in ``node.acc``.  Sample
    keys ``(pid, k)`` determine the sample (hence its quorum) within one
    process's execution, so the cached union depends only on the key
    prefix and the memo never changes what ``trusted`` returns.
    """

    __slots__ = ("trie", "hits", "misses")

    def __init__(self) -> None:
        self.trie = PathTrie()
        self.hits = 0
        self.misses = 0

    def trusted(self, path: Sequence[Sample]) -> FrozenSet[int]:
        node = self.trie.root
        acc: FrozenSet[int] = frozenset()
        for sample in reversed(path):
            node, _ = self.trie.child(node, sample.key)
            if node.acc is None:
                node.acc = acc | frozenset(sample.d)
                self.misses += 1
            else:
                self.hits += 1
            acc = node.acc
        return acc

    def counters(self) -> Dict[str, int]:
        return {
            "trusted_hits": self.hits,
            "trusted_misses": self.misses,
            "nodes_created": self.trie.node_count,
        }


def path_participants(path: Sequence[Sample]) -> FrozenSet[int]:
    """``participants(g)``: processes with a sample on ``g``."""
    return frozenset(sample.pid for sample in path)


def _is_fresh(node: Sample, barrier: Sample) -> bool:
    """Whether ``node`` lies in ``G | barrier``."""
    return node.key == barrier.key or SampleDAG.is_ancestor(barrier, node)


def frontier_cascade(
    dag: SampleDAG,
    top: Sample,
    members: FrozenSet[int],
    barrier: Sample,
) -> Optional[List[Sample]]:
    """A fresh chain ending at ``top`` with one sample of each of ``members``.

    Walks downward: from the current node, the newest known sample of each
    still-missing process is an ancestor (frontier definition); descend to
    the deepest of those and repeat.  Fails (``None``) when some member has
    no sample, or the cascade would fall below the freshness barrier.
    """
    if not _is_fresh(top, barrier):
        return None
    chain = [top]
    missing = set(members) - {top.pid}
    cursor = top
    while missing:
        picks: List[Sample] = []
        for q in sorted(missing):
            k = cursor.frontier[q]
            if k == 0:
                return None
            node = dag.get((q, k))
            if node is None or not _is_fresh(node, barrier):
                return None
            picks.append(node)
        nxt = max(picks, key=lambda s: (s.depth, s.pid))
        chain.append(nxt)
        missing.discard(nxt.pid)
        cursor = nxt
    chain.reverse()
    return chain


def find_closed_path(
    dag: SampleDAG,
    pid: int,
    barrier: Sample,
    memo: Optional[ClosedPathMemo] = None,
) -> Optional[List[Sample]]:
    """A fresh path ``g`` with ``trusted(g) ⊆ participants(g) ∋ pid``.

    Closure search: starting from ``S = {pid}``, build the cascade chain for
    ``S`` and widen ``S`` by the quorums it trusts until the chain is closed
    or the candidate set stops growing (wait for more samples then).  A
    ``memo`` serves the trusted-union of already-interned chain prefixes
    from cache; results are identical with or without it.
    """
    if not obslib._ENABLED:
        return _find_closed_path(dag, pid, barrier, memo)
    reg = obslib.metrics()
    reg.inc("boost.path_searches")
    with obslib.tracer().span("boost.path_search", pid=pid) as span:
        chain = _find_closed_path(dag, pid, barrier, memo, reg=reg)
        span.set(found=chain is not None)
        return chain


def _find_closed_path(
    dag: SampleDAG,
    pid: int,
    barrier: Sample,
    memo: Optional[ClosedPathMemo] = None,
    reg: Optional[Any] = None,
) -> Optional[List[Sample]]:
    top = dag.latest_sample(pid)
    if top is None:
        return None
    candidate: FrozenSet[int] = frozenset([pid])
    for _ in range(dag.n + 1):  # closure adds >= 1 process per iteration
        if reg is not None:
            reg.inc("boost.closure_rounds")
        chain = frontier_cascade(dag, top, candidate, barrier)
        if chain is None:
            return None
        needs = memo.trusted(chain) if memo is not None else trusted(chain)
        parts = path_participants(chain)
        if needs <= parts:
            return chain
        widened = candidate | needs
        if widened == candidate:
            return None
        candidate = widened
    return None


@dataclass
class _BoostEvidence:
    """Why a quorum was output: the closed path found."""

    quorum: FrozenSet[int]
    path: Tuple[Sample, ...]
    barrier: Sample


class SigmaNuPlusBooster(Process):
    """One process of ``T_{Sigma^nu -> Sigma^nu+}``.

    The ambient detector is Sigma^nu (its values must be iterables of
    process ids).  The emulated Sigma^nu+ output starts at Pi (line 2).
    ``check_growth``: run the path search only after the DAG gained at least
    this many nodes since the last attempt (1 = every step, as in Fig. 3).
    """

    def __init__(self, n: int, check_growth: int = 1):
        self.n = n
        self.check_growth = check_growth
        self.evidence: List[_BoostEvidence] = []
        self.core: Optional[DagCore] = None
        self.memo = ClosedPathMemo()

    def initial_output(self) -> Any:
        return frozenset(range(self.n))

    def search_counters(self) -> Dict[str, int]:
        """The closed-path memo's work counters."""
        return self.memo.counters()

    def program(self, ctx: ProcessContext) -> Generator:
        core = DagCore(ctx.pid, ctx.n)
        self.core = core
        barrier: Optional[Sample] = None
        last_size = -(10**9)

        while True:
            obs = yield from ctx.take_step()  # line 6
            if obs.message is not None:  # line 8
                core.absorb(obs.message.payload)
            own = core.sample(frozenset(obs.detector_value), obs.time)  # lines 7, 9-11
            ctx.send_to_all(core.dag)  # line 12
            if core.k == 1:  # line 13
                barrier = own
                last_size = -(10**9)
            assert barrier is not None

            if len(core.dag) - last_size < self.check_growth:
                continue
            last_size = len(core.dag)

            path = find_closed_path(
                core.dag, ctx.pid, barrier, memo=self.memo
            )  # lines 14-15
            if path is None:
                continue
            quorum = path_participants(path)  # line 16
            ctx.output(quorum)
            if obslib._ENABLED:
                obslib.metrics().inc("boost.quorums")
                obslib.tracer().event(
                    "boost.quorum",
                    tick=obs.time,
                    pid=ctx.pid,
                    quorum=sorted(quorum),
                )
            self.evidence.append(
                _BoostEvidence(quorum=quorum, path=tuple(path), barrier=barrier)
            )
            barrier = own  # line 17
            last_size = -(10**9)
