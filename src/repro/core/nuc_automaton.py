"""A_nuc as a pure automaton, step-equivalent to the coroutine version.

:mod:`repro.core.nuc` transcribes Figs. 4-5 as a generator coroutine — the
readable rendition.  This module is the same algorithm as an explicit
state machine, built for the places that need *replayable* processes: the
necessity construction simulating A_nuc along DAG paths, run merging, and
bounded model checking.  (The coroutine can also be replayed through
:class:`~repro.kernel.automaton.ReplayAutomaton`, at O(k) cost per step;
this port is O(1) per step.)

The port is **step-equivalent** by construction, and
``tests/core/test_nuc_equivalence.py`` enforces it: fed the same
observation sequence, coroutine and automaton emit identical message
sequences and identical decisions at every step.  The correspondence rests
on the coroutine's shape — every wait iteration is exactly one model step,
at most one wait-condition check happens per step, and all the logic
between a successful check and the next ``take_step`` (imports, adoption,
decision, SAW sends, the next round's LEAD broadcast) executes within the
successful step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.nuc import (
    ACK,
    LEAD,
    PROP,
    REP,
    SAW,
    UNKNOWN,
    Quorum,
    distrusts,
    snapshot_history,
)
from repro.kernel.automaton import Automaton, DeliveredMessage, TransitionOutcome

_PHASE_LEAD = "lead"
_PHASE_REP = "rep"
_PHASE_PROP = "prop"


@dataclass
class _NucState:
    pid: int
    n: int
    x: Any
    k: int = 0
    phase: str = _PHASE_LEAD
    decided: Optional[Any] = None
    decided_round: Optional[int] = None
    started: bool = False
    history: Dict[int, Set[Quorum]] = field(default_factory=dict)
    sent_saw: Set[Quorum] = field(default_factory=set)
    acks: Dict[Quorum, Set[int]] = field(default_factory=dict)
    round_no: Dict[Quorum, int] = field(default_factory=dict)
    seen: Dict[Quorum, int] = field(default_factory=dict)
    # (tag, round) -> {sender: payload}
    log: Dict[Tuple[str, int], Dict[int, Tuple]] = field(default_factory=dict)

    def record(self, sender: int, payload: Tuple) -> None:
        tag, rnd = payload[0], payload[1]
        self.log.setdefault((tag, rnd), {}).setdefault(sender, payload)

    def received(self, tag: str, rnd: int) -> Dict[int, Tuple]:
        return self.log.get((tag, rnd), {})


class AnucAutomaton(Automaton):
    """Pure-automaton A_nuc.  Detector value: ``(leader, quorum)``.

    Ablation switches mirror :class:`~repro.core.nuc.AnucProcess`.
    """

    name = "anuc-automaton"

    def __init__(
        self,
        enable_distrust: bool = True,
        enable_quorum_awareness: bool = True,
    ):
        self.enable_distrust = enable_distrust
        self.enable_quorum_awareness = enable_quorum_awareness

    # -- Automaton interface --------------------------------------------

    def initial_state(self, pid: int, n: int, proposal: Any) -> _NucState:
        state = _NucState(pid=pid, n=n, x=proposal)
        state.history = {q: set() for q in range(n)}
        return state

    def decision(self, state: _NucState) -> Optional[Any]:
        return state.decided

    def snapshot(self, state: _NucState) -> Any:
        history = tuple(
            (p, tuple(sorted(tuple(sorted(q)) for q in quorums)))
            for p, quorums in sorted(state.history.items())
        )
        log = tuple(
            (key, tuple(sorted(v.items())))
            for key, v in sorted(state.log.items())
        )
        return (
            state.pid,
            state.k,
            state.phase,
            state.x,
            state.decided,
            history,
            tuple(sorted(tuple(sorted(q)) for q in state.sent_saw)),
            tuple(sorted(state.seen.items(), key=repr)),
            log,
        )

    # -- one model step ----------------------------------------------------

    def transition(self, state, pid, msg, d):
        sends: List[Tuple[int, Any]] = []

        # Round 1 opens on the very first step (the coroutine queues the
        # LEAD broadcast during initialization; it flushes with step 1).
        if not state.started:
            state.started = True
            state.k = 1
            self._broadcast(state, sends, self._lead_payload(state))

        # Upon-receipt handlers run before the main logic (take_step order).
        if msg is not None:
            payload = msg.payload
            tag = payload[0]
            if tag == SAW:
                _, q, quorum = payload
                state.history[q].add(quorum)
                sends.append((msg.sender, (ACK, state.pid, quorum, state.k)))
            elif tag == ACK:
                _, q, quorum, k = payload
                state.acks.setdefault(quorum, set()).add(q)
                state.round_no[quorum] = max(state.round_no.get(quorum, 0), k)
                if state.acks[quorum] == set(quorum):
                    state.seen[quorum] = state.round_no[quorum]
            else:
                state.record(msg.sender, payload)

        # Exactly one wait-condition check per step, with this step's d.
        leader, quorum_value = d
        if state.phase == _PHASE_LEAD:
            self._check_lead(state, sends, leader)
        elif state.phase == _PHASE_REP:
            self._check_rep(state, sends, frozenset(quorum_value))
        else:
            self._check_prop(state, sends, frozenset(quorum_value))
        return TransitionOutcome(state=state, sends=sends)

    # -- phase checks -------------------------------------------------------

    def _lead_payload(self, state: _NucState) -> Tuple:
        return (LEAD, state.k, state.x, snapshot_history(state.history))

    def _broadcast(self, state, sends, payload) -> None:
        for dest in range(state.n):
            sends.append((dest, payload))

    def _check_lead(self, state, sends, leader: int) -> None:
        lead = state.received(LEAD, state.k).get(leader)
        if lead is None:
            return
        self._import_history(state, lead[3])
        if not self.enable_distrust or not distrusts(
            state.history, state.pid, leader, state.n
        ):
            state.x = lead[2]
        state.phase = _PHASE_REP
        self._broadcast(state, sends, (REP, state.k, state.x))

    def _check_rep(self, state, sends, quorum: Quorum) -> None:
        state.history[state.pid].add(quorum)  # get_quorum, line 49
        reports = state.received(REP, state.k)
        if not quorum or not quorum <= set(reports):
            return
        values = {reports[q][2] for q in quorum}
        if len(values) == 1:
            (proposal,) = values
        else:
            proposal = UNKNOWN
        state.phase = _PHASE_PROP
        self._broadcast(
            state,
            sends,
            (PROP, state.k, proposal, snapshot_history(state.history)),
        )

    def _check_prop(self, state, sends, quorum: Quorum) -> None:
        state.history[state.pid].add(quorum)  # get_quorum, line 49
        proposals = state.received(PROP, state.k)
        if not quorum or not quorum <= set(proposals):
            return
        for q in sorted(quorum):  # line 27
            self._import_history(state, proposals[q][3])
        if self.enable_distrust and any(
            distrusts(state.history, state.pid, q, state.n) for q in quorum
        ):
            return  # lines 25-28: retry with the next step's quorum

        quorum_values = {q: proposals[q][2] for q in sorted(quorum)}
        non_unknown = sorted(
            (q, v) for q, v in quorum_values.items() if v != UNKNOWN
        )
        if non_unknown:
            state.x = non_unknown[0][1]
        unanimous = (
            len(set(quorum_values.values())) == 1
            and next(iter(quorum_values.values())) != UNKNOWN
        )
        aware = (
            not self.enable_quorum_awareness
            or state.seen.get(quorum, _INF) < state.k
        )
        if unanimous and aware and state.decided is None:
            state.decided = state.x
            state.decided_round = state.k

        if quorum not in state.sent_saw:  # lines 31-33
            for dest in sorted(quorum):
                sends.append((dest, (SAW, state.pid, quorum)))
            state.sent_saw.add(quorum)

        state.k += 1  # next round opens within the same step
        state.phase = _PHASE_LEAD
        self._broadcast(state, sends, self._lead_payload(state))

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _import_history(state: _NucState, incoming) -> None:
        for r, quorums in incoming.items():
            state.history[r] |= quorums


_INF = float("inf")
