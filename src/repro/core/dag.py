"""DAGs of failure detector samples (Section 4.1).

``A_DAG`` (Fig. 1) has every process build an ever-growing DAG whose nodes
are *samples* ``(q, d, k)`` — process ``q`` saw detector value ``d`` at its
``k``-th query — with an edge from every existing node to each new node.

Two structural facts make a compact representation possible:

* the DAG each process holds is **ancestor-closed** (nodes arrive only as
  parts of whole DAGs, and new nodes attach below everything present), and
* reachability is **transitive by construction**: ``u`` reaches ``v`` iff
  ``u`` was in the builder's DAG when ``v`` was created.

Hence the ancestors of ``v`` are exactly the samples ``(q, k')`` with
``k' <= frontier_v[q]``, where ``frontier_v[q]`` is the largest ``k'`` of a
``q``-sample present at ``v``'s creation.  Storing that length-``n`` frontier
vector per node represents the (quadratically dense) edge relation in O(n)
space per node:

    ``u`` is an ancestor of ``v``  iff  ``u.k <= v.frontier[u.pid]``.

Paths of the DAG are then chains of this partial order, and Observations
4.1-4.4 and Lemmas 4.5-4.8 become simple order-theoretic facts which the
test suite checks directly.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs as _obs

SampleKey = Tuple[int, int]  # (pid, k)


class Sample(NamedTuple):
    """A failure-detector sample ``(q, d, k)`` with its ancestry frontier.

    ``t`` records the global time at which the sample was taken — the
    paper's ``tau(v)`` — so that simulated schedules can be paired with
    their time lists (Lemma 4.9) and Observation 4.4 can be checked.
    """

    pid: int
    k: int  # 1-based index of this sample among pid's samples
    d: Any  # the detector value seen
    frontier: Tuple[int, ...]  # frontier[q] = max k' of q-samples below this
    t: int = 0  # tau(v): when the sample was taken

    @property
    def key(self) -> SampleKey:
        return (self.pid, self.k)

    @property
    def depth(self) -> int:
        """Number of samples strictly below this one; a topological rank."""
        return sum(self.frontier)

    def __repr__(self) -> str:
        return f"Sample(p{self.pid}#{self.k}, d={self.d!r})"


class SampleDAG:
    """An immutable DAG of samples with structural sharing on update.

    All mutation-like operations return a new DAG; message payloads can
    therefore share DAG objects safely.
    """

    __slots__ = ("n", "_nodes", "_max_k")

    def __init__(
        self,
        n: int,
        nodes: Optional[Dict[SampleKey, Sample]] = None,
        max_k: Optional[Tuple[int, ...]] = None,
    ):
        self.n = n
        self._nodes: Dict[SampleKey, Sample] = nodes if nodes is not None else {}
        if max_k is None:
            counters = [0] * n
            for pid, k in self._nodes:
                counters[pid] = max(counters[pid], k)
            max_k = tuple(counters)
        self._max_k = max_k

    @classmethod
    def empty(cls, n: int) -> "SampleDAG":
        return cls(n, {}, tuple([0] * n))

    # ------------------------------------------------------------------
    # Construction (the operations of A_DAG lines 7-10)
    # ------------------------------------------------------------------

    def add_local_sample(
        self, pid: int, d: Any, t: int = 0
    ) -> Tuple["SampleDAG", Sample]:
        """Add a new sample of ``pid`` below everything present.

        Returns the new DAG and the created node (A_DAG lines 8-10: the
        frontier encodes 'edges from every other node to the new node').
        """
        k = self._max_k[pid] + 1
        sample = Sample(pid=pid, k=k, d=d, frontier=self._max_k, t=t)
        nodes = dict(self._nodes)
        nodes[sample.key] = sample
        max_k = tuple(
            k if q == pid else self._max_k[q] for q in range(self.n)
        )
        return SampleDAG(self.n, nodes, max_k), sample

    def union(self, other: "SampleDAG") -> "SampleDAG":
        """``G_p <- G_p ∪ m`` (A_DAG line 7).

        Sample keys are globally unique and deterministic, so equal keys
        always carry equal nodes; the union is a plain dict merge.
        """
        if other is self or not other._nodes:
            return self
        if not self._nodes:
            return other
        nodes = dict(self._nodes)
        nodes.update(other._nodes)
        max_k = tuple(
            max(self._max_k[q], other._max_k[q]) for q in range(self.n)
        )
        return SampleDAG(self.n, nodes, max_k)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, key: SampleKey) -> bool:
        return key in self._nodes

    def get(self, key: SampleKey) -> Optional[Sample]:
        return self._nodes.get(key)

    def nodes(self) -> List[Sample]:
        return list(self._nodes.values())

    def max_k(self, pid: int) -> int:
        """Largest sample index of ``pid`` present (0 if none)."""
        return self._max_k[pid]

    @property
    def frontier(self) -> Tuple[int, ...]:
        """Per-process largest sample index present."""
        return self._max_k

    def latest_sample(self, pid: int) -> Optional[Sample]:
        k = self._max_k[pid]
        return self._nodes.get((pid, k)) if k else None

    def samples_of(self, pid: int) -> List[Sample]:
        return sorted(
            (s for s in self._nodes.values() if s.pid == pid),
            key=lambda s: s.k,
        )

    @staticmethod
    def is_ancestor(u: Sample, v: Sample) -> bool:
        """Whether there is an edge/path from ``u`` to ``v`` (``u != v``)."""
        if u.key == v.key:
            return False
        return v.frontier[u.pid] >= u.k

    @staticmethod
    def comparable(u: Sample, v: Sample) -> bool:
        return (
            u.key == v.key
            or SampleDAG.is_ancestor(u, v)
            or SampleDAG.is_ancestor(v, u)
        )

    def descendants(self, root: Sample, include_root: bool = True) -> List[Sample]:
        """``G | root``: the subgraph induced by the descendants of ``root``.

        Following the paper's usage (Lemma 4.5 et seq.) the root itself
        belongs to ``G | root``; pass ``include_root=False`` to drop it.
        Returned in topological order (by depth, then pid/k for determinism).
        """
        found = [
            s
            for s in self._nodes.values()
            if self.is_ancestor(root, s) or (include_root and s.key == root.key)
        ]
        found.sort(key=lambda s: (s.depth, s.pid, s.k))
        return found

    def ancestors(self, node: Sample, include_node: bool = True) -> List[Sample]:
        found = [
            s
            for s in self._nodes.values()
            if self.is_ancestor(s, node) or (include_node and s.key == node.key)
        ]
        found.sort(key=lambda s: (s.depth, s.pid, s.k))
        return found

    def topological(self, nodes: Optional[Iterable[Sample]] = None) -> List[Sample]:
        """A deterministic linear extension of (a subset of) the DAG."""
        pool = list(nodes) if nodes is not None else list(self._nodes.values())
        pool.sort(key=lambda s: (s.depth, s.pid, s.k))
        return pool


def greedy_chain(nodes: Sequence[Sample]) -> List[Sample]:
    """A maximal-ish path (chain) through ``nodes``.

    Walks a topological order and keeps each node that is a descendant of the
    last kept node.  Because every path of the DAG is a chain of the ancestry
    order (the DAG is transitively closed), the result is a genuine DAG path.
    Concurrent (incomparable) samples are dropped; callers that need a
    specific process represented should wait for later samples, which are
    descendants of everything older (Lemma 4.7's argument).
    """
    ordered = sorted(nodes, key=lambda s: (s.depth, s.pid, s.k))
    chain: List[Sample] = []
    for node in ordered:
        if not chain or SampleDAG.is_ancestor(chain[-1], node):
            chain.append(node)
    return chain


def chain_over_processes(
    nodes: Sequence[Sample], pids: FrozenSet[int]
) -> List[Sample]:
    """Greedy chain through the samples of the given processes only."""
    return greedy_chain([s for s in nodes if s.pid in pids])


class DagCore:
    """The loop body of A_DAG (Fig. 1 lines 5-12), shared by the
    transformation algorithms that embed it verbatim.

    Holds the current DAG, the sample counter ``k_p`` and the last own
    sample ``v_p``; :meth:`absorb` is line 7 and :meth:`sample` lines 8-10.
    """

    def __init__(self, pid: int, n: int):
        self.pid = pid
        self.n = n
        self.dag = SampleDAG.empty(n)
        self.k = 0
        self.last_sample: Optional[Sample] = None

    def absorb(self, payload: Any) -> None:
        """Union a received DAG into ours (ignores non-DAG payloads)."""
        if isinstance(payload, SampleDAG):
            self.dag = self.dag.union(payload)

    def sample(self, d: Any, t: int = 0) -> Sample:
        """Take the next local sample and attach it below everything."""
        self.dag, sample = self.dag.add_local_sample(self.pid, d, t)
        self.k += 1
        self.last_sample = sample
        return sample


def balanced_chain(nodes: Sequence[Sample]) -> List[Sample]:
    """A chain through ``nodes`` that serves processes as evenly as possible.

    The plain greedy chain can starve a process (its samples keep landing
    incomparable to the greedily-kept ones), which matters when the chain is
    fed to a schedule simulation: the starved process takes too few steps to
    decide.  This variant repeatedly extends the chain with the next
    compatible sample of the *least-served* process, yielding near
    round-robin interleaving whenever the underlying samples permit.

    For callers that rebuild the chain of a *growing* sample set over and
    over (the extraction search), :class:`BalancedChainBuilder` computes the
    identical chain incrementally.
    """
    builder = BalancedChainBuilder()
    builder.extend(nodes)
    return list(builder.chain())


class BalancedChainBuilder:
    """Incrementally maintained :func:`balanced_chain` of a growing set.

    Feed batches of new samples with :meth:`extend`; :meth:`chain` always
    equals ``balanced_chain`` of everything fed so far.  The builder's run
    is deterministic given the per-process sample lists, and appending
    samples (always with larger ``k`` than any fed before, as DAG growth
    guarantees) can first change its behaviour at the earliest iteration
    where some process's list was exhausted — every prior iteration saw
    candidates drawn from unchanged list prefixes.  The builder checkpoints
    its state at that first-exhaustion moment and, on new samples, replays
    only from the checkpoint instead of from scratch.
    """

    __slots__ = (
        "_lists",
        "_seen_k",
        "_pointers",
        "_counts",
        "_chain",
        "_last",
        "_ckpt",
        "clock",
        "_rewinds",
    )

    def __init__(self) -> None:
        self._lists: Dict[int, List[Sample]] = {}
        self._seen_k: Dict[int, int] = {}
        self._pointers: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}
        self._chain: List[Sample] = []
        self._last: Optional[Sample] = None
        # State at the first iteration that saw an exhausted list:
        # (pointers, counts, chain length, last).  ``None`` until then.
        self._ckpt: Optional[
            Tuple[Dict[int, int], Dict[int, int], int, Optional[Sample]]
        ] = None
        #: Monotone clock, ticked whenever the chain is rewound (truncated
        #: and regrown).  Consumers that cache per-position work (the
        #: extraction engine's search cursors) record the clock when they
        #: read the chain and later ask :meth:`stable_since` how deep the
        #: chain is still unchanged.
        self.clock: int = 0
        self._rewinds: List[Tuple[int, int]] = []  # (clock, truncation depth)

    def extend(self, nodes: Iterable[Sample]) -> None:
        """Feed samples; ones already fed (by ``(pid, k)``) are ignored.

        New samples of a process must have larger ``k`` than its previously
        fed ones — true for any caller feeding snapshots of a growing DAG
        subset (per process, a fresh subgraph's ``k`` values are upward
        closed, so growth only appends).  Order within one batch is free.
        """
        incoming: Dict[int, List[Sample]] = {}
        for node in nodes:
            incoming.setdefault(node.pid, []).append(node)
        fed = False
        new_pid = False
        for pid, batch in incoming.items():
            batch.sort(key=lambda s: s.k)
            seen = self._seen_k.get(pid, 0)
            if batch[-1].k <= seen:
                continue
            bucket = self._lists.get(pid)
            if bucket is None:
                bucket = self._lists[pid] = []
                new_pid = True
            for node in batch:
                if node.k > seen:
                    bucket.append(node)
                    seen = node.k
            self._seen_k[pid] = seen
            fed = True
        self._ingested(fed, new_pid)

    def extend_grouped(self, groups: Mapping[int, Sequence[Sample]]) -> None:
        """Feed per-process sample lists that *extend* previously fed ones.

        Each ``groups[pid]`` must be sorted ascending by ``k`` and have the
        samples fed for ``pid`` so far as a prefix (true of a growing fresh
        subgraph's per-process lists); only the suffix past the fed count is
        ingested, so a call costs O(new samples), not O(all samples).
        """
        fed = False
        new_pid = False
        for pid, lst in groups.items():
            bucket = self._lists.get(pid)
            if bucket is None:
                if not lst:
                    continue
                bucket = self._lists[pid] = []
                new_pid = True
            start = len(bucket)
            if len(lst) <= start:
                continue
            bucket.extend(lst[start:])
            self._seen_k[pid] = bucket[-1].k
            fed = True
        self._ingested(fed, new_pid)

    def _ingested(self, fed: bool, new_pid: bool) -> None:
        if new_pid:
            # A first-ever sample of a process could have entered the run at
            # any iteration — no prior checkpoint is valid.  Start over.
            self._pointers = {}
            self._counts = {}
            self._chain = []
            self._last = None
            self._ckpt = None
            self.clock += 1
            self._rewinds.append((self.clock, 0))
        if fed:
            self._rewind_and_run()

    def chain(self) -> Sequence[Sample]:
        """The balanced chain of all samples fed so far (do not mutate)."""
        return self._chain

    def pid_count(self, pid: int) -> int:
        """Number of entries of ``pid`` in the current chain."""
        return self._counts.get(pid, 0)

    def stable_since(self, clock: int) -> int:
        """How deep the chain is unchanged since ``clock`` was read.

        Returns the minimum truncation depth over every rewind that happened
        after ``clock``; chain positions below it are identical to what a
        reader at ``clock`` saw.  With no rewind since, the whole current
        chain is stable (only possibly extended).
        """
        stable = len(self._chain)
        for at, depth in reversed(self._rewinds):
            if at <= clock:
                break
            if depth < stable:
                stable = depth
        return stable

    def _rewind_and_run(self) -> None:
        if self._ckpt is not None:
            pointers, counts, chain_len, last = self._ckpt
            self._pointers = dict(pointers)
            self._counts = dict(counts)
            del self._chain[chain_len:]
            self._last = last
            self._ckpt = None
            self.clock += 1
            self._rewinds.append((self.clock, chain_len))
        elif self._chain or self._last is not None:
            raise AssertionError("completed run left no checkpoint")
        lists = self._lists
        pointers = self._pointers
        counts = self._counts
        chain = self._chain
        last = self._last
        built0 = len(chain)
        while True:
            candidates: Dict[int, Sample] = {}
            exhausted = False
            last_pid = last.pid if last is not None else -1
            last_k = last.k if last is not None else 0
            for pid, samples in lists.items():
                i = pointers.get(pid, 0)
                ln = len(samples)
                # Frontiers are monotone in k, so samples skipped against
                # the current chain tip can never become compatible with
                # later (deeper) tips of the same process; advancing is
                # safe.  (``last`` itself cannot reappear: its own list's
                # pointer is already past it, other lists never held it.)
                if last is not None:
                    while i < ln and samples[i].frontier[last_pid] < last_k:
                        i += 1
                pointers[pid] = i
                if i < ln:
                    candidates[pid] = samples[i]
                else:
                    exhausted = True
            if exhausted and self._ckpt is None:
                # First iteration an exhausted list could influence: future
                # samples of that process may re-enter here.  Snapshot the
                # pre-selection state so extend() replays from this point.
                self._ckpt = (dict(pointers), dict(counts), len(chain), last)
            if not candidates:
                break
            if last is None:
                # Start from the globally shallowest sample.
                pid = min(candidates, key=lambda q: (candidates[q].depth, q))
            else:
                pid = min(
                    candidates, key=lambda q: (counts.get(q, 0), q)
                )
            node = candidates[pid]
            chain.append(node)
            counts[pid] = counts.get(pid, 0) + 1
            pointers[pid] += 1
            last = node
        self._last = last
        if _obs._ENABLED:
            reg = _obs.metrics()
            reg.inc("dag.chain_builds")
            reg.inc("dag.chain_appends", len(chain) - built0)
            reg.gauge("dag.chain_len", len(chain))
