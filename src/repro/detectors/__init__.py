"""Failure detectors (Sections 2.3, 3 and 6.1 of the paper).

A failure detector ``D`` maps each failure pattern ``F`` to a set ``D(F)`` of
histories ``H : Pi x N -> range``.  We realize the *set* by sampling:
each detector owns one or more history-generation strategies, every one of
which produces histories provably in ``D(F)`` — and double-checked at test
time by the independent property checkers in :mod:`repro.detectors.checkers`.
"""

from repro.detectors.base import (
    AdaptiveHistory,
    FailureDetector,
    FunctionalHistory,
    History,
    RecordedHistory,
    ScheduleHistory,
    clear_history_cache,
    history_cache_info,
    sample_history_cached,
)
from repro.detectors.checkers import (
    CheckResult,
    check_eventually_perfect,
    check_omega,
    check_paired,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
)
from repro.detectors.emulated import recorded_output_history
from repro.detectors.omega import Omega
from repro.detectors.paired import PairedDetector, PairedHistory
from repro.detectors.perfect import EventuallyPerfect, Perfect
from repro.detectors.sigma import Sigma
from repro.detectors.sigma_nu import SigmaNu
from repro.detectors.sigma_nu_plus import SigmaNuPlus

__all__ = [
    "AdaptiveHistory",
    "CheckResult",
    "EventuallyPerfect",
    "FailureDetector",
    "FunctionalHistory",
    "History",
    "Omega",
    "PairedDetector",
    "PairedHistory",
    "Perfect",
    "RecordedHistory",
    "ScheduleHistory",
    "Sigma",
    "SigmaNu",
    "SigmaNuPlus",
    "check_eventually_perfect",
    "check_omega",
    "check_paired",
    "check_sigma",
    "check_sigma_nu",
    "check_sigma_nu_plus",
    "clear_history_cache",
    "history_cache_info",
    "recorded_output_history",
    "sample_history_cached",
]
