"""Independent property checkers for detector histories.

Each checker takes a history (synthetic or recorded from a run), a failure
pattern, and a finite horizon, and verifies the detector's defining
properties over that horizon.  Eventual properties ("there is a time after
which ...") are finitized: the checker locates the stabilization time and
fails if the property has not stabilized strictly before the horizon.

The checkers deliberately share no code with the history generators or the
transformation algorithms — they are the other side of every differential
test in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.detectors.base import History, RecordedHistory, ScheduleHistory
from repro.kernel.failures import FailurePattern


@dataclass
class CheckResult:
    """Outcome of one property check."""

    detector: str
    ok: bool
    violations: List[str] = field(default_factory=list)
    stabilization_time: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.violations)})"
        return f"CheckResult({self.detector}: {status}, stab={self.stabilization_time})"


# ----------------------------------------------------------------------
# History segment extraction
# ----------------------------------------------------------------------


def segments(history: History, p: int, horizon: int) -> List[Tuple[int, Any]]:
    """The piecewise-constant segments of ``H(p, .)`` over ``[0, horizon]``.

    Returns ``(from_time, value)`` pairs.  Structured histories expose their
    breakpoints; arbitrary histories are sampled at every time step.
    """
    if isinstance(history, ScheduleHistory):
        return [
            (t, v) for t, v in history.breakpoints_of(p) if t <= horizon
        ]
    if isinstance(history, RecordedHistory):
        result: List[Tuple[int, Any]] = []
        try:
            result.append((0, history.value(p, 0)))
        except KeyError:
            pass
        for t, v in history.events_of(p):
            if 0 < t <= horizon:
                result.append((t, v))
        return result
    # Fallback: sample densely with run-length compression.
    result = []
    last: Any = object()
    for t in range(horizon + 1):
        v = history.value(p, t)
        if v != last:
            result.append((t, v))
            last = v
    return result


def _values_with_times(
    history: History, p: int, horizon: int
) -> List[Tuple[int, Any]]:
    return segments(history, p, horizon)


# ----------------------------------------------------------------------
# Omega
# ----------------------------------------------------------------------


def check_omega(
    history: History, pattern: FailurePattern, horizon: int
) -> CheckResult:
    """Check the leader property of Omega over ``[0, horizon]``.

    There must be a correct process ``l`` and a time ``t < horizon`` such
    that every correct process outputs ``l`` at all times in
    ``(t, horizon]``.
    """
    result = CheckResult(detector="Omega", ok=True)
    correct = sorted(pattern.correct)
    if not correct:
        result.details["vacuous"] = True
        return result

    finals = {q: history.value(q, horizon) for q in correct}
    leaders = set(finals.values())
    if len(leaders) != 1:
        result.ok = False
        result.violations.append(
            f"correct processes disagree on the eventual leader at the "
            f"horizon: {finals}"
        )
        return result
    (leader,) = leaders
    if leader not in pattern.correct:
        result.ok = False
        result.violations.append(
            f"eventual leader {leader} is faulty (correct={correct})"
        )
        return result

    # The stabilization time is the start of the last all-leader suffix,
    # computed from the segment structure.
    last_bad = -1
    for q in correct:
        segs = _values_with_times(history, q, horizon)
        for i, (t, v) in enumerate(segs):
            if v != leader:
                end = segs[i + 1][0] - 1 if i + 1 < len(segs) else horizon
                last_bad = max(last_bad, end)
    if last_bad >= horizon:
        result.ok = False
        result.violations.append(
            "a correct process still outputs a non-leader value at the horizon"
        )
    result.stabilization_time = last_bad + 1
    result.details["leader"] = leader
    return result


def check_eventually_perfect(
    history: History, pattern: FailurePattern, horizon: int
) -> CheckResult:
    """Check <>P over ``[0, horizon]``: values are suspect *sets*.

    * Strong completeness (finitized): at the horizon every correct process
      permanently suspects every faulty process.
    * Eventual accuracy (finitized): at the horizon no correct process
      suspects a correct process.

    The stabilization time is the start of the last suffix on which both
    clauses hold at every correct process.
    """
    result = CheckResult(detector="<>P", ok=True)
    correct = sorted(pattern.correct)
    if not correct:
        result.details["vacuous"] = True
        return result

    def bad(suspects: FrozenSet[int]) -> bool:
        suspects = frozenset(suspects)
        return not (
            pattern.faulty <= suspects and not (suspects & pattern.correct)
        )

    for q in correct:
        final = frozenset(history.value(q, horizon))
        missing = sorted(pattern.faulty - final)
        if missing:
            result.ok = False
            result.violations.append(
                f"completeness: correct process {q} does not suspect the "
                f"crashed processes {missing} at the horizon"
            )
        wrongly = sorted(final & pattern.correct)
        if wrongly:
            result.ok = False
            result.violations.append(
                f"accuracy: correct process {q} still suspects the correct "
                f"processes {wrongly} at the horizon"
            )

    last_bad = -1
    for q in correct:
        segs = _values_with_times(history, q, horizon)
        for i, (t, v) in enumerate(segs):
            if bad(v):
                end = segs[i + 1][0] - 1 if i + 1 < len(segs) else horizon
                last_bad = max(last_bad, end)
    result.stabilization_time = last_bad + 1
    return result


# ----------------------------------------------------------------------
# Quorum detectors
# ----------------------------------------------------------------------


def _quorum_values(
    history: History,
    pattern: FailurePattern,
    horizon: int,
    processes: Sequence[int],
) -> Dict[int, List[Tuple[int, FrozenSet[int]]]]:
    return {
        p: [(t, frozenset(v)) for t, v in _values_with_times(history, p, horizon)]
        for p in processes
    }


def _check_completeness(
    result: CheckResult,
    per_process: Dict[int, List[Tuple[int, FrozenSet[int]]]],
    pattern: FailurePattern,
    horizon: int,
) -> None:
    """Eventually, quorums of correct processes contain only correct
    processes.  Sets ``result.stabilization_time`` and appends violations."""
    last_bad = -1
    for p in pattern.correct:
        segs = per_process.get(p, [])
        for i, (t, quorum) in enumerate(segs):
            if not quorum <= pattern.correct:
                end = segs[i + 1][0] - 1 if i + 1 < len(segs) else horizon
                last_bad = max(last_bad, end)
    if last_bad >= horizon:
        result.ok = False
        result.violations.append(
            "completeness: a correct process still outputs a quorum with "
            "faulty members at the horizon"
        )
    result.stabilization_time = last_bad + 1


def check_sigma(
    history: History, pattern: FailurePattern, horizon: int
) -> CheckResult:
    """Check Sigma: (uniform) intersection + completeness."""
    result = CheckResult(detector="Sigma", ok=True)
    everyone = list(pattern.processes)
    per_process = _quorum_values(history, pattern, horizon, everyone)

    all_quorums: List[Tuple[int, int, FrozenSet[int]]] = []
    for p, segs in per_process.items():
        for t, q in segs:
            all_quorums.append((p, t, q))
    distinct = {}
    for p, t, q in all_quorums:
        distinct.setdefault(q, (p, t))
    quorum_list = list(distinct.items())
    for i in range(len(quorum_list)):
        for j in range(i, len(quorum_list)):
            qa, (pa, ta) = quorum_list[i]
            qb, (pb, tb) = quorum_list[j]
            if not qa & qb:
                result.ok = False
                result.violations.append(
                    f"intersection: H({pa},{ta})={sorted(qa)} and "
                    f"H({pb},{tb})={sorted(qb)} are disjoint"
                )
    _check_completeness(result, per_process, pattern, horizon)
    result.details["distinct_quorums"] = len(quorum_list)
    return result


def check_sigma_nu(
    history: History, pattern: FailurePattern, horizon: int
) -> CheckResult:
    """Check Sigma^nu: nonuniform intersection + completeness."""
    result = CheckResult(detector="Sigma^nu", ok=True)
    correct = sorted(pattern.correct)
    per_correct = _quorum_values(history, pattern, horizon, correct)

    distinct = {}
    for p, segs in per_correct.items():
        for t, q in segs:
            distinct.setdefault(q, (p, t))
    quorum_list = list(distinct.items())
    for i in range(len(quorum_list)):
        for j in range(i, len(quorum_list)):
            qa, (pa, ta) = quorum_list[i]
            qb, (pb, tb) = quorum_list[j]
            if not qa & qb:
                result.ok = False
                result.violations.append(
                    f"nonuniform intersection: correct processes' quorums "
                    f"H({pa},{ta})={sorted(qa)} and H({pb},{tb})={sorted(qb)} "
                    f"are disjoint"
                )
    _check_completeness(result, per_correct, pattern, horizon)
    result.details["distinct_correct_quorums"] = len(quorum_list)
    return result


def check_sigma_nu_plus(
    history: History, pattern: FailurePattern, horizon: int
) -> CheckResult:
    """Check Sigma^nu+: Sigma^nu properties + conditional nonintersection +
    self-inclusion."""
    result = check_sigma_nu(history, pattern, horizon)
    result.detector = "Sigma^nu+"

    everyone = list(pattern.processes)
    per_process = _quorum_values(history, pattern, horizon, everyone)

    # Self-inclusion: p is in every quorum it outputs.
    for p, segs in per_process.items():
        for t, q in segs:
            if p not in q:
                result.ok = False
                result.violations.append(
                    f"self-inclusion: H({p},{t})={sorted(q)} does not "
                    f"contain {p}"
                )

    # Conditional nonintersection: a quorum disjoint from some correct
    # process's quorum contains only faulty processes.
    correct_quorums = set()
    for p in pattern.correct:
        for _, q in per_process.get(p, []):
            correct_quorums.add(q)
    # Sort so the violation report (first offending pair) is deterministic.
    for p, segs in per_process.items():
        for t, q in segs:
            for cq in sorted(correct_quorums, key=sorted):
                if not q & cq and not q <= pattern.faulty:
                    result.ok = False
                    result.violations.append(
                        f"conditional nonintersection: H({p},{t})={sorted(q)} "
                        f"misses the correct quorum {sorted(cq)} yet contains "
                        f"correct processes"
                    )
                    break
    return result


# ----------------------------------------------------------------------
# Product detectors
# ----------------------------------------------------------------------


class _ProjectedHistory(History):
    """Component view of a history whose values are tuples."""

    def __init__(self, inner: History, index: int):
        self._inner = inner
        self._index = index

    def value(self, p: int, t: int) -> Any:
        return self._inner.value(p, t)[self._index]


def project_history(history: History, index: int) -> History:
    """The ``index``-th component of a tuple-valued history."""
    return _ProjectedHistory(history, index)


def check_paired(
    history: History,
    pattern: FailurePattern,
    horizon: int,
    checkers: Sequence,
) -> List[CheckResult]:
    """Check a tuple-valued history component-wise.

    ``checkers[i]`` is applied to the ``i``-th projection.  Returns one
    :class:`CheckResult` per component.
    """
    return [
        checker(project_history(history, i), pattern, horizon)
        for i, checker in enumerate(checkers)
    ]
