"""The "weaker than" preorder on failure detectors (Section 2.9).

``D' ⪯_E D`` when an algorithm transforms ``D`` to ``D'`` in environment
``E``: it runs with detector ``D`` and maintains ``output_p`` variables
whose history ``O_R`` must lie in ``D'(F)`` for every admissible run.

This module gives the preorder executable form:

* :class:`Transformation` — a named factory of transformation processes
  with a declared output checker, runnable by :func:`demonstrate`;
* trivial constructions the paper uses implicitly: the **identity**
  (any Σ history *is* a Σν history — Σν ⪯ Σ), **projection** (each
  component of a product is weaker than the product — Ω ⪯ (Ω, Σν)),
  and **pairing** (transformations compose componentwise);
* the paper's substantial transformations, wrapped:
  Σν+ ⪯ Σν (Fig. 3) and Σν ⪯ D for consensus-capable D (Fig. 2).

:func:`demonstrate` runs a transformation over sampled histories and checks
the emitted history with the target detector's checker — a *witness* for
one ⪯ fact (sound per run; the universal claim is the theorem's job).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.detectors.base import FailureDetector
from repro.detectors.checkers import CheckResult
from repro.detectors.emulated import recorded_output_history
from repro.kernel.automaton import Process, ProcessContext
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.system import System


class _IdentityProcess(Process):
    """Outputs the ambient detector's value at every step."""

    def __init__(self, transform: Callable[[Any], Any] = lambda d: d):
        self._transform = transform

    def program(self, ctx: ProcessContext):
        while True:
            obs = yield from ctx.take_step()
            ctx.output(self._transform(obs.detector_value))


@dataclass
class Transformation:
    """A named ``T_{D -> D'}``: process factory + target checker."""

    name: str
    source: FailureDetector
    process_factory: Callable[[int, int], Process]  # (pid, n) -> Process
    target_checker: Callable[[Any, FailurePattern, int], CheckResult]

    def processes(self, n: int):
        return {p: self.process_factory(p, n) for p in range(n)}


def identity_transformation(
    source: FailureDetector,
    target_checker,
    name: Optional[str] = None,
    transform: Callable[[Any], Any] = lambda d: d,
) -> Transformation:
    """The trivial transformation: output (a pure function of) D's value.

    Witnesses facts like Σν ⪯ Σ (every Σ history satisfies Σν's properties)
    and Σν ⪯ Σν+ (Theorem 6.7's easy direction).
    """
    return Transformation(
        name=name or f"identity({source.name})",
        source=source,
        process_factory=lambda pid, n: _IdentityProcess(transform),
        target_checker=target_checker,
    )


def projection_transformation(
    source: FailureDetector,
    index: int,
    target_checker,
    name: Optional[str] = None,
) -> Transformation:
    """Component projection: ``D_i ⪯ (D_0, ..., D_k)``."""
    return Transformation(
        name=name or f"project[{index}]({source.name})",
        source=source,
        process_factory=lambda pid, n: _IdentityProcess(lambda d: d[index]),
        target_checker=target_checker,
    )


@dataclass
class Demonstration:
    """Outcome of witnessing one ⪯ fact over sampled runs."""

    transformation: str
    runs: int
    all_valid: bool
    checks: List[CheckResult]

    def __repr__(self) -> str:
        status = "ok" if self.all_valid else "FAILED"
        return (
            f"Demonstration({self.transformation}: {status} over "
            f"{self.runs} runs)"
        )


def demonstrate(
    transformation: Transformation,
    patterns: List[FailurePattern],
    seed: int = 0,
    max_steps: int = 4000,
    min_outputs: int = 5,
    extra_steps: int = 150,
) -> Demonstration:
    """Run ``transformation`` over each pattern; check every emitted history."""
    checks: List[CheckResult] = []
    for i, pattern in enumerate(patterns):
        history = transformation.source.sample_history(
            pattern, random.Random(f"{seed}/{i}")
        )
        system = System(
            transformation.processes(pattern.n),
            pattern,
            history,
            seed=seed + i,
            delivery=CoalescingDelivery(),
        )
        result = system.run(
            max_steps=max_steps,
            stop_when=lambda s: s.correct_output_count(min_outputs),
            extra_steps=extra_steps,
        )
        recorded = recorded_output_history(result)
        checks.append(
            transformation.target_checker(recorded, pattern, recorded.horizon)
        )
    return Demonstration(
        transformation=transformation.name,
        runs=len(patterns),
        all_valid=all(c.ok for c in checks),
        checks=checks,
    )


# ----------------------------------------------------------------------
# The lattice facts used by the paper, prepackaged
# ----------------------------------------------------------------------


def sigma_nu_weaker_than_sigma() -> Transformation:
    """Σν ⪯ Σ: a Σ history already satisfies Σν (identity suffices)."""
    from repro.detectors.checkers import check_sigma_nu
    from repro.detectors.sigma import Sigma

    return identity_transformation(
        Sigma("pivot"), check_sigma_nu, name="Sigma^nu <= Sigma"
    )


def sigma_nu_weaker_than_sigma_nu_plus() -> Transformation:
    """Σν ⪯ Σν+: the easy direction of Corollary 6.8."""
    from repro.detectors.checkers import check_sigma_nu
    from repro.detectors.sigma_nu_plus import SigmaNuPlus

    return identity_transformation(
        SigmaNuPlus(), check_sigma_nu, name="Sigma^nu <= Sigma^nu+"
    )


def omega_weaker_than_pair() -> Transformation:
    """Ω ⪯ (Ω, Σν): projection onto the first component."""
    from repro.detectors.checkers import check_omega
    from repro.detectors.omega import Omega
    from repro.detectors.paired import PairedDetector
    from repro.detectors.sigma_nu import SigmaNu

    return projection_transformation(
        PairedDetector(Omega(), SigmaNu()),
        index=0,
        target_checker=check_omega,
        name="Omega <= (Omega, Sigma^nu)",
    )


def sigma_nu_plus_weaker_than_sigma_nu(n: int) -> Transformation:
    """Σν+ ⪯ Σν: the substantial direction (Theorem 6.7, Fig. 3)."""
    from repro.core.boosting import SigmaNuPlusBooster
    from repro.detectors.checkers import check_sigma_nu_plus
    from repro.detectors.sigma_nu import SigmaNu

    return Transformation(
        name="Sigma^nu+ <= Sigma^nu (Thm 6.7)",
        source=SigmaNu(),
        process_factory=lambda pid, n_: SigmaNuPlusBooster(n_),
        target_checker=check_sigma_nu_plus,
    )
