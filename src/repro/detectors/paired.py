"""Product detectors (D, D') — footnote 1 / Section 2.3.

``(D, D')`` outputs ordered pairs; a history of the pair projects to a
history of each component.  The consensus algorithms in this repository take
their leader and quorum components from a paired history, e.g.
``(Omega, Sigma^nu+)`` for A_nuc.
"""

from __future__ import annotations

import random
from typing import Any, Sequence, Tuple

from repro.detectors.base import FailureDetector, History
from repro.kernel.failures import FailurePattern


class PairedHistory(History):
    """The product history: ``H''(p, t) = (H(p, t), H'(p, t))``."""

    def __init__(self, components: Sequence[History]):
        if len(components) < 2:
            raise ValueError("a paired history needs at least two components")
        self.components = tuple(components)

    def value(self, p: int, t: int) -> Tuple[Any, ...]:
        components = self.components
        if len(components) == 2:  # the common case: pairs like (Omega, Sigma)
            return (components[0].value(p, t), components[1].value(p, t))
        return tuple(component.value(p, t) for component in self.components)

    def project(self, index: int) -> History:
        return self.components[index]


class PairedDetector(FailureDetector):
    """The product detector ``(D, D', ...)``."""

    def __init__(self, *detectors: FailureDetector):
        if len(detectors) < 2:
            raise ValueError("a paired detector needs at least two components")
        self.detectors = detectors
        self.name = "(" + ", ".join(d.name for d in detectors) + ")"

    def sample_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> PairedHistory:
        return PairedHistory(
            [d.sample_history(pattern, rng) for d in self.detectors]
        )
