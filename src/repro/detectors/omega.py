"""The leader failure detector Omega (Section 3.1).

At each process Omega outputs a single trusted process id; there is a time
after which the same correct process is output at every correct process.
Before that time outputs are arbitrary (possibly faulty processes, possibly
different at different processes), and faulty processes' outputs are never
constrained.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.detectors.base import FailureDetector, History, ScheduleHistory
from repro.kernel.failures import FailurePattern


class Omega(FailureDetector):
    """Samples valid Omega histories.

    Parameters
    ----------
    stabilization_slack:
        Upper bound (exclusive) on how long *after* the last crash the
        pre-stabilization noise may continue.  Stabilization is drawn
        uniformly in ``[0, last_crash + stabilization_slack]``.
    noise_changes:
        How many arbitrary leader changes each process exhibits before
        stabilization.
    leader:
        Force a specific eventual leader (must be correct); ``None`` draws
        one uniformly from ``correct(F)``.
    """

    name = "Omega"

    def __init__(
        self,
        stabilization_slack: int = 30,
        noise_changes: int = 3,
        leader: Optional[int] = None,
    ):
        self.stabilization_slack = stabilization_slack
        self.noise_changes = noise_changes
        self.leader = leader

    def sample_history(self, pattern: FailurePattern, rng: random.Random) -> History:
        correct = sorted(pattern.correct)
        if not correct:
            # No correct process: Omega's property is vacuous; output anything.
            return ScheduleHistory({p: [(0, 0)] for p in pattern.processes})
        leader = self.leader if self.leader is not None else rng.choice(correct)
        if leader not in pattern.correct:
            raise ValueError(f"forced leader {leader} is not correct in {pattern!r}")
        stabilize_at = rng.randint(
            0, pattern.last_crash_time + self.stabilization_slack
        )
        breakpoints = {}
        for p in pattern.processes:
            points: List[Tuple[int, int]] = [(0, rng.randrange(pattern.n))]
            for _ in range(self.noise_changes):
                if stabilize_at == 0:
                    break
                t = rng.randrange(stabilize_at)
                points.append((t, rng.randrange(pattern.n)))
            points.append((stabilize_at, leader))
            # Later breakpoints shadow earlier ones at equal times; keep the
            # stabilization entry last so it wins.
            dedup = {}
            for t, v in sorted(points, key=lambda tv: tv[0]):
                dedup[t] = v
            dedup[stabilize_at] = leader
            breakpoints[p] = sorted(dedup.items())
        return ScheduleHistory(breakpoints)


def constant_omega(pattern: FailurePattern, leader: int) -> ScheduleHistory:
    """An Omega history that outputs ``leader`` everywhere from time 0."""
    return ScheduleHistory({p: [(0, leader)] for p in pattern.processes})
