"""The nonuniform quorum failure detector Sigma^nu (Section 3.3).

Sigma^nu differs from Sigma in one respect: only quorums output by *correct*
processes must intersect.  Quorums output at faulty processes are completely
unconstrained — they may be empty, or disjoint from everybody else's.  That
freedom is exactly what makes Sigma^nu strictly weaker than Sigma when half
or more of the processes may crash (Theorem 7.1), and it is what the
contamination scenario of Section 6.3 exploits.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Tuple

from repro.detectors.base import FailureDetector, History, ScheduleHistory
from repro.detectors.sigma import Quorum, _dedup, _random_superset
from repro.kernel.failures import FailurePattern


class SigmaNu(FailureDetector):
    """Samples valid Sigma^nu histories.

    Correct processes follow a pivot strategy (all their quorums share a
    correct pivot, eventually shrinking into ``correct(F)``).  Faulty
    processes' quorums are governed by ``faulty_style``:

    * ``"selfish"`` — a faulty process outputs ``{p}`` (its own singleton),
      the maximally non-intersecting choice the definition permits;
    * ``"junk"`` — arbitrary random subsets of Pi, possibly empty;
    * ``"obedient"`` — faulty processes behave like correct ones (such
      histories are also valid Sigma histories, useful for differential
      tests).
    """

    name = "Sigma^nu"

    def __init__(
        self,
        faulty_style: str = "selfish",
        stabilization_slack: int = 30,
        changes: int = 4,
        pivot: Optional[int] = None,
    ):
        if faulty_style not in ("selfish", "junk", "obedient"):
            raise ValueError(f"unknown faulty_style {faulty_style!r}")
        self.faulty_style = faulty_style
        self.stabilization_slack = stabilization_slack
        self.changes = changes
        self.pivot = pivot

    def sample_history(self, pattern: FailurePattern, rng: random.Random) -> History:
        correct = sorted(pattern.correct)
        everyone = list(pattern.processes)
        if not correct:
            return ScheduleHistory({p: [(0, frozenset())] for p in everyone})
        pivot = self.pivot if self.pivot is not None else rng.choice(correct)
        if pivot not in pattern.correct:
            raise ValueError(f"pivot {pivot} is not correct in {pattern!r}")

        breakpoints = {}
        for p in everyone:
            if p in pattern.correct or self.faulty_style == "obedient":
                breakpoints[p] = self._correct_points(
                    pattern, rng, pivot, correct, everyone
                )
            else:
                breakpoints[p] = self._faulty_points(pattern, rng, p, everyone)
        return ScheduleHistory(breakpoints)

    def _correct_points(
        self, pattern, rng, pivot, correct, everyone
    ) -> List[Tuple[int, Quorum]]:
        stab = pattern.last_crash_time + rng.randint(1, self.stabilization_slack)
        points: List[Tuple[int, Quorum]] = [
            (0, _random_superset(rng, [pivot], everyone))
        ]
        for _ in range(self.changes):
            points.append(
                (rng.randrange(stab), _random_superset(rng, [pivot], everyone))
            )
        points.append((stab, _random_superset(rng, [pivot], correct)))
        for _ in range(self.changes):
            points.append(
                (stab + rng.randint(1, 50), _random_superset(rng, [pivot], correct))
            )
        return _dedup(points, keep_last_at=stab)

    def _faulty_points(self, pattern, rng, p, everyone) -> List[Tuple[int, Quorum]]:
        crash = pattern.crash_time(p)
        horizon = max(1, crash if crash is not None else 1)
        if self.faulty_style == "selfish":
            return [(0, frozenset([p]))]
        points: List[Tuple[int, Quorum]] = [
            (0, frozenset(rng.sample(everyone, rng.randint(0, len(everyone)))))
        ]
        for _ in range(self.changes):
            t = rng.randrange(horizon)
            points.append(
                (t, frozenset(rng.sample(everyone, rng.randint(0, len(everyone)))))
            )
        return _dedup(points, keep_last_at=0)
