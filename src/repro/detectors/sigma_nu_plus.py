"""The boosted nonuniform quorum detector Sigma^nu+ (Section 6.1).

Sigma^nu+ adds two properties to Sigma^nu:

* Conditional nonintersection: any quorum (output anywhere, any time) that
  fails to intersect some quorum of a *correct* process contains only faulty
  processes.
* Self-inclusion: every process is contained in all of its own quorums.

Together these imply nonuniform intersection, but the paper (and we) keep it
as an explicit property.  Theorem 6.7 shows Sigma^nu+ is emulable from
Sigma^nu in any environment; this module's generator exists so A_nuc can also
be driven directly from synthetic Sigma^nu+ histories.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Tuple

from repro.detectors.base import FailureDetector, History, ScheduleHistory
from repro.detectors.sigma import Quorum, _dedup, _random_superset
from repro.kernel.failures import FailurePattern


class SigmaNuPlus(FailureDetector):
    """Samples valid Sigma^nu+ histories.

    Correct processes output quorums containing both themselves and a fixed
    correct pivot (self-inclusion + structural intersection), eventually
    inside ``correct(F)``.  A faulty process ``p`` follows one of two modes,
    both legitimate:

    * *doomed* — quorums containing only faulty processes (including ``p``),
      which conditional nonintersection permits to be disjoint from
      everything;
    * *cooperative* — quorums containing ``p`` and the pivot, which intersect
      every correct quorum.

    ``faulty_mode`` chooses ``"doomed"``, ``"cooperative"`` or ``"mixed"``
    (random per faulty process).
    """

    name = "Sigma^nu+"

    def __init__(
        self,
        faulty_mode: str = "mixed",
        stabilization_slack: int = 30,
        changes: int = 4,
        pivot: Optional[int] = None,
    ):
        if faulty_mode not in ("doomed", "cooperative", "mixed"):
            raise ValueError(f"unknown faulty_mode {faulty_mode!r}")
        self.faulty_mode = faulty_mode
        self.stabilization_slack = stabilization_slack
        self.changes = changes
        self.pivot = pivot

    def sample_history(self, pattern: FailurePattern, rng: random.Random) -> History:
        correct = sorted(pattern.correct)
        everyone = list(pattern.processes)
        if not correct:
            return ScheduleHistory(
                {p: [(0, frozenset([p]))] for p in everyone}
            )
        pivot = self.pivot if self.pivot is not None else rng.choice(correct)
        if pivot not in pattern.correct:
            raise ValueError(f"pivot {pivot} is not correct in {pattern!r}")

        breakpoints = {}
        for p in everyone:
            if p in pattern.correct:
                breakpoints[p] = self._correct_points(
                    pattern, rng, p, pivot, correct, everyone
                )
            else:
                mode = self.faulty_mode
                if mode == "mixed":
                    mode = rng.choice(["doomed", "cooperative"])
                breakpoints[p] = self._faulty_points(
                    pattern, rng, p, pivot, everyone, mode
                )
        return ScheduleHistory(breakpoints)

    def _correct_points(
        self, pattern, rng, p, pivot, correct, everyone
    ) -> List[Tuple[int, Quorum]]:
        stab = pattern.last_crash_time + rng.randint(1, self.stabilization_slack)
        core = [pivot, p]
        points: List[Tuple[int, Quorum]] = [(0, _random_superset(rng, core, everyone))]
        for _ in range(self.changes):
            points.append(
                (rng.randrange(stab), _random_superset(rng, core, everyone))
            )
        points.append((stab, _random_superset(rng, core, correct)))
        for _ in range(self.changes):
            points.append(
                (stab + rng.randint(1, 50), _random_superset(rng, core, correct))
            )
        return _dedup(points, keep_last_at=stab)

    def _faulty_points(
        self, pattern, rng, p, pivot, everyone, mode
    ) -> List[Tuple[int, Quorum]]:
        faulty = sorted(set(everyone) - set(pattern.correct))
        if mode == "doomed":
            # Quorums contain only faulty processes (self-inclusion holds).
            points: List[Tuple[int, Quorum]] = [
                (0, _random_superset(rng, [p], faulty))
            ]
            crash = pattern.crash_time(p) or 1
            for _ in range(self.changes):
                points.append(
                    (rng.randrange(max(1, crash)), _random_superset(rng, [p], faulty))
                )
            return _dedup(points, keep_last_at=0)
        # Cooperative: contains p and the pivot, so it intersects every
        # correct quorum; conditional nonintersection is satisfied vacuously.
        return [(0, _random_superset(rng, [p, pivot], everyone))]
