"""Failure detector base classes and history representations.

Histories come in three flavours:

* :class:`ScheduleHistory` — piecewise-constant functions built from
  per-process ``(from_time, value)`` breakpoints; what the generators emit.
* :class:`RecordedHistory` — the finite history of an *emulated* detector,
  reconstructed from the ``output_p`` assignment log of a live run (the
  ``O_R`` of Section 2.9); what the property checkers consume.
* :class:`AdaptiveHistory` — a history computed on the fly by a scenario
  driver with access to the running system.  Formally a failure detector
  history is a fixed function; an adaptive history is simply a convenient way
  to *construct* one concrete function during a run, and the recorded values
  are validated post hoc against the detector's definition.
"""

from __future__ import annotations

import bisect
import random
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.kernel.failures import FailurePattern


class History:
    """``H : Pi x N -> range`` — the behaviour of a detector in one run."""

    def value(self, p: int, t: int) -> Any:
        raise NotImplementedError


class FunctionalHistory(History):
    """A history given directly as a function ``(p, t) -> value``."""

    def __init__(self, fn: Callable[[int, int], Any]):
        self._fn = fn

    def value(self, p: int, t: int) -> Any:
        return self._fn(p, t)


class ScheduleHistory(History):
    """Piecewise-constant history from per-process breakpoints.

    ``breakpoints[p]`` is a list of ``(from_time, value)`` pairs sorted by
    time, the first of which must start at 0.
    """

    def __init__(self, breakpoints: Mapping[int, Sequence[Tuple[int, Any]]]):
        self._times: Dict[int, List[int]] = {}
        self._values: Dict[int, List[Any]] = {}
        for p, points in breakpoints.items():
            points = sorted(points, key=lambda tv: tv[0])
            if not points or points[0][0] != 0:
                raise ValueError(
                    f"breakpoints for process {p} must start at time 0"
                )
            self._times[p] = [t for t, _ in points]
            self._values[p] = [v for _, v in points]

    def value(self, p: int, t: int) -> Any:
        times = self._times.get(p)
        if times is None:
            raise KeyError(f"no breakpoints for process {p}")
        i = bisect.bisect_right(times, t) - 1
        return self._values[p][i]

    def breakpoints_of(self, p: int) -> List[Tuple[int, Any]]:
        return list(zip(self._times[p], self._values[p]))


class RecordedHistory(History):
    """A finite history recorded from a run, with step-function semantics.

    The value of process ``p`` at time ``t`` is the last value assigned at or
    before ``t`` (falling back to the initial value).  ``horizon`` is the
    last time for which the history is meaningful.
    """

    def __init__(self, n: int, horizon: int, initial: Optional[Mapping[int, Any]] = None):
        self.n = n
        self.horizon = horizon
        self._events: Dict[int, List[Tuple[int, Any]]] = {p: [] for p in range(n)}
        self._initial: Dict[int, Any] = dict(initial or {})

    def record(self, p: int, t: int, value: Any) -> None:
        events = self._events[p]
        if events and t < events[-1][0]:
            raise ValueError(
                f"out-of-order record for process {p}: t={t} after {events[-1][0]}"
            )
        events.append((t, value))

    def value(self, p: int, t: int) -> Any:
        events = self._events[p]
        lo, hi = 0, len(events)
        while lo < hi:
            mid = (lo + hi) // 2
            if events[mid][0] <= t:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            if p in self._initial:
                return self._initial[p]
            raise KeyError(f"history of process {p} undefined at time {t}")
        return events[lo - 1][1]

    def events_of(self, p: int) -> List[Tuple[int, Any]]:
        return list(self._events[p])

    def all_values(self, p: int, t_from: int = 0) -> List[Any]:
        """Every value held by ``p`` at some time in ``[t_from, horizon]``:
        the value holding at ``t_from`` plus each later assignment."""
        values: List[Any] = []
        try:
            values.append(self.value(p, t_from))
        except KeyError:
            pass
        for t, v in self._events[p]:
            if t_from < t <= self.horizon:
                values.append(v)
        return values

    def final_value(self, p: int) -> Any:
        return self.value(p, self.horizon)

    def last_change_time(self, p: int) -> int:
        events = self._events[p]
        return events[-1][0] if events else 0


class AdaptiveHistory(History):
    """A history computed live by a strategy, with full recording.

    ``strategy(p, t) -> value`` may consult mutable scenario state.  Every
    returned value is recorded, and :meth:`recorded` rebuilds a checkable
    finite history afterwards.
    """

    def __init__(self, n: int, strategy: Callable[[int, int], Any]):
        self.n = n
        self._strategy = strategy
        self._samples: Dict[int, List[Tuple[int, Any]]] = {p: [] for p in range(n)}

    def value(self, p: int, t: int) -> Any:
        v = self._strategy(p, t)
        samples = self._samples[p]
        if not samples or samples[-1][0] != t or samples[-1][1] == v:
            samples.append((t, v))
        return v

    def recorded(self, horizon: int) -> RecordedHistory:
        initial = {
            p: samples[0][1] for p, samples in self._samples.items() if samples
        }
        recorded = RecordedHistory(self.n, horizon, initial=initial)
        for p, samples in self._samples.items():
            last_t = -1
            for t, v in samples:
                if t == last_t:
                    continue
                recorded.record(p, t, v)
                last_t = t
        return recorded


class FailureDetector:
    """A failure detector: samples histories from ``D(F)``."""

    name: str = "D"

    def sample_history(
        self, pattern: FailurePattern, rng: random.Random
    ) -> History:
        """Draw one history from ``D(F)`` for failure pattern ``F``."""
        raise NotImplementedError

    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        """A hashable key identifying this detector's *configuration*.

        Two detector instances with equal keys must sample identical
        histories from identical ``(pattern, rng)`` inputs, and the sampled
        histories must be immutable (safe to share across runs) — the
        contract :func:`sample_history_cached` relies on.  The default walks
        the instance dict, recursing into component detectors (products) and
        accepting hashable primitives; anything else makes the detector
        uncacheable (``None``).  Detectors whose histories are stateful must
        override this to return ``None``.
        """
        return _generic_cache_key(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


_KEYABLE_PRIMITIVES = (int, float, str, bool, bytes, frozenset, type(None))


def _keyable(value: Any) -> Optional[Any]:
    """A hashable stand-in for ``value``, or ``None`` if there is none."""
    if isinstance(value, FailureDetector):
        return value.cache_key()
    if isinstance(value, _KEYABLE_PRIMITIVES):
        return value
    if isinstance(value, tuple):
        parts = tuple(_keyable(item) for item in value)
        return None if any(part is None for part in parts) else parts
    return None


def _generic_cache_key(detector: FailureDetector) -> Optional[Tuple[Any, ...]]:
    parts: List[Any] = [f"{type(detector).__module__}.{type(detector).__qualname__}"]
    for attr, value in sorted(vars(detector).items()):
        key = _keyable(value)
        if key is None and value is not None:
            return None
        parts.append((attr, key))
    return tuple(parts)


# ----------------------------------------------------------------------
# History cache
# ----------------------------------------------------------------------

#: Seed salt used by every runner when deriving a history RNG from a run
#: seed; kept here so cached and uncached sampling agree bit-for-bit.
HISTORY_SEED_SALT = 0x5EED

HISTORY_CACHE_MAXSIZE = 256

_history_cache: "OrderedDict[Tuple[Any, ...], History]" = OrderedDict()
_history_cache_hits = 0
_history_cache_misses = 0


def sample_history_cached(
    detector: FailureDetector,
    pattern: FailurePattern,
    seed: int,
    salt: int = HISTORY_SEED_SALT,
) -> History:
    """``detector.sample_history`` with an LRU cache over runs.

    Keyed by ``(detector.cache_key(), pattern, seed)``; repeated runs over
    the same pattern (sweep reruns, serial-vs-parallel comparisons, property
    re-checks) reuse the sampled history instead of regenerating it.  The
    RNG handed to an uncached sample is ``random.Random(seed ^ salt)`` —
    exactly what the runners used before the cache existed — so cached and
    fresh histories are indistinguishable.  Uncacheable detectors
    (``cache_key() is None``) always sample fresh.
    """
    global _history_cache_hits, _history_cache_misses
    detector_key = detector.cache_key()
    if detector_key is None:
        return detector.sample_history(pattern, random.Random(seed ^ salt))
    key = (detector_key, pattern, seed ^ salt)
    try:
        history = _history_cache.pop(key)  # repro: noqa RPR401 -- LRU memo of a pure function: same key, same history in every worker
        # re-insert: most recently used
        _history_cache[key] = history  # repro: noqa RPR401 -- pure-function memo; worker-local reordering cannot change results
        _history_cache_hits += 1  # repro: noqa RPR401 -- diagnostic counter only (history_cache_info), never feeds results
        return history
    except KeyError:
        pass
    history = detector.sample_history(pattern, random.Random(seed ^ salt))
    _history_cache[key] = history  # repro: noqa RPR401 -- pure-function memo; a forked worker just re-fills it
    _history_cache_misses += 1  # repro: noqa RPR401 -- diagnostic counter only (history_cache_info), never feeds results
    while len(_history_cache) > HISTORY_CACHE_MAXSIZE:
        _history_cache.popitem(last=False)  # repro: noqa RPR401 -- LRU eviction of the pure-function memo
    return history


def history_cache_info() -> Dict[str, int]:
    return {
        "size": len(_history_cache),
        "maxsize": HISTORY_CACHE_MAXSIZE,
        "hits": _history_cache_hits,
        "misses": _history_cache_misses,
    }


def clear_history_cache() -> None:
    global _history_cache_hits, _history_cache_misses
    _history_cache.clear()
    _history_cache_hits = 0
    _history_cache_misses = 0


def stabilization_horizon(pattern: FailurePattern, slack: int = 0) -> int:
    """A time by which everything eventual should have stabilized."""
    return pattern.last_crash_time + slack
