"""Emulated detector histories (Section 2.9).

A transformation algorithm ``T_{D -> D'}`` maintains a variable ``output_p``
at every process; for an admissible run ``R`` the history ``O_R`` of those
variables is what must lie in ``D'(F)``.  This module reconstructs ``O_R``
as a :class:`~repro.detectors.base.RecordedHistory` from a live
:class:`~repro.kernel.system.RunResult`, so that the checkers can validate
transformation outputs exactly as they validate synthetic histories.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.detectors.base import RecordedHistory
from repro.kernel.system import RunResult

_UNSET = object()


def recorded_output_history(
    result: RunResult, horizon: Optional[int] = None
) -> RecordedHistory:
    """Rebuild ``O_R`` from the output-assignment log of a run.

    ``output_p`` holds its last assigned value between assignments (and its
    initial value before the first one); after a crash the variable simply
    stops changing, which the step-function semantics already capture.
    """
    if horizon is None:
        horizon = max(0, result.final_time - 1)
    initial = {
        p: v for p, v in result.initial_outputs.items() if v is not None
    }
    history = RecordedHistory(result.n, horizon, initial=initial)
    for p, events in result.outputs.items():
        # Re-assigning the initial value is also invisible in O_R.
        last_v: Any = result.initial_outputs.get(p, _UNSET)
        for t, v in events:
            if v == last_v:
                # Re-assignments of the same value are invisible in O_R.
                continue
            # Same-time re-assignments are recorded in order; lookups take
            # the last record at or before t, so the later one wins.
            history.record(p, t, v)
            last_v = v
    return history
