"""The perfect detector P and the eventually perfect detector <>P.

These are not part of the paper's headline results, but they serve as the
"strong detector D" in necessity experiments: P can be used to solve
(uniform) consensus with any number of crashes, so Theorem 5.4's
transformation applied to a P-based consensus algorithm must emit valid
Sigma^nu histories — a differential test of the extraction machinery.

P outputs the set of processes it currently *suspects*; strong completeness
(crashed processes are eventually suspected by every correct process, here
after a bounded detection lag) and strong accuracy (no process is suspected
before it crashes) both hold.
"""

from __future__ import annotations

import random
from typing import FrozenSet

from repro.detectors.base import FailureDetector, FunctionalHistory, History
from repro.kernel.failures import FailurePattern


class Perfect(FailureDetector):
    """P: suspects exactly the processes crashed at least ``lag`` ago."""

    name = "P"

    def __init__(self, lag: int = 5):
        if lag < 0:
            raise ValueError("lag must be nonnegative")
        self.lag = lag

    def sample_history(self, pattern: FailurePattern, rng: random.Random) -> History:
        lag = self.lag

        def suspects(p: int, t: int) -> FrozenSet[int]:
            return frozenset(
                q
                for q in pattern.faulty
                if pattern.crash_time(q) is not None
                and pattern.crash_time(q) + lag <= t
            )

        return FunctionalHistory(suspects)


class EventuallyPerfect(FailureDetector):
    """<>P: arbitrary wrong suspicions before a stabilization time, perfect
    afterwards."""

    name = "<>P"

    def __init__(self, stabilization_slack: int = 30, noise_prob: float = 0.3):
        self.stabilization_slack = stabilization_slack
        self.noise_prob = noise_prob

    def sample_history(self, pattern: FailurePattern, rng: random.Random) -> History:
        stab = pattern.last_crash_time + rng.randint(1, self.stabilization_slack)
        noise_seed = rng.getrandbits(32)
        noise_prob = self.noise_prob

        def suspects(p: int, t: int) -> FrozenSet[int]:
            crashed = frozenset(
                q
                for q in pattern.faulty
                if pattern.crash_time(q) is not None and pattern.crash_time(q) <= t
            )
            if t >= stab:
                return crashed
            local = random.Random(f"{noise_seed}/{p}/{t}")
            wrong = frozenset(
                q for q in pattern.processes if local.random() < noise_prob
            )
            return crashed | wrong

        return FunctionalHistory(suspects)
