"""The quorum failure detector Sigma (Section 3.2).

Sigma outputs a set of processes (a quorum) at each process such that

* Intersection: any two quorums, output at any times and any processes,
  intersect; and
* Completeness: there is a time after which quorums of correct processes
  contain only correct processes.

Quorums of correct processes need never converge; they may change forever.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.detectors.base import FailureDetector, History, ScheduleHistory
from repro.kernel.failures import FailurePattern

Quorum = FrozenSet[int]


def _random_superset(
    rng: random.Random, core: Sequence[int], pool: Sequence[int]
) -> Quorum:
    """A random subset of ``pool`` that includes all of ``core``."""
    extras = [p for p in pool if p not in core]
    take = rng.randint(0, len(extras))
    return frozenset(core) | frozenset(rng.sample(extras, take))


class Sigma(FailureDetector):
    """Samples valid Sigma histories.

    Strategies (all yield histories in Sigma(F); validated by the checkers):

    * ``"pivot"`` — every quorum output anywhere contains one fixed correct
      *pivot* process, which makes intersection structural; after a
      per-process stabilization time, quorums of correct processes are
      subsets of ``correct(F)``.  Works in **any** environment.
    * ``"full"`` — every process outputs Pi until stabilization, then
      correct processes output ``correct(F)``.  Works in any environment.
    * ``"majority"`` — quorums are majority subsets (any two majorities
      intersect); valid only when a majority of processes are correct, the
      environment of Chandra-Hadzilacos-Toueg.  Falls back to ``"pivot"``
      when the pattern has a correct minority.
    * ``"shrinking"`` — every process starts at Pi and sheds members over
      time (breakpoint times randomized), never dropping the pivot, ending
      inside ``correct(F)``.  Intersection is via the shared pivot;
      exercises algorithms against quorums that change at many breakpoints.
    """

    name = "Sigma"

    def __init__(
        self,
        strategy: str = "pivot",
        stabilization_slack: int = 30,
        changes: int = 4,
        pivot: Optional[int] = None,
    ):
        if strategy not in ("pivot", "full", "majority", "shrinking"):
            raise ValueError(f"unknown Sigma strategy {strategy!r}")
        self.strategy = strategy
        self.stabilization_slack = stabilization_slack
        self.changes = changes
        self.pivot = pivot

    # ------------------------------------------------------------------

    def sample_history(self, pattern: FailurePattern, rng: random.Random) -> History:
        correct = sorted(pattern.correct)
        everyone = list(pattern.processes)
        if not correct:
            return ScheduleHistory(
                {p: [(0, frozenset(everyone))] for p in everyone}
            )
        strategy = self.strategy
        if strategy == "majority" and len(correct) * 2 <= pattern.n:
            strategy = "pivot"

        if strategy == "full":
            return self._full_history(pattern, rng, correct, everyone)
        if strategy == "majority":
            return self._majority_history(pattern, rng, correct, everyone)
        if strategy == "shrinking":
            return self._shrinking_history(pattern, rng, correct, everyone)
        return self._pivot_history(pattern, rng, correct, everyone)

    # ------------------------------------------------------------------

    def _stab_time(self, pattern: FailurePattern, rng: random.Random) -> int:
        return pattern.last_crash_time + rng.randint(1, self.stabilization_slack)

    def _full_history(self, pattern, rng, correct, everyone) -> ScheduleHistory:
        breakpoints = {}
        for p in everyone:
            stab = self._stab_time(pattern, rng)
            breakpoints[p] = [(0, frozenset(everyone)), (stab, frozenset(correct))]
        return ScheduleHistory(breakpoints)

    def _pivot_history(self, pattern, rng, correct, everyone) -> ScheduleHistory:
        pivot = self.pivot if self.pivot is not None else rng.choice(correct)
        if pivot not in pattern.correct:
            raise ValueError(f"pivot {pivot} is not correct in {pattern!r}")
        breakpoints = {}
        for p in everyone:
            stab = self._stab_time(pattern, rng)
            points: List[Tuple[int, Quorum]] = [
                (0, _random_superset(rng, [pivot], everyone))
            ]
            for _ in range(self.changes):
                t = rng.randrange(stab)
                points.append((t, _random_superset(rng, [pivot], everyone)))
            # After stabilization, quorums of every process are subsets of
            # correct(F) containing the pivot (stronger than required for
            # faulty p, which is harmless).
            points.append((stab, _random_superset(rng, [pivot], correct)))
            for _ in range(self.changes):
                t = stab + rng.randint(1, 50)
                points.append((t, _random_superset(rng, [pivot], correct)))
            breakpoints[p] = _dedup(points, keep_last_at=stab)
        return ScheduleHistory(breakpoints)

    def _majority_history(self, pattern, rng, correct, everyone) -> ScheduleHistory:
        n = pattern.n
        maj = n // 2 + 1
        breakpoints = {}
        for p in everyone:
            stab = self._stab_time(pattern, rng)
            points: List[Tuple[int, Quorum]] = [
                (0, frozenset(rng.sample(everyone, maj)))
            ]
            for _ in range(self.changes):
                t = rng.randrange(stab)
                points.append((t, frozenset(rng.sample(everyone, maj))))
            points.append((stab, frozenset(rng.sample(correct, maj))))
            for _ in range(self.changes):
                t = stab + rng.randint(1, 50)
                points.append((t, frozenset(rng.sample(correct, maj))))
            breakpoints[p] = _dedup(points, keep_last_at=stab)
        return ScheduleHistory(breakpoints)


    def _shrinking_history(self, pattern, rng, correct, everyone) -> ScheduleHistory:
        pivot = self.pivot if self.pivot is not None else rng.choice(correct)
        if pivot not in pattern.correct:
            raise ValueError(f"pivot {pivot} is not correct in {pattern!r}")
        breakpoints = {}
        for p in everyone:
            stab = self._stab_time(pattern, rng)
            current = set(everyone)
            points: List[Tuple[int, Quorum]] = [(0, frozenset(current))]
            # Shed members at randomized pre-stabilization times; every
            # emitted quorum keeps the pivot, so any two (even across
            # processes) intersect.
            sheddable = [q for q in everyone if q != pivot]
            rng.shuffle(sheddable)
            for q in sheddable:
                current.discard(q)
                t = rng.randrange(1, stab + 1)
                if set(current) >= {pivot} and len(current) >= 1:
                    points.append((t, frozenset(current | {pivot})))
            final = frozenset(
                {pivot}
                | {q for q in correct if rng.random() < 0.5}
            )
            points.append((stab, final))
            breakpoints[p] = _dedup(points, keep_last_at=stab)
        return ScheduleHistory(breakpoints)


def _dedup(
    points: List[Tuple[int, Quorum]], keep_last_at: int
) -> List[Tuple[int, Quorum]]:
    """Collapse equal-time breakpoints; on ties at ``keep_last_at`` the
    stabilized value (appended later) wins."""
    dedup = {}
    for t, v in sorted(points, key=lambda tv: tv[0]):
        dedup[t] = v
    # Drop pre-stabilization noise that landed exactly on the
    # stabilization time but was listed earlier: the sorted pass above
    # already keeps the last occurrence, which is the stabilized one for
    # ties at keep_last_at because stabilized entries are appended after
    # noise entries and Python's sort is stable.
    return sorted(dedup.items())


def constant_sigma(pattern: FailurePattern, quorum: Quorum) -> ScheduleHistory:
    """A Sigma history outputting the same quorum everywhere (quorum must
    intersect itself, i.e. be nonempty, and eventually be all-correct to be
    valid; callers are responsible for validity)."""
    return ScheduleHistory({p: [(0, frozenset(quorum))] for p in pattern.processes})
