"""Experiment harness: one-shot runners, the EXP sweeps, load generation."""

from repro.harness.load import (
    LoadReport,
    LoadSpec,
    build_schedule,
    run_service_load,
)
from repro.harness.runner import (
    BoostRunOutcome,
    ConsensusRunOutcome,
    ExtractionRunOutcome,
    random_pattern,
    run_boosting,
    run_consensus_algorithm,
    run_extraction,
    run_from_scratch_sigma,
    run_nuc,
    run_stack,
)
from repro.harness.experiments import (
    exp1_nuc_sufficiency,
    exp2_boosting,
    exp3_extraction,
    exp4_separation,
    exp5_contamination,
    exp6_merging,
    exp7_scaling,
    exp8_exhaustive,
    exp9_registers,
)

__all__ = [
    "BoostRunOutcome",
    "ConsensusRunOutcome",
    "ExtractionRunOutcome",
    "LoadReport",
    "LoadSpec",
    "build_schedule",
    "run_service_load",
    "exp1_nuc_sufficiency",
    "exp2_boosting",
    "exp3_extraction",
    "exp4_separation",
    "exp5_contamination",
    "exp6_merging",
    "exp7_scaling",
    "exp8_exhaustive",
    "exp9_registers",
    "random_pattern",
    "run_boosting",
    "run_consensus_algorithm",
    "run_extraction",
    "run_from_scratch_sigma",
    "run_nuc",
    "run_stack",
]
