"""Experiment harness: one-shot runners and the EXP-1..EXP-7 sweeps."""

from repro.harness.runner import (
    BoostRunOutcome,
    ConsensusRunOutcome,
    ExtractionRunOutcome,
    random_pattern,
    run_boosting,
    run_consensus_algorithm,
    run_extraction,
    run_from_scratch_sigma,
    run_nuc,
    run_stack,
)
from repro.harness.experiments import (
    exp1_nuc_sufficiency,
    exp2_boosting,
    exp3_extraction,
    exp4_separation,
    exp5_contamination,
    exp6_merging,
    exp7_scaling,
    exp8_exhaustive,
    exp9_registers,
)

__all__ = [
    "BoostRunOutcome",
    "ConsensusRunOutcome",
    "ExtractionRunOutcome",
    "exp1_nuc_sufficiency",
    "exp2_boosting",
    "exp3_extraction",
    "exp4_separation",
    "exp5_contamination",
    "exp6_merging",
    "exp7_scaling",
    "exp8_exhaustive",
    "exp9_registers",
    "random_pattern",
    "run_boosting",
    "run_consensus_algorithm",
    "run_extraction",
    "run_from_scratch_sigma",
    "run_nuc",
    "run_stack",
]
