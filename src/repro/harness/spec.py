"""Declarative sweep specs: TOML / CSV files that name an experiment.

A spec decouples *what to sweep* from *how it executes*.  Each spec names
one EXP-1..EXP-9 family and overrides its parameters; expansion into
:class:`~repro.harness.parallel.SweepTask` lists is the experiment
function's own deterministic loop, so a spec-driven sweep is byte-identical
to calling the function directly — and flows through the same
``run_sweep(jobs=N, batch=True, store=...)`` machinery, including the
content-addressed result store.

TOML (one spec per file)::

    [sweep]
    name = "exp3-quick"            # optional; defaults to the experiment
    experiment = "exp3"

    [params]
    ns = [3]
    seeds = [0, 1, 2]
    use_trie = true

CSV (one spec per row; columns map to parameter overrides)::

    experiment,ns,seeds
    exp1,"(2, 3)","range(4)"
    exp6,,range(10)

Cell values are Python literals (``ast.literal_eval``), with two
conveniences: ``range(N)`` / ``range(A, B)`` expand to explicit integer
lists, and a bare word stays a string.  Empty cells keep the experiment's
default.  In TOML, a table value ``{ range = N }`` (or ``{ start = A,
stop = B }``) likewise expands to ``[0, .., N-1]`` — TOML has no compact
range syntax and thousand-element seed lists are unreadable.

Execution parameters (``jobs``, ``batch``, ``store``) are *not* spec
parameters: the spec describes the workload, the caller describes the
machine.  ``validate`` rejects unknown parameter names against the
experiment function's signature, so a typo fails before any run starts.
"""

from __future__ import annotations

import ast
import csv
import os
import re
import tomllib
from dataclasses import dataclass, field
from inspect import signature
from typing import Any, Callable, Dict, List, Optional

from repro import obs as _obs
from repro.analysis.tables import Table

#: Experiment name -> runner-function suffix in repro.harness.experiments.
EXPERIMENT_SUFFIXES = {
    "exp1": "nuc_sufficiency",
    "exp2": "boosting",
    "exp3": "extraction",
    "exp4": "separation",
    "exp5": "contamination",
    "exp6": "merging",
    "exp7": "scaling",
    "exp8": "exhaustive",
    "exp9": "registers",
}


class SpecError(ValueError):
    """A malformed or invalid sweep spec."""


@dataclass
class SweepSpec:
    """One declarative sweep: an experiment family plus overrides."""

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    name: Optional[str] = None
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENT_SUFFIXES:
            raise SpecError(
                f"unknown experiment {self.experiment!r} "
                f"(expected one of {', '.join(sorted(EXPERIMENT_SUFFIXES))})"
            )
        if self.name is None:
            self.name = self.experiment

    def runner(self) -> Callable[..., Table]:
        from repro.harness import experiments

        return getattr(
            experiments, f"{self.experiment}_{EXPERIMENT_SUFFIXES[self.experiment]}"
        )

    def validate(self) -> None:
        """Reject parameter names the experiment function does not accept."""
        accepted = set(signature(self.runner()).parameters)
        reserved = {"jobs", "batch", "store"}
        bad = sorted(set(self.params) - (accepted - reserved))
        if bad:
            raise SpecError(
                f"spec {self.name!r}: {self.experiment} does not accept "
                f"parameter(s) {', '.join(bad)} "
                f"(accepted: {', '.join(sorted(accepted - reserved))})"
            )

    def run(
        self,
        jobs: int = 1,
        batch: bool = False,
        store: Any = None,
    ) -> Table:
        """Execute the sweep; returns its rendered-ready table."""
        self.validate()
        runner = self.runner()
        kwargs: Dict[str, Any] = dict(self.params)
        accepted = set(signature(runner).parameters)
        kwargs["jobs"] = jobs
        if "batch" in accepted:
            kwargs["batch"] = batch
        if store is not None:
            kwargs["store"] = store
        if _obs._ENABLED:
            # The spec span roots the sweep's path tree: everything below
            # (exp.<name> -> store.lookup/store.execute -> runner.* ->
            # kernel.run) canonicalizes under sweep.spec/<...>, so two
            # sweeps of the same spec diff path-for-path.
            with _obs.tracer().span(
                "sweep.spec", spec=self.name, experiment=self.experiment
            ):
                return runner(**kwargs)
        return runner(**kwargs)


# ----------------------------------------------------------------------
# Value parsing
# ----------------------------------------------------------------------

_RANGE_RE = re.compile(r"^range\(\s*(-?\d+)\s*(?:,\s*(-?\d+)\s*)?\)$")


def _parse_cell(text: str) -> Any:
    """A CSV cell: python literal, range(...) shorthand, else a string."""
    text = text.strip()
    match = _RANGE_RE.match(text)
    if match:
        start, stop = match.group(1), match.group(2)
        if stop is None:
            return list(range(int(start)))
        return list(range(int(start), int(stop)))
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _expand_toml_value(key: str, value: Any) -> Any:
    """Expand the ``{ range = N }`` / ``{ start, stop }`` TOML shorthand."""
    if isinstance(value, dict):
        if set(value) == {"range"}:
            return list(range(int(value["range"])))
        if set(value) <= {"start", "stop"} and "stop" in value:
            return list(range(int(value.get("start", 0)), int(value["stop"])))
        raise SpecError(
            f"parameter {key!r}: unknown table value {value!r} "
            f"(use an array, {{ range = N }}, or {{ start = A, stop = B }})"
        )
    if isinstance(value, list):
        return [_expand_toml_value(key, item) for item in value]
    return value


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def load_specs(path: str) -> List[SweepSpec]:
    """Parse a ``.toml`` (one spec) or ``.csv`` (one per row) spec file."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".toml":
        return [_load_toml(path)]
    if ext == ".csv":
        return _load_csv(path)
    raise SpecError(f"unknown spec format {ext!r} for {path} (use .toml or .csv)")


def _load_toml(path: str) -> SweepSpec:
    with open(path, "rb") as fh:
        try:
            document = tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"{path}: {exc}") from exc
    sweep = document.get("sweep")
    if not isinstance(sweep, dict) or "experiment" not in sweep:
        raise SpecError(f"{path}: missing [sweep] table with an 'experiment' key")
    params = document.get("params", {})
    if not isinstance(params, dict):
        raise SpecError(f"{path}: [params] must be a table")
    spec = SweepSpec(
        experiment=str(sweep["experiment"]),
        params={k: _expand_toml_value(k, v) for k, v in params.items()},
        name=sweep.get("name"),
        source=path,
    )
    spec.validate()
    return spec


def _load_csv(path: str) -> List[SweepSpec]:
    specs: List[SweepSpec] = []
    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or "experiment" not in reader.fieldnames:
            raise SpecError(f"{path}: CSV specs need an 'experiment' column")
        for lineno, row in enumerate(reader, start=2):
            experiment = (row.get("experiment") or "").strip()
            if not experiment:
                continue  # blank separator row
            extras = row.get(None)
            if extras:
                raise SpecError(
                    f"{path}:{lineno}: {len(extras)} more cell(s) than "
                    f"header columns (quote values containing commas)"
                )
            params = {
                key: _parse_cell(value)
                for key, value in row.items()
                if key not in (None, "experiment", "name")
                and value is not None
                and value.strip() != ""
            }
            spec = SweepSpec(
                experiment=experiment,
                params=params,
                name=(row.get("name") or "").strip() or f"{experiment}@{lineno}",
                source=f"{path}:{lineno}",
            )
            spec.validate()
            specs.append(spec)
    if not specs:
        raise SpecError(f"{path}: no sweep rows")
    return specs
