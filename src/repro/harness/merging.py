"""Building mergeable run pairs and exercising Lemma 2.2 (EXP-6).

The construction mirrors the heart of the necessity proof (Lemma 5.3): two
runs of the same consensus algorithm over the same failure pattern and
detector history, with *disjoint* participant sets, each deciding a
different value.  Merging them (Lemma 2.2) yields a single legal run in
which the two groups decide differently — which is exactly why quorums of
correct processes must intersect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.consensus.quorum_mr import QuorumMR
from repro.detectors.base import FunctionalHistory, History
from repro.kernel.automaton import Automaton
from repro.kernel.failures import FailurePattern
from repro.kernel.runs import PureRun, PureSystemSimulator, merge_runs, mergeable, validate_run
from repro.kernel.steps import Schedule, Step


def synthesize_group_run(
    automaton: Automaton,
    n: int,
    group: Sequence[int],
    proposals: Mapping[int, Any],
    pattern: FailurePattern,
    history: History,
    time_of: Callable[[int], int],
    max_steps: int = 600,
    stop_when_decided: bool = True,
) -> PureRun:
    """A finite run in which only ``group`` takes steps.

    Steps are scheduled round-robin over ``group`` with oldest-message
    delivery; step ``i`` executes at time ``time_of(i)`` and sees the
    detector value ``history.value(p, time_of(i))``, so the result satisfies
    run properties (1)-(5) by construction (and ``validate_run`` re-checks).
    """
    sim = PureSystemSimulator(automaton, n, proposals)
    steps: List[Step] = []
    times: List[int] = []
    for i in range(max_steps):
        pid = group[i % len(group)]
        t = time_of(i)
        uid = sim.oldest_pending_uid(pid)
        step = Step(pid=pid, msg_uid=uid, detector_value=history.value(pid, t))
        sim.apply_step(step, time=t)
        steps.append(step)
        times.append(t)
        if stop_when_decided and all(
            sim.decision(q) is not None for q in group
        ):
            break
    return PureRun(
        automaton=automaton,
        n=n,
        proposals=dict(proposals),
        pattern=pattern,
        history=history.value,
        schedule=Schedule(steps),
        times=times,
    )


@dataclass
class MergeReport:
    """Outcome of one Lemma 2.2 merge exercise."""

    len0: int
    len1: int
    merged_valid: bool
    states_preserved: bool
    decisions0: Dict[int, Any]
    decisions1: Dict[int, Any]
    merged_decisions: Dict[int, Any]
    violations: List[str]


def partitioned_history(
    group0: Sequence[int], group1: Sequence[int]
) -> FunctionalHistory:
    """A detector history steering each group to its own leader and quorum.

    For a failure pattern in which ``group1`` is faulty (crashing after the
    run's horizon) and everyone else is correct, this is a valid
    (Omega, Sigma^nu) history: quorums at correct processes all equal
    ``group0``, quorums at the faulty ``group1`` are unconstrained.
    """
    q0, q1 = frozenset(group0), frozenset(group1)
    l0, l1 = min(group0), min(group1)

    def value(p: int, t: int) -> Tuple[int, frozenset]:
        if p in q1:
            return (l1, q1)
        return (l0, q0)

    return FunctionalHistory(value)


def random_mergeable_pair_report(n: int = 5, seed: int = 0) -> MergeReport:
    """Build, merge and validate a random mergeable pair of QuorumMR runs.

    Group 0 proposes and decides 0; group 1 (formally faulty, crashing after
    the horizon) proposes and decides 1.  The merged object must be a valid
    run whose participants keep their original final states and decisions —
    the executable content of Lemma 2.2 (and the engine of Lemma 5.3).
    """
    rng = random.Random(seed)
    pids = list(range(n))
    rng.shuffle(pids)
    size0 = rng.randint(1, n - 1)
    size1 = rng.randint(1, n - size0)
    group0 = sorted(pids[:size0])
    group1 = sorted(pids[size0 : size0 + size1])

    history = partitioned_history(group0, group1)
    horizon = 100000
    pattern = FailurePattern(n, {p: horizon for p in group1})

    automaton = QuorumMR()
    proposals0 = {p: 0 for p in range(n)}
    proposals1 = {p: 1 for p in range(n)}

    offset0 = rng.randrange(3)
    offset1 = rng.randrange(3)
    run0 = synthesize_group_run(
        automaton, n, group0, proposals0, pattern, history,
        time_of=lambda i: 2 * i + offset0,
    )
    run1 = synthesize_group_run(
        automaton, n, group1, proposals1, pattern, history,
        time_of=lambda i: 3 * i + offset1,
    )

    assert mergeable(run0, run1), "groups are disjoint by construction"
    merged = merge_runs(run0, run1, rng=rng)
    violations = validate_run(merged)

    final0 = run0.final_states()
    final1 = run1.final_states()
    final_merged = merged.final_states()
    preserved = all(
        final_merged[p] == final0[p] for p in final0
    ) and all(final_merged[p] == final1[p] for p in final1)

    sim0 = run0.simulator()
    sim0.run_schedule(run0.schedule, run0.times)
    sim1 = run1.simulator()
    sim1.run_schedule(run1.schedule, run1.times)
    simm = merged.simulator()
    simm.run_schedule(merged.schedule, merged.times)

    return MergeReport(
        len0=len(run0.schedule),
        len1=len(run1.schedule),
        merged_valid=not violations,
        states_preserved=preserved,
        decisions0=sim0.decided_pids(),
        decisions1=sim1.decided_pids(),
        merged_decisions=simm.decided_pids(),
        violations=violations,
    )
