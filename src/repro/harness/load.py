"""Seeded load generation against the consensus service.

Simulates fleets of lightweight clients without one task per client: the
arrival *schedule* — ``(tick, session, seq, op)`` rows — is precomputed
from the spec's seed, and a single submitter coroutine plays it back in
order.  Two consequences the test harness leans on:

* the schedule (hence the service's intake order, hence — via per-origin
  batch-seq ordering — the applied command sequence) depends only on
  ``(spec, seed)``, never on batching or host timing, and
* open- vs closed-loop is a property of *when* the submitter advances:
  open loop fires at scheduled ticks regardless of commits (shedding on
  backpressure), closed loop waits for each client's previous commit
  before its next command (think time in ticks).

Latency is measured in ticks from scheduled submission to commit; the
report carries p50/p99/max plus commands per kernel step — the
deterministic throughput measure ``BENCH_service.json`` tracks (wall-time
commands/sec is reported too, but only the logical numbers gate CI).
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.service.clock import TickClock, logical_event_loop
from repro.service.service import (
    Backpressure,
    ConsensusService,
    ServiceConfig,
)


@dataclass
class LoadSpec:
    """One seeded workload (independent of service batching config)."""

    mode: str = "open"  # "open" (rate-driven) | "closed" (commit-driven)
    clients: int = 8
    commands: int = 64  # total across all clients
    arrival_every: int = 2  # open loop: mean ticks between arrivals
    think_ticks: int = 1  # closed loop: ticks between commit and next send
    key_space: int = 16
    seed: int = 0
    deadline_ticks: int = 4000  # give up on stragglers (stalled detectors)

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"unknown load mode {self.mode!r}")
        if self.clients < 1 or self.commands < 0:
            raise ValueError("clients >= 1 and commands >= 0 required")


@dataclass
class LoadReport:
    """What one load run observed (all logical; wall time informational)."""

    spec_mode: str
    batch_size: int
    submitted: int = 0
    committed: int = 0
    shed: int = 0
    timed_out: int = 0
    ticks: int = 0
    kernel_steps: int = 0
    batches: int = 0
    latencies: List[int] = field(default_factory=list)  # ticks, commit order
    applied_digest: str = ""
    wall_seconds: float = 0.0

    @property
    def commands_per_kstep(self) -> float:
        return self.committed / self.kernel_steps if self.kernel_steps else 0.0

    def latency_percentile(self, q: float) -> int:
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_row(self) -> Dict[str, Any]:
        return {
            "mode": self.spec_mode,
            "batch_size": self.batch_size,
            "submitted": self.submitted,
            "committed": self.committed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "ticks": self.ticks,
            "kernel_steps": self.kernel_steps,
            "batches": self.batches,
            "commands_per_kstep": round(self.commands_per_kstep, 6),
            "latency_p50_ticks": self.latency_percentile(0.50),
            "latency_p99_ticks": self.latency_percentile(0.99),
            "latency_max_ticks": self.latency_percentile(1.0),
            "applied_digest": self.applied_digest,
            "wall_seconds": round(self.wall_seconds, 4),
        }


def build_schedule(spec: LoadSpec) -> List[Tuple[int, str, int, Tuple]]:
    """The seeded arrival schedule: ``(tick, session, seq, op)`` rows.

    Deterministic in ``spec`` alone; sorted by (tick, session).  Session
    seqs are consecutive per session — the FIFO the checkers verify.
    """
    rng = random.Random(f"load/{spec.seed}")
    next_seq = {c: 0 for c in range(spec.clients)}
    rows: List[Tuple[int, str, int, Tuple]] = []
    tick = 1
    for i in range(spec.commands):
        client = rng.randrange(spec.clients)
        session = f"c{client}"
        seq = next_seq[client]
        next_seq[client] += 1
        op = ("set", rng.randrange(spec.key_space), i)
        rows.append((tick, session, seq, op))
        tick += rng.randrange(0, 2 * spec.arrival_every + 1)
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    return rows


def applied_digest(service: ConsensusService) -> str:
    """SHA-256 over the applied command sequence (byte-identity probe)."""
    h = hashlib.sha256()
    for command in service.applied_commands:
        h.update(repr(command).encode())
    return h.hexdigest()


async def run_load(
    service: ConsensusService, spec: LoadSpec, clock: TickClock
) -> LoadReport:
    """Play ``spec`` against a started service; returns the report."""
    schedule = build_schedule(spec)
    report = LoadReport(
        spec_mode=spec.mode, batch_size=service.config.batch_size
    )
    start_tick = clock.now_ticks()
    deadline = start_tick + spec.deadline_ticks
    pending: List[Tuple[int, asyncio.Future]] = []

    if spec.mode == "open":
        for tick, session, seq, op in schedule:
            while clock.now_ticks() < tick:
                await clock.sleep_ticks(1)
            sent = clock.now_ticks()
            try:
                future = service.try_submit(session, seq, op)
            except Backpressure:
                report.shed += 1
                continue
            report.submitted += 1

            def note_commit(f: asyncio.Future, sent: int = sent) -> None:
                # Fires on the tick the commit resolves: true commit latency.
                if not f.cancelled():
                    report.latencies.append(clock.now_ticks() - sent)

            future.add_done_callback(note_commit)
            pending.append((sent, future))
    else:  # closed loop: per-session chains, driven by commits
        by_session: Dict[str, List[Tuple[str, int, Tuple]]] = {}
        for _tick, session, seq, op in schedule:
            by_session.setdefault(session, []).append((session, seq, op))

        async def drive(commands: List[Tuple[str, int, Tuple]]) -> None:
            for i, (session, seq, op) in enumerate(commands):
                sent = clock.now_ticks()
                if sent >= deadline:
                    report.timed_out += len(commands) - i
                    return
                report.submitted += 1
                try:
                    await asyncio.wait_for(
                        service.submit(session, seq, op),
                        timeout=(deadline - sent) * clock.tick_seconds,
                    )
                except asyncio.TimeoutError:
                    report.timed_out += len(commands) - i
                    return
                report.latencies.append(clock.now_ticks() - sent)
                await clock.sleep_ticks(spec.think_ticks)

        await asyncio.gather(
            *[drive(cmds) for _s, cmds in sorted(by_session.items())]
        )

    # Open loop: wait for outstanding commits (latency recorded by the
    # done callbacks at commit time), up to the deadline.
    while pending:
        if all(f.done() for _s, f in pending):
            break
        if clock.now_ticks() >= deadline:
            for _sent, future in pending:
                if not future.done():
                    future.cancel()
                    report.timed_out += 1
            break
        await clock.sleep_ticks(1)
    await asyncio.sleep(0)  # let final done callbacks run

    report.committed = len(report.latencies)
    report.ticks = clock.now_ticks() - start_tick
    report.kernel_steps = service.stats["kernel_steps"]
    report.batches = service.stats["batches"]
    report.applied_digest = applied_digest(service)
    if obs._ENABLED:
        obs.metrics().inc("load.committed", report.committed)
        obs.metrics().inc("load.shed", report.shed)
    return report


def run_service_load(
    config: ServiceConfig,
    spec: LoadSpec,
    read_every: int = 0,
) -> Tuple[LoadReport, ConsensusService]:
    """Sync entry: fresh logical loop, one service, one load run.

    ``read_every`` > 0 issues a certified read every that-many commits
    (exercises the lease path under load).  Returns (report, service);
    the service is stopped and the loop closed before returning.
    """
    import time as _time

    loop = logical_event_loop()
    wall_start = _time.perf_counter()

    async def main() -> Tuple[LoadReport, ConsensusService]:
        clock = TickClock(loop)
        service = ConsensusService(config, clock)
        service.start()
        reader_task: Optional[asyncio.Task] = None
        if read_every > 0:

            async def reader() -> None:
                last = 0
                while True:
                    if service.stats["committed"] >= last + read_every:
                        last = service.stats["committed"]
                        await service.read()
                    await clock.sleep_ticks(1)

            reader_task = loop.create_task(reader())
        try:
            report = await run_load(service, spec, clock)
        finally:
            if reader_task is not None:
                reader_task.cancel()
                try:
                    await reader_task
                except asyncio.CancelledError:
                    pass
            await service.stop()
        return report, service

    try:
        asyncio.set_event_loop(loop)
        report, service = loop.run_until_complete(main())
    finally:
        asyncio.set_event_loop(None)
        loop.close()
    report.wall_seconds = _time.perf_counter() - wall_start
    return report, service
